//! Multi-process determinism: `EngineConfig::processes` is a pure
//! concurrency/memory knob, exactly like shards and stealing order.
//! `FullReport::render` must be byte-identical across
//! `processes ∈ {1, 2, 4} × shards ∈ {1, 4} × unit orders` — the
//! partition is over canonical unit identities and the reducers merge
//! commutatively, so no process topology can change a result byte.
//!
//! Workers are real spawned processes: the tests point
//! [`ecnudp::core::WORKER_EXE_ENV`] at the `ecnudp` binary (the libtest
//! harness has no worker hook of its own), so this suite also covers the
//! JSON worker protocol end-to-end.
//!
//! The megapool-smoke sweep (50k servers) is heavyweight and runs only
//! with `ECNUDP_MEGAPOOL=1` (the CI megapool smoke job); the
//! paper2015-mini sweep always runs.

use ecnudp::core::{
    campaign_config, engine_config, run_engine, EngineConfig, EngineRun, FullReport, UnitOrder,
    WORKER_EXE_ENV,
};
use ecnudp::pool::ScenarioSpec;
use std::path::Path;

fn load_preset(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn run_preset(spec: &ScenarioSpec, processes: usize, shards: usize, order: UnitOrder) -> EngineRun {
    // the worker self-spawn must resolve to the CLI binary, not the
    // libtest harness (which would re-run the test suite per worker)
    std::env::set_var(WORKER_EXE_ENV, env!("CARGO_BIN_EXE_ecnudp"));
    let eng = EngineConfig {
        shards: Some(shards),
        processes,
        unit_order: order,
        ..engine_config(spec)
    };
    run_engine(&spec.plan(), &campaign_config(spec), &eng)
}

fn render(run: &EngineRun) -> String {
    FullReport::from_campaign(&run.result).render()
}

#[test]
fn mini_report_is_byte_identical_across_process_topologies() {
    let spec = load_preset("paper2015-mini.toml");
    let baseline = run_preset(&spec, 1, 1, UnitOrder::AsScheduled);
    let expected = render(&baseline);
    assert_eq!(baseline.processes, 1);
    assert_eq!(baseline.merge_depth, 0, "one shard, one process: flat");

    for processes in [1usize, 2, 4] {
        for shards in [1usize, 4] {
            for order in [UnitOrder::AsScheduled, UnitOrder::Reversed, UnitOrder::Shuffled(7)] {
                if (processes, shards, order) == (1, 1, UnitOrder::AsScheduled) {
                    continue;
                }
                let run = run_preset(&spec, processes, shards, order);
                assert_eq!(
                    expected,
                    render(&run),
                    "report bytes changed at processes={processes} shards={shards} {order:?}"
                );
                assert_eq!(run.processes, processes);
                assert_eq!(
                    run.units, baseline.units,
                    "partitions must cover every unit exactly once"
                );
            }
        }
    }
}

#[test]
fn multiprocess_run_reports_topology_gauges() {
    let spec = load_preset("paper2015-mini.toml");
    let run = run_preset(&spec, 4, 2, UnitOrder::AsScheduled);
    assert_eq!(run.processes, 4);
    // 13 units round-robin over 4 workers: 4+3+3+3, each worker shards
    // clamped to its unit count
    assert_eq!(run.units, 13);
    assert!(run.shards >= 4, "summed worker shards, got {}", run.shards);
    // ceil(log2(2 shards)) + ceil(log2(4 processes)) = 1 + 2
    assert_eq!(run.merge_depth, 3);
    if cfg!(target_os = "linux") {
        assert!(run.peak_rss_kb > 0, "VmHWM gauge must be populated");
    }
}

#[test]
fn megapool_smoke_is_deterministic_across_processes_with_bounded_rss() {
    if std::env::var_os("ECNUDP_MEGAPOOL").is_none() {
        eprintln!("skipping megapool smoke (set ECNUDP_MEGAPOOL=1 to run)");
        return;
    }
    let spec = load_preset("megapool-smoke.toml");
    let single = run_preset(&spec, 1, 4, UnitOrder::AsScheduled);
    let expected = render(&single);
    for (processes, shards, order) in [
        (2usize, 4usize, UnitOrder::Reversed),
        (4, 1, UnitOrder::AsScheduled),
        (4, 4, UnitOrder::Shuffled(7)),
    ] {
        let run = run_preset(&spec, processes, shards, order);
        assert_eq!(
            expected,
            render(&run),
            "megapool-smoke bytes changed at processes={processes} shards={shards} {order:?}"
        );
        if cfg!(target_os = "linux") {
            // the whole point of worker processes: per-process peak RSS
            // stays bounded. Measured ~0.79 GB per process at 50k servers
            // (radix-trie tables + shared Arc<Topology>); a regression
            // that funnels whole-campaign state into one process — or
            // reverts the table compression — blows through 2 GiB.
            assert!(
                run.peak_rss_kb > 0 && run.peak_rss_kb < 2 * 1024 * 1024,
                "peak RSS {} kB outside the smoke ceiling",
                run.peak_rss_kb
            );
        }
    }
}
