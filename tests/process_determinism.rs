//! Multi-process determinism: `EngineConfig::processes` is a pure
//! concurrency/memory knob, exactly like shards and stealing order.
//! `FullReport::render` must be byte-identical across
//! `processes ∈ {1, 2, 4} × shards ∈ {1, 4} × unit orders` — the
//! partition is over canonical unit identities and the reducers merge
//! commutatively, so no process topology can change a result byte.
//!
//! Workers are real spawned processes: the tests point
//! [`ecnudp::core::WORKER_EXE_ENV`] at the `ecnudp` binary (the libtest
//! harness has no worker hook of its own), so this suite also covers the
//! JSON worker protocol end-to-end.
//!
//! The megapool-smoke sweep (50k servers) is heavyweight and runs only
//! with `ECNUDP_MEGAPOOL=1` (the CI megapool smoke job); the
//! paper2015-mini sweep always runs.

use ecnudp::core::{
    campaign_config, engine_config, run_engine, EngineConfig, EngineRun, FullReport, UnitOrder,
    WORKER_EXE_ENV,
};
use ecnudp::pool::ScenarioSpec;
use proptest::prelude::*;
use std::path::Path;
use std::process::Command;
use std::sync::OnceLock;

fn load_preset(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn run_preset(spec: &ScenarioSpec, processes: usize, shards: usize, order: UnitOrder) -> EngineRun {
    // the worker self-spawn must resolve to the CLI binary, not the
    // libtest harness (which would re-run the test suite per worker)
    std::env::set_var(WORKER_EXE_ENV, env!("CARGO_BIN_EXE_ecnudp"));
    let eng = EngineConfig {
        shards: Some(shards),
        processes,
        unit_order: order,
        ..engine_config(spec)
    };
    run_engine(&spec.plan(), &campaign_config(spec), &eng)
}

fn render(run: &EngineRun) -> String {
    FullReport::from_campaign(&run.result).render()
}

#[test]
fn mini_report_is_byte_identical_across_process_topologies() {
    let spec = load_preset("paper2015-mini.toml");
    let baseline = run_preset(&spec, 1, 1, UnitOrder::AsScheduled);
    let expected = render(&baseline);
    assert_eq!(baseline.processes, 1);
    assert_eq!(baseline.merge_depth, 0, "one shard, one process: flat");

    for processes in [1usize, 2, 4] {
        for shards in [1usize, 4] {
            for order in [
                UnitOrder::AsScheduled,
                UnitOrder::Reversed,
                UnitOrder::Shuffled(7),
            ] {
                if (processes, shards, order) == (1, 1, UnitOrder::AsScheduled) {
                    continue;
                }
                let run = run_preset(&spec, processes, shards, order);
                assert_eq!(
                    expected,
                    render(&run),
                    "report bytes changed at processes={processes} shards={shards} {order:?}"
                );
                assert_eq!(run.processes, processes);
                assert_eq!(
                    run.units, baseline.units,
                    "partitions must cover every unit exactly once"
                );
            }
        }
    }
}

#[test]
fn validation_section_is_byte_identical_across_topologies() {
    // The modern-ECN acceptance sweep: the validation confusion matrix —
    // and the whole report carrying it — must be byte-identical across
    // shards ∈ {1, 4, 13, 32} × process counts × stealing orders. The
    // validator adds a fifth probe phase with its own packet trains, so
    // this proves the new phase draws no schedule-dependent randomness.
    let spec = load_preset("validator-vs-bleachers.toml");
    let baseline = run_preset(&spec, 1, 1, UnitOrder::AsScheduled);
    assert!(
        !baseline.result.aggregates.validation.is_empty(),
        "the preset must actually run the validation pass"
    );
    let expected = render(&baseline);
    for (processes, shards, order) in [
        (1usize, 4usize, UnitOrder::Reversed),
        (1, 13, UnitOrder::Shuffled(7)),
        (1, 32, UnitOrder::Shuffled(23)),
        (2, 1, UnitOrder::Reversed),
        (2, 4, UnitOrder::Shuffled(7)),
        (2, 13, UnitOrder::AsScheduled),
        (2, 32, UnitOrder::Shuffled(5)),
    ] {
        let run = run_preset(&spec, processes, shards, order);
        assert_eq!(
            baseline.result.aggregates.validation, run.result.aggregates.validation,
            "validation counters changed at processes={processes} shards={shards} {order:?}"
        );
        assert_eq!(
            expected,
            render(&run),
            "report bytes changed at processes={processes} shards={shards} {order:?}"
        );
    }
}

#[test]
fn multiprocess_run_reports_topology_gauges() {
    let spec = load_preset("paper2015-mini.toml");
    let run = run_preset(&spec, 4, 2, UnitOrder::AsScheduled);
    assert_eq!(run.processes, 4);
    // 13 units round-robin over 4 workers: 4+3+3+3, each worker shards
    // clamped to its unit count
    assert_eq!(run.units, 13);
    assert!(run.shards >= 4, "summed worker shards, got {}", run.shards);
    // ceil(log2(2 shards)) + ceil(log2(4 processes)) = 1 + 2
    assert_eq!(run.merge_depth, 3);
    if cfg!(target_os = "linux") {
        assert!(run.peak_rss_kb > 0, "VmHWM gauge must be populated");
    }
}

#[test]
fn megapool_smoke_is_deterministic_across_processes_with_bounded_rss() {
    if std::env::var_os("ECNUDP_MEGAPOOL").is_none() {
        eprintln!("skipping megapool smoke (set ECNUDP_MEGAPOOL=1 to run)");
        return;
    }
    let spec = load_preset("megapool-smoke.toml");
    let single = run_preset(&spec, 1, 4, UnitOrder::AsScheduled);
    let expected = render(&single);
    for (processes, shards, order) in [
        (2usize, 4usize, UnitOrder::Reversed),
        (4, 1, UnitOrder::AsScheduled),
        (4, 4, UnitOrder::Shuffled(7)),
    ] {
        let run = run_preset(&spec, processes, shards, order);
        assert_eq!(
            expected,
            render(&run),
            "megapool-smoke bytes changed at processes={processes} shards={shards} {order:?}"
        );
        if cfg!(target_os = "linux") {
            // the whole point of worker processes: per-process peak RSS
            // stays bounded. Measured ~0.79 GB per process at 50k servers
            // (radix-trie tables + shared Arc<Topology>); a regression
            // that funnels whole-campaign state into one process — or
            // reverts the table compression — blows through 2 GiB.
            assert!(
                run.peak_rss_kb > 0 && run.peak_rss_kb < 2 * 1024 * 1024,
                "peak RSS {} kB outside the smoke ceiling",
                run.peak_rss_kb
            );
        }
    }
}

// -------------------------------------------------- fault-recovery property
//
// Random real-subprocess faults (crash, panic, hang, truncated/corrupt
// payload) across workers × retry budgets must leave the rendered report
// byte-identical to the fault-free golden: the supervisor re-ships exactly
// the failed unit slice and the reducer merge is order-insensitive.
//
// Each case spawns the CLI with `ECNUDP_FAULT` set via `.env()` (never
// `set_var` — parallel in-process tests must not inherit faults).

/// One spawned campaign per case is expensive; 3 cases by default keeps
/// `cargo test -q` inside the CI budget, while the chaos job's
/// `PROPTEST_CASES=128` widens the sweep to 16 campaigns.
fn fault_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|n| (n / 8).max(3))
        .unwrap_or(3)
}

/// The fault-free CLI golden: mini preset, 2 workers, computed once.
fn fault_free_golden() -> &'static str {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let out = Command::new(env!("CARGO_BIN_EXE_ecnudp"))
            .args(["run", "--scenario", "scenarios/paper2015-mini.toml"])
            .args(["--processes", "2"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .env_remove("ECNUDP_FAULT")
            .output()
            .expect("spawn ecnudp");
        assert!(
            out.status.success(),
            "fault-free run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 report")
    })
}

/// Render one `ECNUDP_FAULT` directive. Kind 4 (hang) is special-cased by
/// the caller: it needs `--worker-timeout` and a single covered attempt.
fn fault_directive(kind: u8, worker: usize, attempts: u32) -> String {
    match kind % 5 {
        0 => format!("panic={worker}:attempts={attempts}"),
        1 => format!(
            "crash-after-unit={}:worker={worker}:attempts={attempts}",
            kind % 4
        ),
        2 => format!("truncate-payload={worker}:attempts={attempts}"),
        3 => format!("corrupt-json={worker}:attempts={attempts}"),
        _ => format!("hang={worker}:attempts={attempts}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_cases()))]
    #[test]
    fn injected_faults_never_change_report_bytes(
        kind in 0u8..5,
        second_pick in 0u8..8, // < 4: a second fault on another worker (never a second hang)
        worker_pick in 0usize..4,
        processes in 2usize..=4,
        budget in 1u32..=3,
        attempt_pick in 0u32..3,
    ) {
        let worker = worker_pick % processes;
        let hang = kind % 5 == 4;
        // the fault covers fewer attempts than the budget allows, so the
        // campaign must always recover; hangs cover one attempt to keep
        // each case inside a single deadline wait
        let attempts = if hang { 1 } else { 1 + attempt_pick % budget };
        let mut plan = fault_directive(kind, worker, attempts);
        if let Some(k2) = (second_pick < 4).then_some(second_pick) {
            let other = (worker + 1) % processes;
            plan.push(',');
            plan.push_str(&fault_directive(k2, other, 1));
        }
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ecnudp"));
        cmd.args(["run", "--scenario", "scenarios/paper2015-mini.toml"])
            .args(["--processes", &processes.to_string()])
            .args(["--max-retries", &budget.to_string()])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .env("ECNUDP_FAULT", &plan);
        if hang {
            cmd.args(["--worker-timeout", "5"]);
        }
        let out = cmd.output().expect("spawn ecnudp");
        let err = String::from_utf8_lossy(&out.stderr);
        prop_assert!(
            out.status.success(),
            "must recover from `{}` within {} retries: {}",
            plan, budget, err
        );
        prop_assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            fault_free_golden(),
            "report bytes changed under `{}` (processes={})",
            plan, processes
        );
    }
}
