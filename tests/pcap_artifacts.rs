//! The "parallel tcpdump session" produces real artefacts: captures taken
//! during probes export as valid libpcap files, and their contents parse
//! back into the probe exchanges.

use ecnudp::core::{probe_udp, ProbeConfig};
use ecnudp::netsim::{write_pcap, Direction};
use ecnudp::pool::{build_scenario, PoolPlan, SpecialBehaviour};
use ecnudp::stack::AvailabilityModel;
use ecnudp::wire::{Datagram, Ecn, IpProto, NtpPacket, UdpHeader};

#[test]
fn probe_capture_exports_valid_pcap_with_ntp_exchange() {
    let mut sc = build_scenario(&PoolPlan::scaled(30), 61);
    let vantage = 2;
    let handle = sc.vantages[vantage].handle.clone();
    let cap = sc.sim.attach_capture(sc.vantages[vantage].node);
    let target = sc
        .servers
        .iter()
        .find(|s| {
            s.profile.special == SpecialBehaviour::None
                && s.profile.availability == AvailabilityModel::AlwaysUp
        })
        .map(|s| s.addr)
        .expect("healthy server");

    let r = probe_udp(
        &mut sc.sim,
        &handle,
        &cap,
        target,
        Ecn::Ect0,
        &ProbeConfig::default(),
    );
    assert!(r.reachable);

    // capture holds request (out, ECT0) and response (in)
    {
        let cap = cap.lock();
        assert!(cap.len() >= 2);
        let out = cap
            .packets()
            .iter()
            .find(|p| p.dir == Direction::Out)
            .expect("request captured");
        let d = out.datagram().unwrap();
        assert_eq!(d.ecn(), Ecn::Ect0);
        assert_eq!(d.dst(), target);
        // and it is a parseable NTP request inside UDP
        let (uh, body) = UdpHeader::decode(d.src(), d.dst(), d.payload()).unwrap();
        assert_eq!(uh.dst_port, 123);
        let ntp = NtpPacket::decode(body).unwrap();
        assert_eq!(ntp.mode, ecnudp::wire::NtpMode::Client);
    }

    // export to a real pcap file and sanity-check the framing
    let dir = std::env::temp_dir().join("ecnudp-pcap-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.pcap");
    write_pcap(&path, &cap.lock()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
        0xa1b2_c3d4,
        "libpcap magic"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
        101,
        "LINKTYPE_RAW"
    );
    // walk every record; each payload must parse as an IPv4 datagram
    let mut off = 24;
    let mut records = 0;
    while off + 16 <= bytes.len() {
        let caplen = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        let frame = &bytes[off + 16..off + 16 + caplen];
        let d = Datagram::from_bytes(frame.to_vec()).expect("record is a valid datagram");
        assert!(matches!(d.protocol(), IpProto::Udp));
        records += 1;
        off += 16 + caplen;
    }
    assert_eq!(off, bytes.len(), "no trailing garbage");
    assert_eq!(records, cap.lock().len());
    std::fs::remove_file(&path).ok();
}
