//! Determinism regression: the entire pipeline — scenario construction,
//! discovery, probing, traceroute, analysis, report rendering — must be
//! a pure function of (plan, config, seed). Guards the seed-derivation
//! scheme in `ecn_netsim::rng` against accidental global-RNG leaks.

use ecnudp::core::{run_campaign, CampaignConfig, FullReport};
use ecnudp::pool::PoolPlan;

fn rendered_report(seed: u64) -> String {
    let plan = PoolPlan::scaled(40);
    let cfg = CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    };
    let result = run_campaign(&plan, &cfg);
    FullReport::from_campaign(&result).render()
}

#[test]
fn same_seed_same_report_different_seed_different_report() {
    let first = rendered_report(2015);
    let second = rendered_report(2015);
    assert_eq!(
        first, second,
        "same seed must render a byte-identical report"
    );

    let other = rendered_report(2016);
    assert_ne!(
        first, other,
        "a different seed must change the measured world"
    );
}
