//! Determinism regressions: the entire pipeline — blueprint construction,
//! world instantiation, discovery, probing, traceroute, analysis, report
//! rendering — must be a pure function of (plan, config, seed), and of
//! *nothing else*. In particular the engine's shard count and its
//! work-stealing schedule are pure concurrency knobs: `FullReport::render`
//! must be byte-identical across `shards = 1, 4, 13, 32` (sharding
//! invariance, not just same-seed stability).

use ecnudp::core::{run_engine, CampaignConfig, EngineConfig, FullReport, UnitOrder};
use ecnudp::pool::PoolPlan;
use std::sync::OnceLock;

fn mini_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    }
}

fn rendered_with(seed: u64, eng: &EngineConfig) -> String {
    let plan = PoolPlan::scaled(40);
    let run = run_engine(&plan, &mini_cfg(seed), eng);
    FullReport::from_campaign(&run.result).render()
}

/// The shards=1 baseline for seed 2015, computed once and shared by both
/// tests below.
fn baseline_2015() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| rendered_with(2015, &EngineConfig::with_shards(1)))
}

#[test]
fn same_seed_same_report_different_seed_different_report() {
    let first = baseline_2015();
    let second = rendered_with(2015, &EngineConfig::with_shards(1));
    assert_eq!(
        *first, second,
        "same seed must render a byte-identical report"
    );

    let other = rendered_with(2016, &EngineConfig::with_shards(1));
    assert_ne!(
        *first, other,
        "a different seed must change the measured world"
    );
}

#[test]
fn report_is_byte_identical_across_shard_counts() {
    let sequential = baseline_2015();
    for shards in [4usize, 13, 32] {
        let sharded = rendered_with(2015, &EngineConfig::with_shards(shards));
        assert_eq!(
            *sequential, sharded,
            "shards={shards} must render the exact sequential report"
        );
    }
    // and the work-stealing schedule must not matter either
    let reversed = rendered_with(
        2015,
        &EngineConfig {
            shards: Some(4),
            unit_order: UnitOrder::Reversed,
            ..EngineConfig::default()
        },
    );
    assert_eq!(*sequential, reversed, "unit scheduling order leaks");
}
