//! Determinism regressions: the entire pipeline — blueprint construction,
//! world instantiation, discovery, probing, traceroute, analysis, report
//! rendering — must be a pure function of (plan, config, seed), and of
//! *nothing else*. In particular the engine's shard count and its
//! work-stealing schedule are pure concurrency knobs: `FullReport::render`
//! must be byte-identical across `shards = 1, 4, 13, 32` (sharding
//! invariance, not just same-seed stability).
//!
//! Every render below runs the **trace-free default path**
//! (`keep_traces = false`, report from streamed aggregates); the last
//! test pins that path to the legacy trace-walk derivation.

use ecnudp::core::{run_engine, CampaignConfig, EngineConfig, FullReport, UnitOrder};
use ecnudp::pool::PoolPlan;
use std::sync::OnceLock;

fn mini_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    }
}

fn rendered_with(seed: u64, eng: &EngineConfig) -> String {
    let plan = PoolPlan::scaled(40);
    let run = run_engine(&plan, &mini_cfg(seed), eng);
    assert!(
        run.result.traces.is_empty() || eng.keep_traces,
        "reducer-only run retains no traces"
    );
    FullReport::from_campaign(&run.result).render()
}

/// The shards=1 baseline for seed 2015, computed once and shared by both
/// tests below.
fn baseline_2015() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| rendered_with(2015, &EngineConfig::with_shards(1)))
}

#[test]
fn same_seed_same_report_different_seed_different_report() {
    let first = baseline_2015();
    let second = rendered_with(2015, &EngineConfig::with_shards(1));
    assert_eq!(
        *first, second,
        "same seed must render a byte-identical report"
    );

    let other = rendered_with(2016, &EngineConfig::with_shards(1));
    assert_ne!(
        *first, other,
        "a different seed must change the measured world"
    );
}

#[test]
fn report_is_byte_identical_across_shard_counts() {
    // the whole sweep runs without raw traces: reducer merges alone must
    // carry the byte-identical contract
    let sequential = baseline_2015();
    for shards in [4usize, 13, 32] {
        let sharded = rendered_with(2015, &EngineConfig::with_shards(shards));
        assert_eq!(
            *sequential, sharded,
            "shards={shards} must render the exact sequential report"
        );
    }
    // and the work-stealing schedule must not matter either
    for unit_order in [
        UnitOrder::Reversed,
        UnitOrder::Shuffled(7),
        UnitOrder::Shuffled(7777),
    ] {
        let permuted = rendered_with(
            2015,
            &EngineConfig {
                shards: Some(4),
                unit_order,
                ..EngineConfig::default()
            },
        );
        assert_eq!(
            *sequential, permuted,
            "unit scheduling order leaks ({unit_order:?})"
        );
    }
}

#[test]
fn trace_free_report_matches_trace_derived_report() {
    // the aggregates-first default must render exactly what the legacy
    // trace walk derives from the raw records of the same campaign
    let plan = PoolPlan::scaled(40);
    let kept = run_engine(
        &plan,
        &mini_cfg(2015),
        &EngineConfig::with_shards(4).keeping_traces(),
    );
    assert!(!kept.result.traces.is_empty());
    let trace_derived = FullReport::from_traces(&kept.result).render();
    assert_eq!(
        *baseline_2015(),
        trace_derived,
        "aggregates-first and trace-walk derivations diverge"
    );
}
