//! End-to-end fault-injection coverage for the supervised multi-process
//! driver, using **real subprocess failures** via the test-only
//! `ECNUDP_FAULT` protocol (grammar in `crates/core/src/fault.rs`):
//!
//! - injected worker panics/crashes/hangs/corruptions recover through the
//!   retry path and render **byte-identical** to the fault-free run;
//! - worker stderr reaches the operator tagged `[worker N]`;
//! - an exhausted retry budget is a typed exit-3 error naming the worker
//!   and its unit range — never a parent panic;
//! - a parent killed mid-run resumes from its checkpoint byte-identically,
//!   re-running only the units absent from the bitmap;
//! - a checkpoint from a different campaign is refused with a typed error;
//! - over-provisioned worker counts clamp to the unit pool with a warning.
//!
//! Faults are delivered with `.env()` on each spawned `Command` — never
//! `set_var` — so parallel tests cannot race on the parent's environment.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

const SCENARIO: &str = "scenarios/paper2015-mini.toml";
/// paper2015-mini lowers to 13 vantages × 1 chunk = 13 units.
const MINI_UNITS: usize = 13;

fn ecnudp(args: &[&str], fault: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ecnudp"));
    cmd.args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        // never inherit a fault plan from the test runner's environment
        .env_remove("ECNUDP_FAULT");
    if let Some(plan) = fault {
        cmd.env("ECNUDP_FAULT", plan);
    }
    cmd.output().expect("spawn ecnudp")
}

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-faults");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// The fault-free golden: mini preset, 2 workers. Computed once; every
/// recovery test must reproduce these exact report bytes.
fn golden_stdout() -> &'static str {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let out = ecnudp(&["run", "--scenario", SCENARIO, "--processes", "2"], None);
        assert!(
            out.status.success(),
            "fault-free run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 report")
    })
}

#[test]
fn injected_worker_panic_recovers_byte_identical_with_tagged_stderr() {
    let out = ecnudp(
        &["run", "--scenario", SCENARIO, "--processes", "2"],
        Some("panic=0"),
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry must recover: {err}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden_stdout(),
        "recovered run must render byte-identical to the fault-free golden"
    );
    assert!(
        err.contains("[worker 0]"),
        "worker stderr must reach the operator tagged with its index: {err}"
    );
    assert!(
        err.contains("panicked"),
        "the real panic message must survive the relay: {err}"
    );
}

#[test]
fn crash_mid_partition_recovers_byte_identical() {
    // worker 0 runs 2 units' worth of paid work, then exit(101); the
    // respawn re-runs exactly its slice and the merge heals
    let out = ecnudp(
        &["run", "--scenario", SCENARIO, "--processes", "2"],
        Some("crash-after-unit=2:worker=0"),
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry must recover: {err}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden_stdout());
    assert!(
        err.contains("worker 0") && err.contains("retry"),
        "supervisor must narrate the failure and the retry: {err}"
    );
}

#[test]
fn corrupted_and_truncated_payloads_are_retried_to_the_same_bytes() {
    let out = ecnudp(
        &["run", "--scenario", SCENARIO, "--processes", "2"],
        Some("truncate-payload=0,corrupt-json=1"),
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry must recover: {err}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden_stdout());
}

#[test]
fn hung_worker_is_killed_at_the_deadline_and_retried() {
    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--worker-timeout",
            "2",
        ],
        Some("hang=1"),
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "retry must recover: {err}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden_stdout());
    assert!(
        err.contains("no payload within"),
        "the hang must be diagnosed as a deadline kill: {err}"
    );
}

#[test]
fn exhausted_retry_budget_is_a_typed_exit_3_never_a_panic() {
    // the fault outlives the budget: 1 retry allowed, fault covers 99
    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--max-retries",
            "1",
        ],
        Some("crash-after-unit=0:worker=1:attempts=99"),
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "campaign failure has its own exit code"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("campaign failed") && err.contains("worker 1"),
        "the error must name the failing worker: {err}"
    );
    assert!(
        err.contains("unit") && err.contains("attempt"),
        "the error must name the unit range and the spent budget: {err}"
    );
    assert!(
        !err.contains("RUST_BACKTRACE"),
        "exhaustion is a typed error, not a parent panic: {err}"
    );
}

#[test]
fn parent_killed_mid_run_resumes_byte_identical_running_only_the_rest() {
    let ckpt = scratch("killed-parent.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_arg = ckpt.to_str().expect("utf8 path");

    // phase 1: the parent dies (exit 86) after merging the first of the
    // two worker payloads — the second worker's units are lost with it
    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--checkpoint",
            ckpt_arg,
        ],
        Some("parent-exit-after-payload=1"),
    );
    assert_eq!(
        out.status.code(),
        Some(86),
        "injected parent death uses its own exit code: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "the checkpoint must survive the dead parent");

    // phase 2: resume finishes the campaign byte-identically
    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--resume",
            ckpt_arg,
        ],
        None,
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume must complete: {err}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden_stdout(),
        "interrupted + resumed must render byte-identical to uninterrupted"
    );
    assert!(
        err.contains("resuming from") && err.contains("already complete"),
        "resume must say how much of the campaign it skipped: {err}"
    );
    // the bitmap held the first payload's partition (about half the
    // pool); the resume ran only the rest
    let resumed: usize = err
        .lines()
        .find_map(|l| {
            l.split("resuming from").nth(1)?;
            let tail = l.split(": ").nth(1)?;
            tail.split('/').next()?.trim().parse().ok()
        })
        .expect("resume line carries completed/total counts");
    assert!(
        (1..MINI_UNITS).contains(&resumed),
        "the merged payload's units were skipped, not all {MINI_UNITS}: got {resumed}"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_campaign() {
    let ckpt = scratch("mismatched.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_arg = ckpt.to_str().expect("utf8 path");

    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--checkpoint",
            ckpt_arg,
        ],
        Some("parent-exit-after-payload=1"),
    );
    assert_eq!(out.status.code(), Some(86));
    assert!(ckpt.exists());

    // same spec file, different seed → different campaign fingerprint
    let out = ecnudp(
        &[
            "run",
            "--scenario",
            SCENARIO,
            "--processes",
            "2",
            "--seed",
            "7",
            "--resume",
            ckpt_arg,
        ],
        None,
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "a foreign checkpoint is a typed campaign error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("checkpoint") && err.contains("fingerprint"),
        "the refusal must say what mismatched: {err}"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn overprovisioned_worker_count_clamps_to_the_unit_pool() {
    // 20 processes over 13 units: clamp, warn, and still render the golden
    let out = ecnudp(&["run", "--scenario", SCENARIO, "--processes", "20"], None);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{err}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden_stdout());
    assert!(
        err.contains("clamping 20 worker processes to 13"),
        "the clamp must be narrated: {err}"
    );
}
