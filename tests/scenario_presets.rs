//! The scenario preset library, gated end to end:
//!
//! - `scenarios/paper2015.toml` must be *the* reference experiment: it
//!   parses to exactly `ScenarioSpec::paper2015()` and lowers to exactly
//!   the `run_campaign` defaults (`PoolPlan::paper()` +
//!   `CampaignConfig::default()` + `EngineConfig::default()`), so
//!   running it is byte-identical to the hard-wired reproduction.
//! - `scenarios/paper2015-mini.toml` must lower to the golden suite's
//!   test world (`PoolPlan::scaled(40)`, quick calendar): its rendered
//!   report — including through the real `ecnudp` CLI binary — must be
//!   byte-identical to `tests/golden/full_report_seed2015.txt`.
//! - every other preset has its own golden snapshot
//!   (`tests/golden/scenario_<name>.txt`), regenerated with
//!   `ECNUDP_BLESS=1 cargo test --test scenario_presets`.

#[path = "util/golden.rs"]
mod golden;

use ecnudp::core::{
    campaign_config, engine_config, run_scenario_sharded, CampaignConfig, EngineConfig, FullReport,
};
use ecnudp::pool::{PoolPlan, ScenarioSpec};
use golden::{check_golden, golden_dir};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Mutex, OnceLock};

fn scenario_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("scenarios/{name}.toml"))
}

fn load_preset(name: &str) -> ScenarioSpec {
    let text = std::fs::read_to_string(scenario_path(name))
        .unwrap_or_else(|e| panic!("read scenarios/{name}.toml: {e}"));
    ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("parse scenarios/{name}: {e}"))
}

/// One preset campaign, run once per test process and shared by the
/// golden and phenomenon tests (the runs are deterministic, so caching
/// cannot change any assertion).
struct PresetRun {
    render: String,
    fig2a: f64,
    /// Plain-UDP reachability as a fraction of discovered targets
    /// (normalised so presets of different population sizes compare).
    plain_reach_frac: f64,
    strip_locations: usize,
    /// (true-failure, false-failure, missed-bleacher) rates of the
    /// validation confusion matrix; `None` when the pass was off.
    validation_rates: Option<(f64, f64, f64)>,
}

fn preset_run(name: &str) -> Arc<PresetRun> {
    // Per-preset once-cells: the map lock is only held to fetch the
    // cell, while `get_or_init` serialises concurrent tests wanting the
    // *same* preset (one campaign each, ever) without blocking runs of
    // different presets.
    type Cell = Arc<OnceLock<Arc<PresetRun>>>;
    static CACHE: OnceLock<Mutex<HashMap<String, Cell>>> = OnceLock::new();
    let cell: Cell = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .clone();
    cell.get_or_init(|| {
        let spec = load_preset(name);
        let run = run_scenario_sharded(&spec, None);
        assert!(
            run.result.traces.is_empty() && run.result.routes.is_empty(),
            "preset runs are raw-record-free (streamed aggregates only)"
        );
        let report = FullReport::from_campaign(&run.result);
        Arc::new(PresetRun {
            render: report.render(),
            fig2a: report.figure2.avg_a,
            plain_reach_frac: report.figure2.avg_plain_reachable
                / run.result.targets.len().max(1) as f64,
            strip_locations: report.figure4.strip_locations,
            validation_rates: report.validation.as_ref().map(|v| {
                (
                    v.true_failure_rate(),
                    v.false_failure_rate(),
                    v.missed_bleacher_rate(),
                )
            }),
        })
    })
    .clone()
}

#[test]
fn paper2015_preset_is_the_run_campaign_default() {
    let spec = load_preset("paper2015");
    assert_eq!(
        spec,
        ScenarioSpec::paper2015(),
        "scenarios/paper2015.toml must spell out exactly the built-in reference"
    );
    // the acceptance triple: running this preset is `run_campaign` with
    // defaults — same plan, same campaign calendar, same engine config —
    // so the renders are byte-identical by construction (the mini-scale
    // CLI test below executes that identity end to end at test scale)
    assert_eq!(spec.plan(), PoolPlan::paper());
    assert_eq!(campaign_config(&spec), CampaignConfig::default());
    assert_eq!(engine_config(&spec), EngineConfig::default());
}

#[test]
fn paper2015_mini_lowers_to_the_golden_test_world() {
    let spec = load_preset("paper2015-mini");
    assert_eq!(
        spec.plan(),
        PoolPlan::scaled(40),
        "the mini preset must reproduce the golden suite's world plan"
    );
    let cfg = campaign_config(&spec);
    assert_eq!(
        cfg,
        CampaignConfig {
            discovery_rounds: 25,
            traces_per_vantage: Some(1),
            ..CampaignConfig::quick(2015)
        },
        "…and the golden suite's campaign calendar"
    );
}

#[test]
fn paper2015_mini_renders_the_preexisting_golden_bytes() {
    // The strongest gate in this suite: the spec path (TOML file → parser
    // → lowering → engine) renders the exact bytes the pre-spec pipeline
    // pinned in tests/golden/full_report_seed2015.txt.
    let report = &preset_run("paper2015-mini").render;
    let golden = std::fs::read_to_string(golden_dir().join("full_report_seed2015.txt"))
        .expect("the PR-3 golden exists");
    assert_eq!(
        *report, golden,
        "spec-driven world diverged from the hard-wired one"
    );
}

#[test]
fn bleacher_heavy_matches_golden() {
    check_golden(
        "scenario_bleacher_heavy",
        &preset_run("bleacher-heavy").render,
    );
}

#[test]
fn ecn_blackhole_matches_golden() {
    check_golden(
        "scenario_ecn_blackhole",
        &preset_run("ecn-blackhole").render,
    );
}

#[test]
fn lossy_edge_matches_golden() {
    check_golden("scenario_lossy_edge", &preset_run("lossy-edge").render);
}

#[test]
fn l4s_aqm_matches_golden() {
    check_golden("scenario_l4s_aqm", &preset_run("l4s-aqm").render);
}

#[test]
fn validator_vs_bleachers_matches_golden() {
    check_golden(
        "scenario_validator_vs_bleachers",
        &preset_run("validator-vs-bleachers").render,
    );
}

#[test]
fn ce_suppressor_matches_golden() {
    check_golden(
        "scenario_ce_suppressor",
        &preset_run("ce-suppressor").render,
    );
}

#[test]
fn modern_ecn_presets_show_their_designed_phenomena() {
    // the 2015 presets never run the validation pass…
    assert!(preset_run("paper2015-mini").validation_rates.is_none());

    // …the AQM world validates everywhere: congestion marks are benign
    let (l4s_true, l4s_false, _) = preset_run("l4s-aqm")
        .validation_rates
        .expect("l4s-aqm runs the validator");
    assert!(
        l4s_true.is_nan(),
        "l4s-aqm plants no bleachers, so the true-failure rate is n/a"
    );
    assert!(
        l4s_false < 0.01,
        "AQM CE marks must never fail validation on a capable path — only \
         the rare loss/flap black-hole may register (got {l4s_false})"
    );

    // …and bleached paths are caught without collateral damage
    let (true_rate, false_rate, missed) = preset_run("validator-vs-bleachers")
        .validation_rates
        .expect("validator-vs-bleachers runs the validator");
    assert!(
        true_rate > 0.5,
        "always-bleached paths must fail validation (got {true_rate})"
    );
    assert!(
        false_rate < 0.01,
        "clean and AQM paths must keep validating (got {false_rate})"
    );
    assert_eq!(
        missed, 0.0,
        "no bleached path may validate as capable (missed {missed})"
    );

    // …while CE suppression — invisible to the 2015 probes — trips the
    // canary
    let ce = preset_run("ce-suppressor");
    assert!(
        ce.render.contains("ce-suppressor"),
        "the confusion matrix must carry a ce-suppressor row"
    );
}

#[test]
fn presets_show_their_designed_phenomena() {
    // Coarse structural deltas vs the mini reference (exact bytes are
    // pinned by the goldens; this documents *why* each preset exists).
    let base = preset_run("paper2015-mini");
    let bleach = preset_run("bleacher-heavy");
    let blackhole = preset_run("ecn-blackhole");
    let lossy = preset_run("lossy-edge");

    assert!(
        bleach.strip_locations > base.strip_locations,
        "bleacher-heavy plants more observable strip locations \
         ({} vs {})",
        bleach.strip_locations,
        base.strip_locations
    );
    assert!(
        blackhole.fig2a < base.fig2a - 5.0,
        "ecn-blackhole collapses ECT reachability ({} vs {})",
        blackhole.fig2a,
        base.fig2a
    );
    assert!(
        lossy.plain_reach_frac < base.plain_reach_frac - 0.01,
        "lossy-edge degrades plain reachability ({:.3} vs {:.3} of targets)",
        lossy.plain_reach_frac,
        base.plain_reach_frac
    );
}

// ------------------------------------------------------------------ CLI

fn ecnudp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ecnudp"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn ecnudp")
}

#[test]
fn cli_run_renders_byte_identical_to_the_golden() {
    // the full product path: binary → file loader → spec → engine →
    // stdout, with a pinned shard count to prove --shards cannot leak
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--shards",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read_to_string(golden_dir().join("full_report_seed2015.txt"))
        .expect("the PR-3 golden exists");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "CLI stdout must be exactly FullReport::render()"
    );
}

#[test]
fn cli_json_validate_and_errors() {
    // --json on a tiny throwaway spec (fast): summary fields present
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-scenarios");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let tiny = dir.join("tiny.json");
    std::fs::write(
        &tiny,
        r#"{
            "name": "tiny",
            "seed": 5,
            "traceroute": false,
            "population": {"servers": 16},
            "topology": {"t1_count": 2, "t2_count": 2},
            "middleboxes": {"ect_droppers_per_1000": 63},
            "schedule": {"profile": "quick", "traces_per_vantage": 1,
                         "discovery_rounds": 8}
        }"#,
    )
    .expect("write tiny spec");
    let out = ecnudp(&["run", "--scenario", tiny.to_str().unwrap(), "--json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"scenario\":\"tiny\"",
        "\"seed\":5",
        "\"targets\":",
        "\"fig2a_pct\":",
        "\"traceroute_paths\":0",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }

    // validate: no campaign run, still summarises the lowering
    let out = ecnudp(&["validate", "--scenario", "scenarios/ecn-blackhole.toml"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ecn-blackhole"), "{text}");
    assert!(text.contains("8 ECT-droppers"), "{text}");
    assert!(text.contains("ok"), "{text}");

    // a typo'd key is a named error, not a silent default
    let broken = dir.join("broken.toml");
    std::fs::write(&broken, "[population]\nwebb_fraction = 0.5\n").expect("write");
    let out = ecnudp(&["validate", "--scenario", broken.to_str().unwrap()]);
    assert!(!out.status.success(), "typo must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("population.webb_fraction"), "{err}");

    // usage errors exit 2
    let out = ecnudp(&["run", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
