//! Golden snapshots of `FullReport::render()`: the committed files under
//! `tests/golden/` pin the exact bytes of the default (trace-free,
//! aggregates-first) report for fixed seeds. Any change to the rendering
//! or to the measurement pipeline shows up as a unified diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! ECNUDP_BLESS=1 cargo test --test golden_report
//! ```
//!
//! On failure the test also writes `<name>.actual.txt` and
//! `<name>.diff.txt` under `target/golden-diff/` so CI can upload the
//! divergence as an artifact. The comparison/bless/diff machinery is
//! shared with the scenario-preset goldens (`tests/util/golden.rs`).

#[path = "util/golden.rs"]
mod golden;

use ecnudp::core::{run_engine, CampaignConfig, EngineConfig, FullReport};
use ecnudp::pool::PoolPlan;
use golden::{check_golden, unified_diff};

fn render(seed: u64) -> String {
    let plan = PoolPlan::scaled(40);
    let cfg = CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    };
    let run = run_engine(&plan, &cfg, &EngineConfig::default());
    assert!(run.result.traces.is_empty(), "golden runs are trace-free");
    FullReport::from_campaign(&run.result).render()
}

#[test]
fn full_report_matches_golden_seed2015() {
    check_golden("full_report_seed2015", &render(2015));
}

#[test]
fn full_report_matches_golden_seed2016() {
    check_golden("full_report_seed2016", &render(2016));
}

#[test]
fn unified_diff_marks_changed_lines() {
    let d = unified_diff("a\nb\nc\nd\ne\nf\ng\n", "a\nb\nc\nX\ne\nf\ng\n", "t");
    assert!(d.contains("--- golden/t.txt"), "{d}");
    assert!(d.contains("-d\n"), "{d}");
    assert!(d.contains("+X\n"), "{d}");
    assert!(d.contains("@@ -1,7 +1,7 @@"), "{d}");
    // unchanged far-away lines are not emitted twice
    let d2 = unified_diff(
        "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\n",
        "1\nX\n3\n4\n5\n6\n7\n8\n9\n10\n11\nY\n13\n",
        "t",
    );
    assert_eq!(d2.matches("@@").count(), 4, "two hunks: {d2}");
}
