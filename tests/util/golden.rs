//! Shared golden-snapshot machinery for the facade test suites
//! (`golden_report.rs`, `scenario_presets.rs`): byte-exact comparison
//! against committed files under `tests/golden/`, `ECNUDP_BLESS=1`
//! regeneration, and unified-diff failure output (also written under
//! `target/golden-diff/` for CI artifact upload).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

pub fn diff_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("target/golden-diff")
}

/// Compare `actual` against `tests/golden/<name>.txt`, blessing the file
/// instead when `ECNUDP_BLESS=1`.
pub fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("ECNUDP_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("bless golden");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with ECNUDP_BLESS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let diff = unified_diff(&expected, actual, name);
        let out = diff_dir();
        let _ = std::fs::create_dir_all(&out);
        let _ = std::fs::write(out.join(format!("{name}.actual.txt")), actual);
        let _ = std::fs::write(out.join(format!("{name}.diff.txt")), &diff);
        panic!(
            "golden mismatch for {name} (ECNUDP_BLESS=1 regenerates; \
             artifacts in target/golden-diff/):\n{diff}"
        );
    }
}

/// Minimal unified diff (LCS over lines, 3 lines of context) — enough to
/// read a report divergence without external tooling.
pub fn unified_diff(expected: &str, actual: &str, name: &str) -> String {
    let a: Vec<&str> = expected.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    // LCS lengths, bottom-up
    let mut lcs = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in (0..a.len()).rev() {
        for j in (0..b.len()).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    // walk: ' ' common, '-' expected-only, '+' actual-only
    let mut ops: Vec<(char, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            ops.push((' ', i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(('-', i, j));
            i += 1;
        } else {
            ops.push(('+', i, j));
            j += 1;
        }
    }
    while i < a.len() {
        ops.push(('-', i, j));
        i += 1;
    }
    while j < b.len() {
        ops.push(('+', i, j));
        j += 1;
    }

    const CTX: usize = 3;
    let changed: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, (c, _, _))| *c != ' ')
        .map(|(k, _)| k)
        .collect();
    let mut out = format!("--- golden/{name}.txt\n+++ actual\n");
    let mut k = 0usize;
    while k < changed.len() {
        // grow one hunk while changes stay within 2×CTX of each other
        let start = changed[k];
        let mut end = start;
        while k + 1 < changed.len() && changed[k + 1] <= end + 2 * CTX {
            k += 1;
            end = changed[k];
        }
        k += 1;
        let lo = start.saturating_sub(CTX);
        let hi = (end + CTX + 1).min(ops.len());
        let (a_start, b_start) = (ops[lo].1 + 1, ops[lo].2 + 1);
        let a_count = ops[lo..hi].iter().filter(|(c, _, _)| *c != '+').count();
        let b_count = ops[lo..hi].iter().filter(|(c, _, _)| *c != '-').count();
        let _ = writeln!(out, "@@ -{a_start},{a_count} +{b_start},{b_count} @@");
        for &(c, ai, bi) in &ops[lo..hi] {
            let line = if c == '+' { b[bi] } else { a[ai] };
            let _ = writeln!(out, "{c}{line}");
        }
    }
    out
}
