//! Spawned-binary coverage for the engine-topology and supervision flags:
//! zero-value rejection at parse time (`--shards 0`, `--processes 0`,
//! non-positive `--worker-timeout`), the supervised-mode ×
//! `--sample-traces` conflict, metrics/progress streaming worker
//! lifecycle under `--processes > 1`, and the `validate` metrics probe's
//! non-destructiveness (a pre-existing metrics file must survive
//! byte-identical — the probe opens for append, never truncate).

use std::path::Path;
use std::process::Command;

fn ecnudp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ecnudp"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn ecnudp")
}

#[test]
fn zero_shards_is_rejected_at_parse_with_the_flag_name() {
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--shards",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--shards") && err.contains("at least 1"),
        "error must name the flag and the floor: {err}"
    );
}

#[test]
fn zero_processes_is_rejected_at_parse_with_the_flag_name() {
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--processes",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--processes") && err.contains("at least 1"),
        "error must name the flag and the floor: {err}"
    );
}

#[test]
fn nonpositive_worker_timeout_is_rejected_at_parse_with_the_flag_name() {
    for bad in ["0", "-1.5", "inf", "nan"] {
        let out = ecnudp(&[
            "run",
            "--scenario",
            "scenarios/paper2015-mini.toml",
            "--worker-timeout",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(2), "usage errors exit 2 ({bad})");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--worker-timeout"),
            "error must name the flag ({bad}): {err}"
        );
    }
}

#[test]
fn supervised_mode_refuses_trace_sampling() {
    // raw trace records stay inside the worker process; the CLI must say
    // so instead of silently dropping the sampler
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--processes",
        "2",
        "--metrics",
        "target/test-scenarios/refused-metrics.jsonl",
        "--sample-traces",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(1), "config conflict exits 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--sample-traces") && err.contains("--processes 1"),
        "error must explain the conflict and the way out: {err}"
    );
}

#[test]
fn multiprocess_metrics_stream_reports_worker_lifecycle() {
    // --metrics/--progress now ride along with --processes > 1: the
    // parent's supervision events land on the stream as worker lines
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-scenarios");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let metrics = dir.join("mp-worker-lifecycle.jsonl");
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--processes",
        "2",
        "--metrics",
        metrics.to_str().expect("utf8 path"),
        "--progress",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stream = std::fs::read_to_string(&metrics).expect("metrics stream");
    assert!(
        stream.contains("\"type\":\"worker\""),
        "supervised metrics stream must carry worker lines: {stream}"
    );
    assert!(
        !stream.contains("\"type\":\"unit\""),
        "per-unit events stay inside the workers: {stream}"
    );
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn validate_leaves_a_preexisting_metrics_file_byte_identical() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-scenarios");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let metrics = dir.join("preexisting-metrics.jsonl");
    let body = "{\"event\":\"from-an-earlier-run\"}\n{\"event\":\"keep-me\"}\n";
    std::fs::write(&metrics, body).expect("seed metrics file");

    let metrics_arg = metrics.to_str().expect("utf8 path");
    let out = ecnudp(&[
        "validate",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        metrics_arg,
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("writable"), "probe must report: {stdout}");
    assert_eq!(
        std::fs::read_to_string(&metrics).expect("metrics file still there"),
        body,
        "validate must not truncate or rewrite an existing metrics file"
    );

    // and when the probe creates the file, it cleans it up again
    let fresh = dir.join("probe-created-metrics.jsonl");
    let _ = std::fs::remove_file(&fresh);
    let out = ecnudp(&[
        "validate",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        fresh.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    assert!(
        !fresh.exists(),
        "a probe-created metrics file must be removed again"
    );
    let _ = std::fs::remove_file(&metrics);
}
