//! The reproduction's core validity check: the measurement campaign,
//! working only from packets, must rediscover the ground truth the
//! scenario planted — blocked servers, bleaching routers, the EC2-only
//! oddity, web/ECN rates — without ever reading it.
//!
//! These campaigns run the trace-free default path (`keep_traces =
//! false`): every figure below is derived from the streamed aggregates,
//! proving the validity checks need no raw `TraceRecord`s either.

use ecnudp::core::{run_campaign, CampaignConfig, CampaignResult, FullReport};
use ecnudp::netsim::NodeId;
use ecnudp::pool::{PoolPlan, Scenario};
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn campaign(seed: u64) -> CampaignResult {
    let plan = PoolPlan::scaled(80);
    let cfg = CampaignConfig {
        discovery_rounds: 30,
        traces_per_vantage: Some(3),
        ..CampaignConfig::quick(seed)
    };
    run_campaign(&plan, &cfg)
}

#[test]
fn planted_ect_blackholes_are_measured_and_nothing_else() {
    let result = campaign(21);
    assert!(result.traces.is_empty(), "default campaign is trace-free");
    let f3 = FullReport::from_aggregates(&result).figure3;
    let planted: HashSet<Ipv4Addr> = result.truth.ect_blocked.iter().copied().collect();
    let measured: HashSet<Ipv4Addr> = f3.persistent_a.iter().copied().collect();
    // every always-blocked server is found from every location
    for addr in &planted {
        assert!(
            measured.contains(addr),
            "planted blackhole {addr} not measured"
        );
    }
    // and nothing spurious is persistent from EVERY location
    for addr in &measured {
        assert!(
            planted.contains(addr) || result.truth.ect_blocked_flaky.contains(addr),
            "false positive persistent blackhole {addr}"
        );
    }
}

#[test]
fn ec2_only_oddity_is_visible_only_from_ec2() {
    let result = campaign(22);
    let f3 = FullReport::from_aggregates(&result).figure3;
    let phoenix = result.truth.not_ect_blocked_ec2[0];
    for (location, servers) in &f3.per_location {
        let d = servers.get(&phoenix).expect("probed everywhere");
        let is_ec2 = location.starts_with("EC2");
        if is_ec2 {
            assert!(
                d.frac_b() > 0.5,
                "{location}: EC2 should see the 3b oddity (frac {})",
                d.frac_b()
            );
        } else {
            assert!(
                d.frac_b() < 0.5,
                "{location}: non-EC2 should not (frac {})",
                d.frac_b()
            );
        }
    }
}

#[test]
fn measured_ecn_share_tracks_planted_share() {
    let result = campaign(23);
    let f5 = FullReport::from_aggregates(&result).figure5;
    let planted_share =
        result.truth.web_ecn_on_count as f64 / result.truth.web_server_count.max(1) as f64;
    let measured_share = f5.negotiated_pct() / 100.0;
    assert!(
        (measured_share - planted_share).abs() < 0.12,
        "measured {measured_share:.3} vs planted {planted_share:.3}"
    );
}

#[test]
fn traceroute_finds_each_always_bleaching_router_region() {
    // Build the same world the campaign used and check that every planted
    // always-bleacher's address appears as (or immediately upstream of) a
    // measured strip location in at least one vantage's survey. The
    // path-level walk below needs the raw routes, so this run opts into
    // the keep_routes escape hatch (traces stay streamed).
    use ecnudp::core::{run_engine, EngineConfig};
    let plan = PoolPlan::scaled(80);
    let cfg = CampaignConfig {
        discovery_rounds: 30,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(24)
    };
    let run = run_engine(&plan, &cfg, &EngineConfig::default().keeping_routes());
    assert!(run.result.traces.is_empty(), "traces stay streamed");
    let result = run.result;
    let f4 = FullReport::from_aggregates(&result).figure4;
    assert!(
        f4.strip_locations as usize >= result.truth.bleach_always.len(),
        "each planted bleacher produces at least one observed strip location: {} < {}",
        f4.strip_locations,
        result.truth.bleach_always.len()
    );

    // reconstruct the world to map node ids to addresses
    let sc: Scenario = ecnudp::pool::build_scenario(
        &PoolPlan {
            churn_at: cfg.batch2_start,
            ..plan
        },
        cfg.seed,
    );
    let bleach_addrs: HashSet<Ipv4Addr> = result
        .truth
        .bleach_always
        .iter()
        .map(|(node, _): &(NodeId, _)| sc.sim.addr_of(*node))
        .collect();

    // every measured red run must start immediately downstream of a
    // planted bleacher (sometimes-bleachers excluded for strictness)
    let sometimes_addrs: HashSet<Ipv4Addr> = result
        .truth
        .bleach_sometimes
        .iter()
        .map(|(node, _)| sc.sim.addr_of(*node))
        .collect();
    let mut immediate = 0usize;
    let mut upstream_only = 0usize;
    let mut unexplained = 0usize;
    let mut checked = 0usize;
    for vr in &result.routes {
        for path in &vr.paths {
            let mut upstream: Vec<Ipv4Addr> = Vec::new();
            // Paths with a silent hop before the red run can't be
            // attributed (a loss burst may have hidden the bleacher's own
            // TTL) — skip them.
            if path
                .hops
                .iter()
                .take_while(|h| !h.modified(path.sent_ecn))
                .any(|h| h.router.is_none())
            {
                continue;
            }
            for hop in &path.hops {
                let Some(router) = hop.router else { continue };
                if hop.modified(path.sent_ecn) {
                    checked += 1;
                    let planted =
                        |a: &Ipv4Addr| bleach_addrs.contains(a) || sometimes_addrs.contains(a);
                    if upstream.last().map(planted).unwrap_or(false) {
                        immediate += 1;
                    } else if upstream.iter().any(planted) {
                        // a probabilistic bleacher can pass the mark for the
                        // probes of the next hop but strip it for a later
                        // TTL's probes — the red run then starts deeper
                        upstream_only += 1;
                    } else {
                        unexplained += 1;
                    }
                    break; // only the first red hop per path
                }
                upstream.push(router);
            }
        }
    }
    assert!(checked > 0, "some red runs observed");
    assert_eq!(
        unexplained, 0,
        "every red run has a planted bleacher upstream"
    );
    assert!(
        immediate * 10 >= checked * 9,
        "most red runs start immediately after the bleacher: {immediate}/{checked} (deeper: {upstream_only})"
    );
}

#[test]
fn no_ecn_blackhole_false_positives_without_planted_middleboxes() {
    // A world with zero ECN-hostile behaviour: the campaign must find no
    // persistent blackholes and (near-)perfect figure-2 percentages.
    let plan = PoolPlan {
        ect_blocked: 0,
        ect_blocked_flaky: 0,
        not_ect_blocked_global: 0,
        not_ect_blocked_ec2: 0,
        bleach_pe: 0,
        bleach_border: 0,
        bleach_interior: 0,
        bleach_access: 0,
        bleach_prob_pe: 0,
        bleach_prob_access: 0,
        ..PoolPlan::scaled(60)
    };
    let cfg = CampaignConfig {
        discovery_rounds: 30,
        traces_per_vantage: Some(2),
        ..CampaignConfig::quick(25)
    };
    let result = run_campaign(&plan, &cfg);
    let report = FullReport::from_aggregates(&result);
    let f3 = &report.figure3;
    assert!(
        f3.persistent_a.is_empty(),
        "no planted middleboxes, no persistent blackholes: {:?}",
        f3.persistent_a
    );
    let f4 = &report.figure4;
    assert_eq!(f4.strip_hops, 0, "no bleachers, no red hops");
    assert_eq!(f4.pass_hops, f4.total_hops);
}
