//! Cross-crate integration tests: the full pipeline (scenario → campaign →
//! analysis) at test scale, determinism, dataset serialisation, and
//! internal consistency of every analysis artefact.

use ecnudp::core::analysis::{figure2, figure3, figure4, figure5, table1, table2, FullReport};
use ecnudp::core::{run_campaign, run_campaign_with_traces, CampaignConfig, CampaignResult};
use ecnudp::pool::PoolPlan;

fn mini_cfg(seed: u64, traces_per_vantage: usize) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(traces_per_vantage),
        ..CampaignConfig::quick(seed)
    }
}

/// These integration tests cross-check the analyses against the raw
/// records, so they opt into the trace-keeping escape hatch; the default
/// reducer-only path is covered by
/// `default_campaign_is_trace_free_and_reports_identically` below.
fn mini_campaign(seed: u64, traces_per_vantage: usize) -> CampaignResult {
    run_campaign_with_traces(&PoolPlan::scaled(50), &mini_cfg(seed, traces_per_vantage))
}

#[test]
fn pipeline_produces_consistent_artefacts() {
    let result = mini_campaign(1, 2);
    assert_eq!(result.targets.len(), 50);
    assert_eq!(result.traces.len(), 2 * 13);
    assert_eq!(result.routes.len(), 13);

    let report = FullReport::from_campaign(&result);

    // Table 1: totals match the target list
    assert_eq!(report.table1.total, 50);
    let row_sum: usize = report.table1.rows.iter().map(|(_, c)| c).sum();
    assert_eq!(row_sum, 50);

    // Figure 2: percentages are sane and most of the pool answers
    assert!(report.figure2.avg_a > 85.0 && report.figure2.avg_a <= 100.0);
    assert!(report.figure2.avg_b > 85.0 && report.figure2.avg_b <= 100.0);
    assert!(report.figure2.avg_plain_reachable > 35.0);

    // Figure 3: planted persistent blackholes are found
    assert!(!report.figure3.persistent_a.is_empty());
    for addr in &report.figure3.persistent_a {
        assert!(
            result.truth.ect_blocked.contains(addr)
                || result.truth.ect_blocked_flaky.contains(addr),
            "measured blackhole {addr} must be planted"
        );
    }

    // Figure 4: the paper's own arithmetic must hold on our data:
    // pass + strip − sometimes = total
    let f4 = &report.figure4;
    assert_eq!(
        f4.pass_hops + f4.strip_hops - f4.sometimes_hops,
        f4.total_hops
    );
    assert!(f4.total_hops > 1000);
    assert!(f4.pass_fraction() > 0.8);
    assert_eq!(f4.ce_observed, 0, "no CE on uncongested paths");
    assert!(f4.strip_locations >= 1);
    assert!(f4.paths == 13 * 50);

    // Figure 5: negotiation share within the plausible band
    assert!(report.figure5.avg_reachable > 10.0);
    let share = report.figure5.negotiated_pct();
    assert!(share > 50.0 && share < 100.0, "share {share}");

    // Figure 6: our point extends the historical series
    assert_eq!(report.figure6.points.len(), 8);
    assert!(report.figure6.fit.k > 0.0);

    // Table 2: weak correlation, most blocked servers still negotiate
    assert!(report.table2.phi.abs() < 0.5);

    // the whole report renders without panicking and mentions every artefact
    let text = report.render();
    for needle in [
        "Table 1",
        "Figure 2a",
        "Figure 3",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "Table 2",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
}

#[test]
fn default_campaign_is_trace_free_and_reports_identically() {
    // run_campaign (the default path) retains no raw records…
    let lean = run_campaign(&PoolPlan::scaled(50), &mini_cfg(1, 2));
    assert!(lean.traces.is_empty(), "default path keeps no TraceRecord");
    assert_eq!(lean.aggregates.trace_stats.len(), 2 * 13);
    // …yet renders byte-for-byte what the trace walk derives from a
    // trace-keeping run of the same campaign.
    let kept = mini_campaign(1, 2);
    assert_eq!(
        FullReport::from_campaign(&lean).render(),
        FullReport::from_traces(&kept).render(),
    );
}

#[test]
fn sequential_campaign_is_deterministic() {
    let a = mini_campaign(7, 1);
    let b = mini_campaign(7, 1);
    assert_eq!(a.targets, b.targets);
    assert_eq!(a.traces.len(), b.traces.len());
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.vantage_key, tb.vantage_key);
        assert_eq!(ta.started_at, tb.started_at);
        for (oa, ob) in ta.outcomes.iter().zip(&tb.outcomes) {
            assert_eq!(oa.server, ob.server);
            assert_eq!(oa.udp_plain.reachable, ob.udp_plain.reachable);
            assert_eq!(oa.udp_ect.reachable, ob.udp_ect.reachable);
            assert_eq!(oa.tcp_ecn.negotiated_ecn, ob.tcp_ecn.negotiated_ecn);
        }
    }
    // and a different seed gives a different world
    let c = mini_campaign(8, 1);
    assert_ne!(a.targets, c.targets);
}

#[test]
fn dataset_serialises_like_the_published_one() {
    let result = mini_campaign(3, 1);
    // traces are the dataset artefact (the paper published theirs with a
    // DOI); ours must survive a JSON roundtrip bit-for-bit
    let json = serde_json::to_string(&result.traces).expect("serialise");
    let back: Vec<ecnudp::core::TraceRecord> = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.len(), result.traces.len());
    for (orig, re) in result.traces.iter().zip(&back) {
        assert_eq!(orig.vantage_key, re.vantage_key);
        assert_eq!(orig.outcomes.len(), re.outcomes.len());
        for (a, b) in orig.outcomes.iter().zip(&re.outcomes) {
            assert_eq!(a.server, b.server);
            assert_eq!(a.udp_plain.reachable, b.udp_plain.reachable);
            assert_eq!(a.tcp_ecn.syn_ack_flags, b.tcp_ecn.syn_ack_flags);
        }
    }
    // routes too
    let json = serde_json::to_string(&result.routes).expect("serialise routes");
    let back: Vec<ecnudp::core::VantageRoutes> = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.len(), 13);
}

#[test]
fn analyses_agree_with_each_other() {
    let result = mini_campaign(5, 2);
    let f2 = figure2(&result.traces);
    let f3 = figure3(&result.traces);
    let f5 = figure5(&result.traces);
    let t2 = table2(&result.traces);
    let t1 = table1(&result.geodb, &result.targets);
    let f4 = figure4(&result.routes, &result.asdb);

    // Figure 2 bar count == trace count; Figure 5 likewise
    assert_eq!(f2.bars.len(), result.traces.len());
    assert_eq!(f5.bars.len(), result.traces.len());

    // per-location tables all enumerate the same 13 locations
    assert_eq!(f3.high_diff_a.len(), 13);
    assert_eq!(t2.rows.len(), 13);

    // Table 2's per-location average differential equals Figure 3's
    // underlying counts aggregated differently
    for row in &t2.rows {
        let (_, servers) = f3
            .per_location
            .iter()
            .find(|(name, _)| *name == row.location)
            .expect("location present");
        let total_diff: u32 = servers.values().map(|d| d.diff_a).sum();
        let traces = row.traces as f64;
        let avg_from_f3 = f64::from(total_diff) / traces;
        assert!(
            (avg_from_f3 - row.avg_udp_ect_unreachable).abs() < 1e-9,
            "{}: {} vs {}",
            row.location,
            avg_from_f3,
            row.avg_udp_ect_unreachable
        );
    }

    // hop observations only reference ASes the asdb knows or none
    assert!(f4.as_count <= result.truth.dest_as_count + 250);
    assert_eq!(t1.total, result.targets.len());
}

#[test]
fn engine_results_are_invariant_to_shards_and_stealing_order() {
    // The old sequential/parallel runner pair agreed only statistically;
    // the engine's shard count and unit scheduling order are pure
    // concurrency knobs, so the agreement is now *byte-for-byte*.
    use ecnudp::core::{run_engine, EngineConfig, UnitOrder};
    let plan = PoolPlan::scaled(40);
    let cfg = CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(2),
        run_traceroute: false,
        ..CampaignConfig::quick(11)
    };
    let seq = run_engine(&plan, &cfg, &EngineConfig::with_shards(1).keeping_traces());
    let par = run_engine(
        &plan,
        &cfg,
        &EngineConfig {
            shards: Some(5),
            unit_order: UnitOrder::Shuffled(99),
            ..EngineConfig::default()
        }
        .keeping_traces(),
    );
    assert_eq!(seq.units, par.units, "unit pool is shard-independent");
    assert_eq!(seq.result.targets, par.result.targets);
    assert_eq!(
        serde_json::to_string(&seq.result.traces).expect("serialise"),
        serde_json::to_string(&par.result.traces).expect("serialise"),
        "raw trace records identical under work stealing"
    );
    assert_eq!(
        seq.result.aggregates, par.result.aggregates,
        "streamed aggregates identical under work stealing"
    );
    let f3s = figure3(&seq.result.traces);
    let f3p = figure3(&par.result.traces);
    assert_eq!(f3s.persistent_a, f3p.persistent_a, "same blackholes found");
}
