//! The event-stream gates: the typed `Subscriber` layer must be pure
//! observation, and its exports must be deterministic.
//!
//! - **Invisibility**: running the engine with `Subscriber = ()` — or with
//!   a real metrics subscriber attached — renders byte-for-byte the same
//!   `FullReport` as the unobserved engine, for every shard count and
//!   work-stealing order (the alloc side of the zero-cost contract is
//!   gated in `crates/bench/tests/alloc_regression.rs`).
//! - **Stream determinism**: the JSON-lines metrics stream is
//!   byte-identical for any shard count once the summary's `wall_ms` —
//!   its only wall-clock field — is normalized away.
//! - **Sampler equivalence** (property): `TraceSampler` at rate 1-in-N
//!   retains *exactly* the hash-selected subset of the records a
//!   `keeping_traces()` run yields, byte-equal and shard-invariant.
//! - **Golden**: the `paper2015-mini` metrics stream is pinned under
//!   `tests/golden/` (regenerate with `ECNUDP_BLESS=1`).
//! - **CLI**: an unwritable `--metrics` path fails fast — before the
//!   campaign runs — naming the path; `validate` probes writability
//!   non-destructively.

#[path = "util/golden.rs"]
mod golden;

use ecnudp::core::{
    run_engine, run_engine_observed, run_scenario_observed, CampaignConfig, EngineConfig,
    FullReport, JsonLinesMetrics, TraceRecord, TraceSampler, UnitOrder,
};
use ecnudp::pool::{PoolPlan, ScenarioSpec};
use golden::check_golden;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::process::Command;
use std::sync::OnceLock;

/// The golden suite's mini world: `PoolPlan::scaled(40)` under the quick
/// calendar (same shape as `tests/determinism.rs`).
fn mini_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 25,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    }
}

fn baseline_report() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let run = run_engine(
            &PoolPlan::scaled(40),
            &mini_cfg(2015),
            &EngineConfig::with_shards(1),
        );
        FullReport::from_campaign(&run.result).render()
    })
}

/// Truncate the `wall_ms` value — the stream's only wall-clock field — so
/// streams from different runs can be compared byte-for-byte.
fn normalize_wall_ms(stream: &str) -> String {
    stream
        .lines()
        .map(|line| match line.find("\"wall_ms\":") {
            Some(pos) => format!("{}\"wall_ms\":0}}", &line[..pos]),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

// ------------------------------------------------------------ invisibility

#[test]
fn noop_subscriber_renders_the_exact_unobserved_report() {
    let baseline = baseline_report();
    let plan = PoolPlan::scaled(40);
    let cfg = mini_cfg(2015);
    let shapes = [
        (1usize, UnitOrder::default()),
        (4, UnitOrder::default()),
        (13, UnitOrder::default()),
        (32, UnitOrder::default()),
        (4, UnitOrder::Reversed),
        (4, UnitOrder::Shuffled(7)),
    ];
    for (shards, unit_order) in shapes {
        let eng = EngineConfig {
            shards: Some(shards),
            unit_order,
            ..EngineConfig::default()
        };
        let (run, ()) = run_engine_observed(&plan, &cfg, &eng, ());
        assert_eq!(
            *baseline,
            FullReport::from_campaign(&run.result).render(),
            "Subscriber = () leaked into the result \
             (shards={shards}, order={unit_order:?})"
        );
    }
}

#[test]
fn metrics_stream_is_byte_identical_for_any_shard_count() {
    let plan = PoolPlan::scaled(40);
    let cfg = mini_cfg(2015);
    let mut streams: Vec<String> = Vec::new();
    for shards in [1usize, 4, 13] {
        let sub = JsonLinesMetrics::new(Vec::new())
            .with_header("mini", 2015)
            .snapshot_every(5);
        let (run, sub) = run_engine_observed(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(shards),
                ..EngineConfig::default()
            },
            sub,
        );
        // a *real* subscriber is just as invisible as `()`
        assert_eq!(
            *baseline_report(),
            FullReport::from_campaign(&run.result).render(),
            "metrics subscriber leaked into the result (shards={shards})"
        );
        let raw = String::from_utf8(sub.into_writer().expect("no io error")).unwrap();
        streams.push(normalize_wall_ms(&raw));
    }
    assert_eq!(streams[0], streams[1], "shards=1 vs shards=4");
    assert_eq!(streams[0], streams[2], "shards=1 vs shards=13");
    // and the stream has the documented shape
    let lines: Vec<&str> = streams[0].lines().collect();
    assert!(lines[0].starts_with("{\"type\":\"campaign\",\"scenario\":\"mini\",\"seed\":2015"));
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"unit\""))
            .count(),
        13,
        "one unit line per (vantage, chunk)"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"snapshot\""))
            .count(),
        2,
        "cumulative snapshots every 5 of 13 units"
    );
    assert!(lines.last().unwrap().starts_with("{\"type\":\"summary\""));
}

// ------------------------------------------------------- sampler property

/// The sampler property runs in a smaller, traceroute-free world with two
/// traces per vantage and chunked target lists, so chunk-partial
/// stitching is actually exercised.
fn sampler_cfg() -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 20,
        traces_per_vantage: Some(2),
        run_traceroute: false,
        ..CampaignConfig::quick(2015)
    }
}

fn sampler_eng(shards: usize, order_seed: u64) -> EngineConfig {
    EngineConfig {
        shards: Some(shards),
        target_chunks: 2,
        unit_order: UnitOrder::Shuffled(order_seed),
        ..EngineConfig::default()
    }
}

/// The `keeping_traces()` reference records, serialized — computed once.
fn kept_baseline() -> &'static Vec<TraceRecord> {
    static BASELINE: OnceLock<Vec<TraceRecord>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let run = run_engine(
            &PoolPlan::scaled(24),
            &sampler_cfg(),
            &sampler_eng(1, 0).keeping_traces(),
        );
        assert!(!run.result.traces.is_empty());
        run.result.traces.clone()
    })
}

/// Recompute each kept record's per-vantage `trace_index`: the engine's
/// stable sort preserves schedule order within a vantage, so the index is
/// the record's position among its vantage's records.
fn expected_sample(every: usize) -> Vec<String> {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    kept_baseline()
        .iter()
        .filter_map(|rec| {
            let idx = seen.entry(rec.vantage_key.as_str()).or_insert(0);
            let trace_index = *idx;
            *idx += 1;
            TraceSampler::selects(every, &rec.vantage_key, trace_index)
                .then(|| serde_json::to_string(rec).unwrap())
        })
        .collect()
}

/// Each case runs one observed campaign against the cached baseline:
/// 3 cases by default keeps `cargo test -q` inside the CI budget, while
/// the deep-properties job's `PROPTEST_CASES=256` widens the
/// (every, shards, order) sweep to 32 campaigns.
fn sampler_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|n| (n / 8).max(3))
        .unwrap_or(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(sampler_cases()))]
    #[test]
    fn sampler_keeps_exactly_the_hash_selected_subset(
        every in 1usize..=9,
        shards in 1usize..=5,
        order_seed in 0u64..1_000,
    ) {
        let (_, sampler) = run_engine_observed(
            &PoolPlan::scaled(24),
            &sampler_cfg(),
            &sampler_eng(shards, order_seed),
            TraceSampler::new(every),
        );
        let got: Vec<String> = sampler
            .records()
            .iter()
            .map(|rec| serde_json::to_string(rec).unwrap())
            .collect();
        prop_assert_eq!(
            got,
            expected_sample(every),
            "1-in-{} sample diverged from the keeping_traces subset \
             (shards={}, order={})",
            every, shards, order_seed
        );
    }
}

#[test]
fn sampler_at_rate_one_is_keeping_traces() {
    // the degenerate case, pinned outside proptest: 1-in-1 sampling IS
    // the full keep_traces record set, bytes and order
    let (_, sampler) = run_engine_observed(
        &PoolPlan::scaled(24),
        &sampler_cfg(),
        &sampler_eng(3, 42),
        TraceSampler::new(1),
    );
    let got: Vec<String> = sampler
        .records()
        .iter()
        .map(|rec| serde_json::to_string(rec).unwrap())
        .collect();
    assert_eq!(got, expected_sample(1));
    assert_eq!(got.len(), kept_baseline().len());
}

// ------------------------------------------------------------------ golden

#[test]
fn paper2015_mini_metrics_stream_matches_golden() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/paper2015-mini.toml");
    let spec = ScenarioSpec::from_toml_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    let sub = JsonLinesMetrics::new(Vec::new())
        .with_header(&spec.name, spec.seed)
        .snapshot_every(spec.observability.snapshot_every);
    let (_, sub) = run_scenario_observed(&spec, Some(3), sub);
    let raw = String::from_utf8(sub.into_writer().expect("no io error")).unwrap();
    check_golden("metrics_paper2015_mini", &normalize_wall_ms(&raw));
}

// --------------------------------------------------------------------- CLI

fn ecnudp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ecnudp"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn ecnudp")
}

#[test]
fn cli_unwritable_metrics_path_fails_before_the_campaign() {
    let bogus = "target/no-such-dir/metrics.jsonl";
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        bogus,
    ]);
    assert_eq!(out.status.code(), Some(1), "command errors exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains(bogus), "error must name the path: {err}");
    assert!(
        !err.contains("campaign done"),
        "must fail before the campaign runs: {err}"
    );

    // validate probes the same path without running anything
    let out = ecnudp(&[
        "validate",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        bogus,
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains(bogus),
        "validate error must name the path"
    );

    // --sample-traces without a metrics sink is an error, not a no-op
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--sample-traces",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--metrics"),
        "error must point at the missing flag"
    );
}

#[test]
fn cli_validate_probe_is_nondestructive() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-metrics");
    std::fs::create_dir_all(&dir).unwrap();

    // a path the probe creates must not be left behind
    let fresh = dir.join("fresh.jsonl");
    let _ = std::fs::remove_file(&fresh);
    let out = ecnudp(&[
        "validate",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        fresh.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("writable"),
        "validate reports the metrics sink"
    );
    assert!(!fresh.exists(), "probe must remove the file it created");

    // an existing file's contents survive the probe untouched
    let existing = dir.join("existing.jsonl");
    std::fs::write(&existing, "precious bytes\n").unwrap();
    let out = ecnudp(&[
        "validate",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--metrics",
        existing.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&existing).unwrap(),
        "precious bytes\n",
        "probe must not clobber an existing file"
    );
}

#[test]
fn cli_metrics_file_carries_the_stream_and_sampled_traces() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/test-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("run.jsonl");
    let out = ecnudp(&[
        "run",
        "--scenario",
        "scenarios/paper2015-mini.toml",
        "--shards",
        "2",
        "--metrics",
        metrics.to_str().unwrap(),
        "--sample-traces",
        "1",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stream = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    assert!(
        lines[0].starts_with("{\"type\":\"campaign\",\"scenario\":\"paper2015-mini\""),
        "{}",
        lines[0]
    );
    let units = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"unit\""))
        .count();
    let traces = lines
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"trace\",\"record\":"))
        .count();
    assert_eq!(units, 13);
    assert_eq!(
        traces, 13,
        "1-in-1 sampling appends every logical trace record"
    );
    // sampled records land *after* the summary line (appended post-finish)
    let summary_at = lines
        .iter()
        .position(|l| l.starts_with("{\"type\":\"summary\""))
        .expect("summary line");
    let first_trace = lines
        .iter()
        .position(|l| l.starts_with("{\"type\":\"trace\""))
        .expect("trace line");
    assert!(summary_at < first_trace);
}
