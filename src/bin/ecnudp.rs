//! `ecnudp` — run any ECN-measurement world from a declarative scenario
//! file.
//!
//! ```text
//! ecnudp run --scenario scenarios/paper2015.toml            # full report to stdout
//! ecnudp run --scenario scenarios/lossy-edge.toml --json    # machine-readable summary
//! ecnudp run --scenario my.toml --shards 4 --seed 7         # pin concurrency, override seed
//! ecnudp validate --scenario my.toml                        # parse + lower + summarise, no run
//! ```
//!
//! Spec files are TOML (or JSON with `--json`-style objects); every
//! omitted key keeps its `paper2015` default, so a file only states its
//! deltas. See the "Scenario cookbook" section of README.md for the full
//! schema and `scenarios/` for the documented preset library.
//!
//! The report goes to **stdout** (exactly `FullReport::render()`, byte-
//! identical for any `--shards` value); progress and diagnostics go to
//! stderr, so `ecnudp run ... > report.txt` captures a clean artefact.

use ecnudp::core::{run_scenario_sharded, FullReport, RunSummary};
use ecnudp::pool::ScenarioSpec;
use std::process::ExitCode;

const USAGE: &str = "\
ecnudp — declarative ECN-measurement scenarios

USAGE:
    ecnudp run      --scenario <file> [--shards N] [--json]
                    [--seed N] [--servers N] [--quick]
    ecnudp validate --scenario <file> [--seed N] [--servers N] [--quick]
    ecnudp help

COMMANDS:
    run        load the spec, run the sharded campaign engine, and render
               the FullReport (text to stdout; --json for a summary)
    validate   load and cross-check the spec, print what it lowers to,
               and exit without running anything

OPTIONS:
    --scenario <file>   TOML or JSON scenario spec (see scenarios/)
    --shards <N>        engine shards (default: available parallelism;
                        any value renders byte-identical output)
    --json              emit a machine-readable RunSummary instead of the
                        text report
    --seed <N>          override the spec's seed
    --servers <N>       override the spec's population size
    --quick             override the schedule profile to `quick`

Omitted spec keys keep their paper2015 defaults; unknown keys are errors.";

struct Args {
    command: String,
    scenario: Option<String>,
    shards: Option<usize>,
    json: bool,
    seed: Option<u64>,
    servers: Option<usize>,
    quick: bool,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let command = argv.next().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        scenario: None,
        shards: None,
        json: false,
        seed: None,
        servers: None,
        quick: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--json" => args.json = true,
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--servers" => {
                args.servers = Some(
                    value("--servers")?
                        .parse()
                        .map_err(|e| format!("--servers: {e}"))?,
                )
            }
            "--quick" => args.quick = true,
            other => return Err(format!("unknown flag `{other}` (see `ecnudp help`)")),
        }
    }
    Ok(args)
}

/// Load the spec file (format chosen by extension, JSON sniffed as a
/// fallback) and apply the CLI overrides.
fn load_spec(args: &Args) -> Result<ScenarioSpec, String> {
    let path = args
        .scenario
        .as_deref()
        .ok_or("missing --scenario <file> (presets live in scenarios/)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = path.ends_with(".json") || text.trim_start().starts_with('{');
    let mut spec = if json {
        ScenarioSpec::from_json_str(&text)
    } else {
        ScenarioSpec::from_toml_str(&text)
    }
    .map_err(|e| format!("{path}: {e}"))?;
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(servers) = args.servers {
        spec.population.servers = servers;
    }
    if args.quick {
        spec.schedule.profile = ecnudp::pool::ScheduleProfile::Quick;
    }
    if args.seed.is_some() || args.servers.is_some() || args.quick {
        spec.validate().map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(spec)
}

fn describe(spec: &ScenarioSpec) -> String {
    let plan = spec.plan();
    format!(
        "scenario `{}`: seed {}, {} servers across ~{} ASes, {} vantages, \
         {} ECT-droppers (+{} flaky), {} bleachers ({} probabilistic), \
         traceroute {}",
        spec.name,
        spec.seed,
        plan.servers,
        plan.total_as_count(),
        plan.vantage_count,
        plan.ect_blocked,
        plan.ect_blocked_flaky,
        plan.bleach_pe + plan.bleach_border + plan.bleach_interior + plan.bleach_access,
        plan.bleach_prob_pe + plan.bleach_prob_access,
        if spec.traceroute { "on" } else { "off" },
    )
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = load_spec(args)?;
    eprintln!("{}", describe(&spec));
    let run = run_scenario_sharded(&spec, args.shards);
    let report = FullReport::from_campaign(&run.result);
    eprintln!(
        "campaign done: {} shards over {} units, {} targets, {} traces ({})",
        run.shards,
        run.units,
        run.result.targets.len(),
        run.result.aggregates.trace_stats.len(),
        run.timing.render(),
    );
    if args.json {
        let summary = RunSummary::new(&spec, &run, &report);
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let spec = load_spec(args)?;
    println!("{}", describe(&spec));
    let cfg = ecnudp::core::campaign_config(&spec);
    println!(
        "schedule: {} discovery rounds, traces/vantage {}, target chunks {}, \
         batch 2 at +{}s",
        cfg.discovery_rounds,
        cfg.traces_per_vantage
            .map(|n| n.to_string())
            .unwrap_or_else(|| "full Table 2 allocation".into()),
        spec.schedule.target_chunks,
        cfg.batch2_start.0 / 1_000_000_000,
    );
    println!("ok");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "validate" => cmd_validate(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (see `ecnudp help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
