//! `ecnudp` — run any ECN-measurement world from a declarative scenario
//! file.
//!
//! ```text
//! ecnudp run --scenario scenarios/paper2015.toml            # full report to stdout
//! ecnudp run --scenario scenarios/lossy-edge.toml --json    # machine-readable summary
//! ecnudp run --scenario my.toml --shards 4 --seed 7         # pin concurrency, override seed
//! ecnudp run --scenario my.toml --metrics out.jsonl \
//!            --progress --sample-traces 8                   # event stream + 1-in-8 traces
//! ecnudp validate --scenario my.toml                        # parse + lower + summarise, no run
//! ```
//!
//! Spec files are TOML (or JSON with `--json`-style objects); every
//! omitted key keeps its `paper2015` default, so a file only states its
//! deltas. See the "Scenario cookbook" section of README.md for the full
//! schema and `scenarios/` for the documented preset library.
//!
//! The report goes to **stdout** (exactly `FullReport::render()`, byte-
//! identical for any `--shards` value); progress and diagnostics go to
//! stderr, so `ecnudp run ... > report.txt` captures a clean artefact.

use ecnudp::core::{
    campaign_config, engine_config, try_run_engine, try_run_engine_observed, FullReport,
    JsonLinesMetrics, MpError, Progress, RunSummary, TraceSampler,
};
use ecnudp::pool::ScenarioSpec;
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
ecnudp — declarative ECN-measurement scenarios

USAGE:
    ecnudp run      --scenario <file> [--shards N] [--processes N] [--json]
                    [--seed N] [--servers N] [--quick]
                    [--metrics <file>] [--progress] [--sample-traces N]
                    [--max-retries N] [--worker-timeout S]
                    [--checkpoint <file>] [--resume <file>]
    ecnudp validate --scenario <file> [--seed N] [--servers N] [--quick]
                    [--metrics <file>]
    ecnudp help

COMMANDS:
    run        load the spec, run the sharded campaign engine, and render
               the FullReport (text to stdout; --json for a summary)
    validate   load and cross-check the spec, print what it lowers to,
               and exit without running anything

OPTIONS:
    --scenario <file>   TOML or JSON scenario spec (see scenarios/)
    --shards <N>        engine shards per process (default: available
                        parallelism; any value renders byte-identical
                        output; must be >= 1)
    --processes <N>     worker processes (default 1 = in-process); the
                        unit pool is partitioned across spawned workers
                        under a supervisor and their reducers tree-merged,
                        bounding peak RSS per process — output stays
                        byte-identical; --metrics/--progress then observe
                        worker lifecycle instead of per-probe events; not
                        combinable with --sample-traces (raw trace records
                        stay inside the worker)
    --json              emit a machine-readable RunSummary instead of the
                        text report
    --seed <N>          override the spec's seed
    --servers <N>       override the spec's population size
    --quick             override the schedule profile to `quick`
    --metrics <file>    write a JSON-lines metrics stream (deterministic
                        except the summary's wall_ms; schema in DESIGN.md)
    --progress          print live unit/observation progress to stderr
    --sample-traces <N> keep 1-in-N logical traces by identity hash and
                        append them to the metrics stream (needs --metrics)
    --max-retries <N>   respawns per failed worker before the campaign
                        fails with a typed error (default 2; retries re-run
                        exactly the failed unit slice, byte-identically)
    --worker-timeout <S> per-worker deadline in seconds (fractions allowed;
                        default off): a worker delivering no payload in
                        time is killed and retried
    --checkpoint <file> after every worker payload, atomically persist
                        merged-so-far aggregates + the completed-unit
                        bitmap (enables the supervised driver even at
                        --processes 1)
    --resume <file>     resume from a checkpoint: verify it matches this
                        campaign, re-run only units absent from its bitmap
                        (keeps checkpointing to the same file unless
                        --checkpoint names another)

EXIT CODES:
    0  success        2  usage error
    1  config/spec/IO error
    3  campaign failed (worker retry budget exhausted, checkpoint
       mismatch) — the message names the worker, unit range, and cause

Omitted spec keys keep their paper2015 defaults; unknown keys are errors.";

/// A CLI failure: what to print, and which exit code it maps to.
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: 1, message }
    }
}

impl CliError {
    /// A supervised-campaign failure (exit code 3): typed, actionable,
    /// never a panic backtrace.
    fn campaign(e: MpError) -> CliError {
        CliError {
            code: 3,
            message: format!("campaign failed: {e}"),
        }
    }
}

struct Args {
    command: String,
    scenario: Option<String>,
    shards: Option<usize>,
    processes: usize,
    json: bool,
    seed: Option<u64>,
    servers: Option<usize>,
    quick: bool,
    metrics: Option<String>,
    progress: bool,
    sample_traces: Option<usize>,
    max_retries: Option<u32>,
    worker_timeout: Option<f64>,
    checkpoint: Option<String>,
    resume: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let command = argv.next().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        scenario: None,
        shards: None,
        processes: 1,
        json: false,
        seed: None,
        servers: None,
        quick: false,
        metrics: None,
        progress: false,
        sample_traces: None,
        max_retries: None,
        worker_timeout: None,
        checkpoint: None,
        resume: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--shards" => {
                let n: usize = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1 (got 0)".into());
                }
                args.shards = Some(n);
            }
            "--processes" => {
                let n: usize = value("--processes")?
                    .parse()
                    .map_err(|e| format!("--processes: {e}"))?;
                if n == 0 {
                    return Err("--processes must be at least 1 (got 0)".into());
                }
                args.processes = n;
            }
            "--json" => args.json = true,
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--servers" => {
                args.servers = Some(
                    value("--servers")?
                        .parse()
                        .map_err(|e| format!("--servers: {e}"))?,
                )
            }
            "--quick" => args.quick = true,
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--progress" => args.progress = true,
            "--sample-traces" => {
                args.sample_traces = Some(
                    value("--sample-traces")?
                        .parse()
                        .map_err(|e| format!("--sample-traces: {e}"))?,
                )
            }
            "--max-retries" => {
                args.max_retries = Some(
                    value("--max-retries")?
                        .parse()
                        .map_err(|e| format!("--max-retries: {e}"))?,
                )
            }
            "--worker-timeout" => {
                let s: f64 = value("--worker-timeout")?
                    .parse()
                    .map_err(|e| format!("--worker-timeout: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!(
                        "--worker-timeout must be a positive number of seconds (got {s})"
                    ));
                }
                args.worker_timeout = Some(s);
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--resume" => args.resume = Some(value("--resume")?),
            other => return Err(format!("unknown flag `{other}` (see `ecnudp help`)")),
        }
    }
    Ok(args)
}

/// Load the spec file (format chosen by extension, JSON sniffed as a
/// fallback) and apply the CLI overrides.
fn load_spec(args: &Args) -> Result<ScenarioSpec, String> {
    let path = args
        .scenario
        .as_deref()
        .ok_or("missing --scenario <file> (presets live in scenarios/)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = path.ends_with(".json") || text.trim_start().starts_with('{');
    let mut spec = if json {
        ScenarioSpec::from_json_str(&text)
    } else {
        ScenarioSpec::from_toml_str(&text)
    }
    .map_err(|e| format!("{path}: {e}"))?;
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(servers) = args.servers {
        spec.population.servers = servers;
    }
    if args.quick {
        spec.schedule.profile = ecnudp::pool::ScheduleProfile::Quick;
    }
    if let Some(metrics) = &args.metrics {
        spec.observability.metrics = metrics.clone();
    }
    if args.progress {
        spec.observability.progress = true;
    }
    if let Some(every) = args.sample_traces {
        spec.observability.sample_traces = every;
    }
    if spec.observability.sample_traces > 0 && spec.observability.metrics.is_empty() {
        return Err(
            "--sample-traces needs a metrics sink: pass --metrics <file> \
             (or set observability.metrics in the spec)"
                .into(),
        );
    }
    let overridden = args.seed.is_some()
        || args.servers.is_some()
        || args.quick
        || args.metrics.is_some()
        || args.progress
        || args.sample_traces.is_some();
    if overridden {
        spec.validate().map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(spec)
}

/// Create/truncate the metrics file up front, so an unwritable path fails
/// before the campaign runs (not after minutes of work). The error names
/// the path.
fn open_metrics(path: &str) -> Result<File, String> {
    File::create(path).map_err(|e| format!("cannot write metrics file `{path}`: {e}"))
}

fn describe(spec: &ScenarioSpec) -> String {
    let plan = spec.plan();
    format!(
        "scenario `{}`: seed {}, {} servers across ~{} ASes, {} vantages, \
         {} ECT-droppers (+{} flaky), {} bleachers ({} probabilistic), \
         traceroute {}",
        spec.name,
        spec.seed,
        plan.servers,
        plan.total_as_count(),
        plan.vantage_count,
        plan.ect_blocked,
        plan.ect_blocked_flaky,
        plan.bleach_pe + plan.bleach_border + plan.bleach_interior + plan.bleach_access,
        plan.bleach_prob_pe + plan.bleach_prob_access,
        if spec.traceroute { "on" } else { "off" },
    )
}

/// Lower the spec's `[resilience]` section plus the CLI's supervision
/// flags into the engine configuration. `--resume` doubles as the
/// checkpoint sink so an interrupted resume can itself be resumed, unless
/// `--checkpoint` names another file.
fn build_engine_config(spec: &ScenarioSpec, args: &Args) -> ecnudp::core::EngineConfig {
    let mut eng = engine_config(spec);
    eng.shards = args.shards;
    eng.processes = args.processes;
    if let Some(n) = args.max_retries {
        eng.max_worker_retries = n;
    }
    if let Some(s) = args.worker_timeout {
        eng.worker_timeout = Some(Duration::from_secs_f64(s));
    }
    if let Some(path) = &args.checkpoint {
        eng.checkpoint = Some(path.into());
    }
    if let Some(path) = &args.resume {
        eng.resume = Some(path.into());
        if eng.checkpoint.is_none() {
            eng.checkpoint = Some(path.into());
        }
    }
    eng
}

fn cmd_run(args: &Args) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    eprintln!("{}", describe(&spec));
    let obs = spec.observability.clone();
    // Open the metrics sink before the campaign so a bad path fails fast.
    let metrics_file = match obs.metrics.as_str() {
        "" => None,
        path => Some(open_metrics(path)?),
    };
    let observed = metrics_file.is_some() || obs.progress || obs.sample_traces > 0;
    let eng = build_engine_config(&spec, args);
    if eng.supervised() && obs.sample_traces > 0 {
        return Err(CliError::from(
            "--sample-traces keeps raw trace records, which do not cross the \
             worker-process boundary; drop it, or run with --processes 1 and \
             no --checkpoint/--resume"
                .to_string(),
        ));
    }
    let plan = spec.plan();
    let cfg = campaign_config(&spec);
    let (run, subscriber) = if observed {
        let metrics = metrics_file.map(|f| {
            JsonLinesMetrics::new(f)
                .with_header(&spec.name, spec.seed)
                .snapshot_every(obs.snapshot_every)
        });
        let progress = obs.progress.then(Progress::new);
        let sampler = (obs.sample_traces > 0).then(|| TraceSampler::new(obs.sample_traces));
        let (run, sub) = try_run_engine_observed(&plan, &cfg, &eng, (metrics, (progress, sampler)))
            .map_err(CliError::campaign)?;
        (run, Some(sub))
    } else {
        // the zero-cost path: Subscriber = () compiles the hooks away
        let run = try_run_engine(&plan, &cfg, &eng).map_err(CliError::campaign)?;
        (run, None)
    };
    if let Some((Some(m), (_progress, sampler))) = subscriber {
        let write_err = |e| format!("cannot write metrics file `{}`: {e}", obs.metrics);
        let mut sink = m.into_writer().map_err(write_err)?;
        let sampled = sampler.as_ref().map_or(0, |s| s.records().len());
        if let Some(s) = &sampler {
            for rec in s.records() {
                let json = serde_json::to_string(rec).map_err(|e| e.to_string())?;
                writeln!(sink, "{{\"type\":\"trace\",\"record\":{json}}}").map_err(write_err)?;
            }
            sink.flush().map_err(write_err)?;
        }
        eprintln!(
            "metrics: {} ({} sampled trace records)",
            obs.metrics, sampled
        );
    }
    let report = FullReport::from_campaign(&run.result);
    eprintln!(
        "campaign done: {} process(es) x {} shards over {} units (merge depth {}), \
         {} targets, {} traces, peak RSS {} kB ({})",
        run.processes,
        run.shards,
        run.units,
        run.merge_depth,
        run.result.targets.len(),
        run.result.aggregates.trace_stats.len(),
        run.peak_rss_kb,
        run.timing.render(),
    );
    if args.json {
        let summary = RunSummary::new(&spec, &run, &report);
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let spec = load_spec(args)?;
    println!("{}", describe(&spec));
    let cfg = ecnudp::core::campaign_config(&spec);
    println!(
        "schedule: {} discovery rounds, traces/vantage {}, target chunks {}, \
         batch 2 at +{}s",
        cfg.discovery_rounds,
        cfg.traces_per_vantage
            .map(|n| n.to_string())
            .unwrap_or_else(|| "full Table 2 allocation".into()),
        spec.schedule.target_chunks,
        cfg.batch2_start.0 / 1_000_000_000,
    );
    let obs = &spec.observability;
    if !obs.metrics.is_empty() {
        probe_metrics_writable(&obs.metrics)?;
        let sampling = match obs.sample_traces {
            0 => "no trace sampling".to_string(),
            n => format!("sampling 1-in-{n} traces"),
        };
        println!(
            "observability: metrics to {} (writable), snapshot every {} units, {}",
            obs.metrics, obs.snapshot_every, sampling
        );
    }
    println!("ok");
    Ok(())
}

/// Non-destructively check that the metrics path is writable: open it for
/// append (creating it if absent), then remove it again if this probe
/// created it. An existing file's contents are left untouched.
fn probe_metrics_writable(path: &str) -> Result<(), String> {
    let existed = std::path::Path::new(path).exists();
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot write metrics file `{path}`: {e}"))?;
    if !existed {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn main() -> ExitCode {
    // Hidden worker mode: when spawned by a --processes > 1 parent, serve
    // one unit-partition request over stdin/stdout and exit.
    if let Some(code) = ecnudp::core::maybe_worker() {
        return code;
    }
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "validate" => cmd_validate(&args).map_err(CliError::from),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::from(format!(
            "unknown command `{other}` (see `ecnudp help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
