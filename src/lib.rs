//! # ecnudp — *Is Explicit Congestion Notification usable with UDP?*
//!
//! A full reproduction of McQuistin & Perkins (IMC 2015) as a Rust
//! workspace: the measurement application and analysis ([`core`]), and the
//! simulated-Internet substrate it runs on (wire formats, packet-level
//! simulator, host stack, application services, pool population model).
//!
//! ```no_run
//! use ecnudp::core::{run_engine, CampaignConfig, EngineConfig, FullReport};
//! use ecnudp::pool::PoolPlan;
//!
//! // One blueprint, work-stealing shards, byte-identical for any shard count.
//! // The default is reducer-only: the report renders from streamed
//! // aggregates and the run retains zero raw TraceRecords at peak.
//! let run = run_engine(
//!     &PoolPlan::paper(),
//!     &CampaignConfig::default(),
//!     &EngineConfig::default(),
//! );
//! let report = FullReport::from_campaign(&run.result);
//! println!("{}", report.render());
//! eprintln!("{}", run.timing.render());
//! assert_eq!(run.peak_resident_traces, 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured audit of every table and figure.

pub use ecn_asdb as asdb;
pub use ecn_core as core;
pub use ecn_geo as geo;
pub use ecn_netsim as netsim;
pub use ecn_pool as pool;
pub use ecn_services as services;
pub use ecn_stack as stack;
pub use ecn_wire as wire;
