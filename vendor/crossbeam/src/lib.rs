//! Offline stub of `crossbeam` (scoped threads only).
//!
//! Wraps `std::thread::scope` in crossbeam's API shape: `scope` returns
//! a `Result`, `spawn` hands the closure a (here: unit) scope argument,
//! and `join` returns a `Result`. The workspace's call sites ignore the
//! scope argument (`spawn(move |_| …)`), which is what lets the stub
//! pass `()` instead of a real nested-spawn handle.

pub mod thread {
    use std::any::Any;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives `()` where
        /// crossbeam passes a nested `&Scope`; nested spawning is not
        /// supported by this stub.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
