//! Offline stub of `serde_json`: `to_string` / `from_str` over the
//! JSON-direct traits of the in-tree serde stub.

pub use serde::json::Error;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(input: &'a str) -> Result<T, Error> {
    let mut parser = serde::json::Parser::new(input);
    let value = T::deserialize_json(&mut parser)?;
    parser.finish()?;
    Ok(value)
}
