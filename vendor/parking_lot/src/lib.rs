//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with parking_lot's API shape: `lock()`
//! returns the guard directly instead of a poison `Result`. Lock
//! poisoning is deliberately ignored — if a thread panics while
//! holding the lock, the next `lock()` proceeds with the data as-is,
//! matching parking_lot semantics.

use std::sync::MutexGuard as StdGuard;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
