//! A small strict-enough JSON lexer/parser shared by the `Deserialize`
//! impls and the derive-generated code.

use std::fmt;

#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    position: usize,
}

impl Error {
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        Error {
            message: message.into(),
            position,
        }
    }

    pub fn missing_field(name: &str) -> Self {
        Error {
            message: format!("missing field `{name}`"),
            position: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

/// Append `s` to `out` as a JSON string literal with escaping.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Cursor over the input text.
pub struct Parser<'de> {
    input: &'de str,
    pos: usize,
}

impl<'de> Parser<'de> {
    pub fn new(input: &'de str) -> Self {
        Parser { input, pos: 0 }
    }

    pub fn error(&self, message: impl Into<String>) -> Error {
        Error::new(message, self.pos)
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    pub fn skip_ws(&mut self) {
        while let Some(b) = self.bytes().get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte, without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes().get(self.pos).copied()
    }

    /// Consume `c` or error.
    pub fn expect(&mut self, c: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes().get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`, found {:?}",
                c as char,
                self.bytes().get(self.pos).map(|b| *b as char)
            )))
        }
    }

    /// Consume `c` if present; report whether it was.
    pub fn try_consume(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.bytes().get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Verify the input is exhausted (trailing whitespace allowed).
    pub fn finish(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters"))
        }
    }

    /// Parse a JSON string literal into an owned string.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let bytes = self.input.as_bytes();
        loop {
            let Some(&b) = bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // no surrogate-pair support: the writer never
                            // emits \u for chars above 0x1f
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // advance one whole UTF-8 char
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Lex a numeric token and return its text.
    pub fn parse_number_str(&mut self) -> Result<&'de str, Error> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(b) = bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        Ok(&self.input[start..self.pos])
    }

    /// Consume the exact keyword `kw` (e.g. `true`, `null`).
    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    /// Does the upcoming token start the keyword `null`?
    pub fn peeks_null(&mut self) -> bool {
        self.skip_ws();
        self.input[self.pos..].starts_with("null")
    }

    /// Skip one complete JSON value (used for unknown object fields).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.try_consume(b'}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if !self.try_consume(b',') {
                        break;
                    }
                }
                self.expect(b'}')
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.try_consume(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if !self.try_consume(b',') {
                        break;
                    }
                }
                self.expect(b']')
            }
            Some(b't') => self.expect_keyword("true"),
            Some(b'f') => self.expect_keyword("false"),
            Some(b'n') => self.expect_keyword("null"),
            Some(_) => self.parse_number_str().map(|_| ()),
            None => Err(self.error("unexpected end of input")),
        }
    }
}
