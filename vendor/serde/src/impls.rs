//! `Serialize`/`Deserialize` impls for std types used by the workspace.

use crate::json::{write_escaped, Error, Parser};
use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::net::Ipv4Addr;

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&format!("{:?}", self));
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
                let text = p.parse_number_str()?;
                text.parse().map_err(|e| p.error(format!("bad number {text:?}: {e}")))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

// Floats: `{:?}` is shortest-roundtrip for finite values, but NaN/inf
// are not JSON — write `null` (as real serde_json does) and read it
// back as NaN so round-trips never produce unparseable output.
macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&format!("{:?}", self));
                } else {
                    out.push_str("null");
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
                if p.peeks_null() {
                    p.expect_keyword("null")?;
                    return Ok(<$t>::NAN);
                }
                let text = p.parse_number_str()?;
                text.parse().map_err(|e| p.error(format!("bad number {text:?}: {e}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        match p.peek() {
            Some(b't') => p.expect_keyword("true").map(|()| true),
            Some(b'f') => p.expect_keyword("false").map(|()| false),
            _ => Err(p.error("expected bool")),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        p.parse_string()
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(&self.to_string(), out);
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        let s = p.parse_string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(p.error("expected single-char string")),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(&self.to_string(), out);
    }
}

impl<'de> Deserialize<'de> for Ipv4Addr {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        let s = p.parse_string()?;
        s.parse()
            .map_err(|e| p.error(format!("bad IPv4 address {s:?}: {e}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        T::deserialize_json(p).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        if p.peeks_null() {
            p.expect_keyword("null")?;
            Ok(None)
        } else {
            T::deserialize_json(p).map(Some)
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

fn deserialize_seq<'de, T: Deserialize<'de>>(p: &mut Parser<'de>) -> Result<Vec<T>, Error> {
    p.expect(b'[')?;
    let mut out = Vec::new();
    if p.try_consume(b']') {
        return Ok(out);
    }
    loop {
        out.push(T::deserialize_json(p)?);
        if !p.try_consume(b',') {
            break;
        }
    }
    p.expect(b']')?;
    Ok(out)
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_seq(p)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        let items: Vec<T> = deserialize_seq(p)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| p.error(format!("expected array of {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_seq(p).map(Vec::into)
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_seq(p).map(|v: Vec<T>| v.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_seq(p).map(|v: Vec<T>| v.into_iter().collect())
    }
}

// Maps serialise as arrays of [key, value] pairs so non-string keys
// (Ipv4Addr, NodeId, tuples) round-trip without a string-key encoding.
fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('[');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        k.serialize_json(out);
        out.push(',');
        v.serialize_json(out);
        out.push(']');
    }
    out.push(']');
}

fn deserialize_map_entries<'de, K: Deserialize<'de>, V: Deserialize<'de>>(
    p: &mut Parser<'de>,
) -> Result<Vec<(K, V)>, Error> {
    deserialize_seq(p)
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_map_entries(p).map(|v| v.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        deserialize_map_entries(p).map(|v| v.into_iter().collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
                p.expect(b'[')?;
                let mut first = true;
                let result = ($(
                    {
                        if !first { p.expect(b',')?; }
                        first = false;
                        $name::deserialize_json(p)?
                    },
                )+);
                let _ = first;
                p.expect(b']')?;
                Ok(result)
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for std::time::Duration {
    fn serialize_json(&self, out: &mut String) {
        // [secs, nanos], lossless
        out.push('[');
        self.as_secs().serialize_json(out);
        out.push(',');
        self.subsec_nanos().serialize_json(out);
        out.push(']');
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize_json(p: &mut Parser<'de>) -> Result<Self, Error> {
        let (secs, nanos): (u64, u32) = Deserialize::deserialize_json(p)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
