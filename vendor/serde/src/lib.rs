//! Offline stub of `serde`, specialised to JSON.
//!
//! The build container cannot reach crates.io, so this in-tree crate
//! implements the serialisation surface the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! from_str}` round-trips. Instead of serde's full data-model
//! (Serializer/Visitor), the traits here are JSON-direct:
//!
//! - [`Serialize::serialize_json`] appends JSON text to a `String`;
//! - [`Deserialize::deserialize_json`] pulls a value off a
//!   [`json::Parser`].
//!
//! Format notes (self-consistent, not serde_json-identical): maps and
//! sets serialise as arrays (`[[k,v],…]` / `[v,…]`) so non-string keys
//! round-trip; `Ipv4Addr` as a dotted-quad string; floats via Rust's
//! shortest-roundtrip `{:?}`. The in-tree `serde_derive` generates
//! impls of these traits for named structs, tuple structs, and enums
//! with unit, tuple, and struct variants.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

pub trait Deserialize<'de>: Sized {
    fn deserialize_json(parser: &mut json::Parser<'de>) -> Result<Self, json::Error>;
}

/// Owned-deserialisation alias, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

mod impls;
