//! Offline stub of `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! `[[bench]]` targets use: `Criterion` with the `sample_size` /
//! `measurement_time` / `warm_up_time` builders, `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros (both the simple and the
//! `name/config/targets` forms).
//!
//! It measures real wall-clock time — warm-up, then `sample_size`
//! samples, each sized to roughly `measurement_time / sample_size` —
//! and prints mean / min / max per-iteration times. No statistics
//! beyond that, no HTML reports, no baseline comparison.

use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm up and estimate per-iteration cost.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_up_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_elapsed = Duration::ZERO;
        while warm_up_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            // grow the batch geometrically so cheap routines amortise
            // the Instant overhead during calibration too
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
            warm_elapsed += bencher.elapsed;
            bencher.iters = (bencher.iters * 2).min(1 << 20);
        }
        let per_iter = warm_elapsed
            .checked_div(warm_iters.max(1) as u32)
            .unwrap_or(Duration::ZERO)
            .max(Duration::from_nanos(1));

        // Size each sample so the full measurement lands near
        // measurement_time.
        let budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (budget.as_nanos() / per_iter.as_nanos()).clamp(1, u64::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the closure `self.iters` times, recording total elapsed time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Like `iter`, but each iteration consumes a fresh input built by
    /// `setup`; only the routine is timed.
    pub fn iter_with_setup<I, T, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
