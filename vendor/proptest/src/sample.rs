//! `sample::Index`: a length-agnostic random index into a collection.

/// Generated via `any::<Index>()`, then projected onto a concrete
/// collection length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Project onto `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((u128::from(self.0) * len as u128) >> 64) as usize
    }

    /// A reference to a uniformly chosen element of `slice`.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
