//! Test configuration and the deterministic RNG driving input generation.

/// Per-suite configuration (only `cases` is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // 64 keeps the full workspace property suite well under the CI
        // time budget; raise globally with PROPTEST_CASES for deeper runs.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// xoshiro256++-based generator seeded from the test name (FNV-1a), so
/// every run of a given test explores the same sequence of inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            for b in extra.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        Self::seed_from_u64(h)
    }

    pub fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: empty bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
