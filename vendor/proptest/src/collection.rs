//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        // generous retry budget: duplicate draws don't grow the set
        for _ in 0..target.saturating_mul(20).max(64) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

/// A `HashSet` with `size` distinct elements (best effort when the
/// element domain is small).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
