//! Offline stub of `proptest`.
//!
//! The build container cannot reach crates.io, so this in-tree crate
//! implements the subset of the proptest API the workspace's property
//! suites use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`,
//!   implemented for integer/float ranges, tuples (up to 10), and
//!   [`strategy::Just`];
//! - [`arbitrary::any`] for primitives and [`sample::Index`];
//! - [`collection::vec`] and [`collection::hash_set`];
//! - the [`proptest!`] macro with optional `#![proptest_config(..)]`,
//!   plus `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`, and `prop_oneof!`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the deterministic seed, but is not reduced.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name, so runs are reproducible in CI; set
//!   `PROPTEST_SEED` to explore a different stream.
//! - **Case count** defaults to 64 and is overridable globally with
//!   `PROPTEST_CASES` (keeping `cargo test -q` fast) or per-suite with
//!   `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bindings!((&mut rng) $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed from test name {:?}): {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        msg
                    );
                }
            }
        }
    )*};
}

/// Turns proptest's two parameter forms — `pat in strategy` and
/// `name: Type` (sugar for `any::<Type>()`) — into `let` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    (($rng:expr)) => {};
    (($rng:expr) $pat:pat_param in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    (($rng:expr) $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bindings!(($rng) $($rest)*);
    };
    (($rng:expr) mut $name:ident : $ty:ty) => {
        let mut $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
    };
    (($rng:expr) mut $name:ident : $ty:ty, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bindings!(($rng) $($rest)*);
    };
    (($rng:expr) $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
    };
    (($rng:expr) $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bindings!(($rng) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`", format!($($fmt)+), l, r));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left != right`\n  both: `{:?}`", l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "{}\n  both: `{:?}`", format!($($fmt)+), l));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // discarded case: treated as vacuously passing (no global
            // discard budget in this stub)
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
