//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Uniform (or weighted) choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof: no options");
        let total_weight = options.len() as u64;
        Union {
            options: options.into_iter().map(|s| (1, s)).collect(),
            total_weight,
        }
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof: no options");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof: zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// String literals are regex strategies in real proptest. This stub
/// supports the subset the workspace uses: literal chars, `[...]`
/// classes with ranges, and the `{n}`, `{n,m}`, `*`, `+`, `?`
/// quantifiers (unbounded repetition is capped at 8).
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex(self);
        let mut out = String::new();
        for piece in &pieces {
            let span = u64::from(piece.max - piece.min) + 1;
            let reps = piece.min + rng.below(span) as u32;
            for _ in 0..reps {
                match &piece.atom {
                    RegexAtom::Lit(c) => out.push(*c),
                    RegexAtom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = u64::from(*hi as u32 - *lo as u32) + 1;
                            if pick < size {
                                out.push(
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect("class range produced invalid char"),
                                );
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

enum RegexAtom {
    Lit(char),
    Class(Vec<(char, char)>),
}

struct RegexPiece {
    atom: RegexAtom,
    min: u32,
    max: u32,
}

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range needs a start");
                            let hi = chars.next().expect("range needs an end");
                            ranges.push((lo, hi));
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                RegexAtom::Class(ranges)
            }
            '\\' => RegexAtom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("trailing backslash in regex {pattern:?}")),
            ),
            c => RegexAtom::Lit(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J, K);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J, K, L);
