//! `any::<T>()` for primitives and `sample::Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (uniform over the type).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
