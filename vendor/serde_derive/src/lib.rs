//! Offline stub of `serde_derive`.
//!
//! Generates impls of the JSON-direct `serde::Serialize` /
//! `serde::Deserialize` traits defined by the in-tree serde stub. The
//! item declaration is parsed directly from the token stream (no
//! syn/quote in the container), which supports exactly the shapes this
//! workspace uses: non-generic named structs, tuple structs, unit
//! structs, and enums with unit, tuple, and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// JSON key for a field/variant ident (raw-identifier prefix stripped).
fn json_name(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` / `#![...]` attribute tokens at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        i += 1;
        if i < tokens.len() && is_punct(&tokens[i], '!') {
            i += 1;
        }
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => i += 1,
            other => panic!("serde derive: malformed attribute near {other}"),
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level (angle-depth-0) comma-separated items in a token
/// slice, as used for tuple-struct/tuple-variant field counts.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            t if is_punct(t, '<') => {
                depth += 1;
                pending = true;
            }
            t if is_punct(t, '>') => {
                depth -= 1;
                pending = true;
            }
            t if is_punct(t, ',') && depth == 0 => {
                if pending {
                    fields += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
        i += 1;
    }
    if pending {
        fields += 1;
    }
    fields
}

/// Field names of a named-field body (struct or struct variant).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde derive: expected field name, found {}", tokens[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde derive: expected `:` after field `{name}`"
        );
        i += 1;
        // skip the type up to the next top-level comma
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde derive: expected variant name, found {}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantFields::Tuple(count_tuple_fields(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantFields::Named(parse_named_fields(&inner))
                }
                _ => VariantFields::Unit,
            }
        } else {
            VariantFields::Unit
        };
        // skip an explicit discriminant (`= expr`) and the trailing comma
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1; // past the comma (or end)
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let item_kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde derive stub: generic type `{name}` not supported");
    }
    let kind = match item_kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::NamedStruct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::TupleStruct(count_tuple_fields(&inner))
            }
            Some(t) if is_punct(t, ';') => Kind::UnitStruct,
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Enum(parse_enum_variants(&inner))
            }
            other => panic!("serde derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive: expected struct/enum, found `{other}`"),
    };
    Item { name, kind }
}

// ---------------------------------------------------------------- codegen

fn push_key(code: &mut String, key: &str, leading_comma: bool) {
    let comma = if leading_comma { "," } else { "" };
    code.push_str(&format!("out.push_str(\"{comma}\\\"{key}\\\":\");\n"));
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                push_key(&mut body, json_name(f), i > 0);
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Kind::TupleStruct(n) => {
            body.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');\n");
        }
        Kind::UnitStruct => {
            body.push_str("out.push_str(\"null\");\n");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                let key = json_name(vn);
                match &v.fields {
                    VariantFields::Unit => {
                        body.push_str(&format!(
                            "{name}::{vn} => {{ out.push_str(\"\\\"{key}\\\"\"); }}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{\n", binds.join(", ")));
                        body.push_str(&format!("out.push_str(\"{{\\\"{key}\\\":[\");\n"));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "::serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        body.push_str("out.push_str(\"]}\");\n}\n");
                    }
                    VariantFields::Named(fields) => {
                        body.push_str(&format!("{name}::{vn} {{ {} }} => {{\n", fields.join(", ")));
                        body.push_str(&format!("out.push_str(\"{{\\\"{key}\\\":{{\");\n"));
                        for (i, f) in fields.iter().enumerate() {
                            push_key(&mut body, json_name(f), i > 0);
                            body.push_str(&format!(
                                "::serde::Serialize::serialize_json({f}, out);\n"
                            ));
                        }
                        body.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}}}\n}}\n"
    )
}

/// Code that parses `{ "f": v, … }` named fields into `__f_*` options
/// and builds `ctor { … }` — shared by structs and struct variants.
fn gen_named_fields_de(fields: &[String], ctor: &str) -> String {
    let mut code = String::new();
    code.push_str("p.expect(b'{')?;\n");
    for f in fields {
        code.push_str(&format!("let mut __f_{f} = ::std::option::Option::None;\n"));
    }
    code.push_str("if !p.try_consume(b'}') {\nloop {\n");
    code.push_str("let __key = p.parse_string()?;\np.expect(b':')?;\n");
    code.push_str("match __key.as_str() {\n");
    for f in fields {
        code.push_str(&format!(
            "\"{}\" => {{ __f_{f} = ::std::option::Option::Some(::serde::Deserialize::deserialize_json(p)?); }}\n",
            json_name(f)
        ));
    }
    code.push_str("_ => { p.skip_value()?; }\n}\n");
    code.push_str("if !p.try_consume(b',') { break; }\n}\np.expect(b'}')?;\n}\n");
    code.push_str(&format!("{ctor} {{\n"));
    for f in fields {
        code.push_str(&format!(
            "{f}: __f_{f}.ok_or_else(|| ::serde::json::Error::missing_field(\"{}\"))?,\n",
            json_name(f)
        ));
    }
    code.push_str("}\n");
    code
}

/// Code that parses `[v0, v1, …]` into `ctor(v0, …)`.
fn gen_tuple_fields_de(n: usize, ctor: &str) -> String {
    let mut code = String::new();
    code.push_str("p.expect(b'[')?;\n");
    for i in 0..n {
        if i > 0 {
            code.push_str("p.expect(b',')?;\n");
        }
        code.push_str(&format!(
            "let __v{i} = ::serde::Deserialize::deserialize_json(p)?;\n"
        ));
    }
    code.push_str("p.expect(b']')?;\n");
    let binds: Vec<String> = (0..n).map(|i| format!("__v{i}")).collect();
    code.push_str(&format!("{ctor}({})\n", binds.join(", ")));
    code
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let inner = gen_named_fields_de(fields, name);
            body.push_str(&format!("::std::result::Result::Ok({{\n{inner}}})\n"));
        }
        Kind::TupleStruct(n) => {
            let inner = gen_tuple_fields_de(*n, name);
            body.push_str(&format!("::std::result::Result::Ok({{\n{inner}}})\n"));
        }
        Kind::UnitStruct => {
            body.push_str(&format!(
                "p.expect_keyword(\"null\")?;\n::std::result::Result::Ok({name})\n"
            ));
        }
        Kind::Enum(variants) => {
            let has_unit = variants
                .iter()
                .any(|v| matches!(v.fields, VariantFields::Unit));
            let has_data = variants
                .iter()
                .any(|v| !matches!(v.fields, VariantFields::Unit));
            body.push_str("match p.peek() {\n");
            // unit variants arrive as a bare string
            if has_unit {
                body.push_str("::std::option::Option::Some(b'\"') => {\n");
                body.push_str("let __variant = p.parse_string()?;\n");
                body.push_str("match __variant.as_str() {\n");
                for v in variants {
                    if matches!(v.fields, VariantFields::Unit) {
                        body.push_str(&format!(
                            "\"{}\" => ::std::result::Result::Ok({name}::{}),\n",
                            json_name(&v.name),
                            v.name
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(p.error(format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n"
                ));
                body.push_str("}\n}\n");
            }
            // data variants arrive as {"Variant": payload}
            if has_data {
                body.push_str("::std::option::Option::Some(b'{') => {\n");
                body.push_str("p.expect(b'{')?;\n");
                body.push_str("let __variant = p.parse_string()?;\np.expect(b':')?;\n");
                body.push_str("let __value = match __variant.as_str() {\n");
                for v in variants {
                    let key = json_name(&v.name);
                    let ctor = format!("{name}::{}", v.name);
                    match &v.fields {
                        VariantFields::Unit => {}
                        VariantFields::Tuple(n) => {
                            let inner = gen_tuple_fields_de(*n, &ctor);
                            body.push_str(&format!("\"{key}\" => {{\n{inner}}}\n"));
                        }
                        VariantFields::Named(fields) => {
                            let inner = gen_named_fields_de(fields, &ctor);
                            body.push_str(&format!("\"{key}\" => {{\n{inner}}}\n"));
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => return ::std::result::Result::Err(p.error(format!(\"unknown variant `{{__other}}` of {name}\"))),\n"
                ));
                body.push_str("};\n");
                body.push_str("p.expect(b'}')?;\n::std::result::Result::Ok(__value)\n}\n");
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(p.error(\"expected enum {name}\")),\n"
            ));
            body.push_str("}\n");
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_json(p: &mut ::serde::json::Parser<'de>) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{\n{body}}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
