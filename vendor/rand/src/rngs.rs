//! Named RNG types. `SmallRng` is xoshiro256++, the same algorithm the
//! real `rand 0.8` uses for `SmallRng` on 64-bit targets.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic, non-cryptographic RNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        SmallRng { s }
    }
}
