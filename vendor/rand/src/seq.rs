//! Slice sampling helpers (`choose`, `shuffle`).

use crate::RngCore;

/// Uniform in `[0, bound)` via multiply-shift (avoids the `Self: Sized`
/// bounds on the `Rng` convenience methods so `R: ?Sized` works here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}
