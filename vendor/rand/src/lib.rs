//! Offline stub of the `rand` crate.
//!
//! The build container has no crates.io access, so this in-tree crate
//! provides the subset of the `rand 0.8` API the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++), [`SeedableRng::seed_from_u64`]
//! (SplitMix64 expansion, matching upstream's seeding scheme), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Streams are fully deterministic for a given seed, which is the only
//! property the workspace relies on (see `ecn_netsim::rng`). Uniform
//! integer ranges use multiply-shift rejection-free mapping; the tiny
//! residual bias (< 2^-32 for the range sizes used here) is irrelevant
//! to the simulation's statistical tests.

pub mod rngs;
pub mod seq;

/// Core RNG interface: a source of uniformly distributed `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same scheme
    /// rand uses, so seeded streams are stable and well decorrelated).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = sm.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used only for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Fill: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Fill for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Fill for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// f64 only: a second float impl would make `gen_range(-2.0..2.0)` with
// an untyped literal ambiguous at the call sites in this workspace.
impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::random(rng) * (self.end - self.start);
        // rounding in the affine map can land exactly on the exclusive
        // upper bound; keep the half-open contract
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
