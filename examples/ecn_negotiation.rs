//! TCP ECN negotiation in detail (paper §2 and §4.3): the RFC 3168
//! handshake against a willing server, a declining server, and the broken
//! middlebox that reflects ECE+CWR — plus the Kühlewind-style *usability*
//! probe the paper cites (send a CE-marked segment, expect ECE back),
//! implemented as an extension.
//!
//! ```text
//! cargo run --example ecn_negotiation
//! ```

use ecnudp::netsim::{LinkProps, Nanos, RouteEntry, Router, Sim};
use ecnudp::stack::{install, EcnMode, HostHandle, StackConfig, TcpServiceAction};
use ecnudp::wire::TcpFlags;
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

struct LineEcho;
impl ecnudp::stack::TcpService for LineEcho {
    fn on_data(&mut self, _now: Nanos, received: &[u8]) -> TcpServiceAction {
        if received.ends_with(b"\n") {
            TcpServiceAction::Respond {
                bytes: received.to_vec(),
                close: false,
            }
        } else {
            TcpServiceAction::Wait
        }
    }
}

fn build(seed: u64, servers: &[(Ipv4Addr, EcnMode)]) -> (Sim, HostHandle, Vec<HostHandle>) {
    let mut sim = Sim::new(seed);
    let c = sim.add_host("client", CLIENT);
    let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
    let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
    sim.attach_host(c, r1, LinkProps::clean(Nanos::from_millis(2)));
    let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::clean(Nanos::from_millis(15)));
    sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
    sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
    let client = install(&mut sim, c, StackConfig::default());
    let mut handles = Vec::new();
    for (addr, mode) in servers {
        let node = sim.add_host(format!("server-{addr}"), *addr);
        sim.attach_host(node, r2, LinkProps::clean(Nanos::from_millis(1)));
        let h = install(&mut sim, node, StackConfig::default());
        h.register_tcp_listener(80, *mode, Some(Box::new(LineEcho)));
        handles.push(h);
    }
    (sim, client, handles)
}

fn flags_str(bits: Option<u16>) -> String {
    bits.map(|b| TcpFlags(b).to_string())
        .unwrap_or_else(|| "(no SYN-ACK)".into())
}

fn main() {
    let willing = Ipv4Addr::new(192, 0, 2, 10);
    let declining = Ipv4Addr::new(192, 0, 2, 20);
    let reflector = Ipv4Addr::new(192, 0, 2, 30);
    let (mut sim, client, _servers) = build(
        7,
        &[
            (willing, EcnMode::On),
            (declining, EcnMode::Off),
            (reflector, EcnMode::ReflectFlags),
        ],
    );

    println!("RFC 3168 negotiation: client sends ECN-setup SYN (SYN+ECE+CWR)\n");
    for (name, addr) in [
        ("ECN-capable server", willing),
        ("ECN-off server", declining),
        ("flag-reflecting middlebox", reflector),
    ] {
        let conn = client.tcp_connect(&mut sim, (addr, 80), true);
        sim.run_for(Nanos::from_secs(2));
        let snap = client.conn(conn).expect("conn");
        println!(
            "{name:<26} SYN-ACK flags: {:<16} -> ECN negotiated: {}",
            flags_str(snap.handshake.syn_ack_flags.map(|f| f.0)),
            snap.ecn_negotiated,
        );
        client.tcp_close(&mut sim, conn);
        sim.run_for(Nanos::from_secs(1));
        client.remove_conn(conn);
    }

    // Kühlewind-style usability probe: negotiate, then send a CE-marked
    // data segment; a working receiver echoes ECE on its ACKs, and our
    // sender registers a congestion response.
    println!("\nECN usability probe (Kühlewind-style): CE-marked request segment");
    let conn = client.tcp_connect(&mut sim, (willing, 80), true);
    sim.run_for(Nanos::from_secs(1));
    client.tcp_force_ce(conn, true);
    client.tcp_send(&mut sim, conn, b"usability check\n");
    sim.run_for(Nanos::from_secs(2));
    let snap = client.conn(conn).expect("conn");
    println!(
        "server echoed data: {:?}; congestion responses triggered by ECE: {}",
        String::from_utf8_lossy(&snap.received),
        snap.congestion_events,
    );
    if snap.congestion_events > 0 {
        println!("=> the peer's ECE feedback loop works: ECN is usable, not just negotiable.");
    }
    client.tcp_close(&mut sim, conn);
}
