//! Quickstart: build a small simulated Internet, probe a handful of NTP
//! pool servers with not-ECT and ECT(0)-marked UDP, and print what the
//! paper's methodology would record.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ecnudp::core::{probe_tcp, probe_udp, ProbeConfig};
use ecnudp::pool::{build_scenario, PoolPlan};
use ecnudp::wire::Ecn;

fn main() {
    // A 60-server pool with all of the paper's phenomena planted.
    let plan = PoolPlan::scaled(60);
    let mut sc = build_scenario(&plan, 42);

    // Measure from EC2 Ireland (vantage 6).
    let vantage = 6;
    let handle = sc.vantages[vantage].handle.clone();
    let capture = sc.sim.attach_capture(sc.vantages[vantage].node);
    let cfg = ProbeConfig::default();

    println!(
        "probing 12 of {} pool servers from {}\n",
        sc.servers.len(),
        sc.vantages[vantage].spec.name
    );
    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>9}",
        "server", "not-ECT", "ECT(0)", "HTTP", "TCP ECN"
    );
    let targets: Vec<std::net::Ipv4Addr> = sc.servers.iter().map(|s| s.addr).take(12).collect();
    for server in targets {
        capture.lock().clear();
        let plain = probe_udp(&mut sc.sim, &handle, &capture, server, Ecn::NotEct, &cfg);
        let ect = probe_udp(&mut sc.sim, &handle, &capture, server, Ecn::Ect0, &cfg);
        let tcp = probe_tcp(&mut sc.sim, &handle, &capture, server, true, &cfg);
        println!(
            "{:<16} {:>9} {:>9} {:>11} {:>9}",
            server.to_string(),
            if plain.reachable { "yes" } else { "NO" },
            if ect.reachable { "yes" } else { "NO" },
            tcp.http_status
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if tcp.negotiated_ecn { "yes" } else { "no" },
        );
    }
    println!(
        "\nplanted ground truth: {} ECT-blocked server(s), {} not-ECT-blocked",
        sc.truth.ect_blocked.len() + sc.truth.ect_blocked_flaky.len(),
        sc.truth.not_ect_blocked.len() + sc.truth.not_ect_blocked_ec2.len(),
    );
}
