//! Load a declarative scenario file and run it — the programmatic
//! equivalent of `ecnudp run --scenario <file>`.
//!
//! ```text
//! cargo run --release --example scenario_file                          # paper2015-mini
//! cargo run --release --example scenario_file -- scenarios/lossy-edge.toml
//! ECNUDP_SHARDS=4 cargo run --release --example scenario_file -- my.toml
//! ```
//!
//! Demonstrates the three-step spec pipeline: parse (lenient on absence,
//! strict on presence), lower (`ScenarioSpec` → `PoolPlan` +
//! `CampaignConfig`), run (sharded engine, streamed aggregates).

use ecnudp::core::{run_scenario_sharded, FullReport, RunSummary};
use ecnudp::pool::ScenarioSpec;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios/paper2015-mini.toml".into());
    let shards: Option<usize> = std::env::var("ECNUDP_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok());

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let spec = ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });

    let plan = spec.plan();
    eprintln!(
        "running `{}`: {} servers / ~{} ASes / {} vantages (seed {})",
        spec.name,
        plan.servers,
        plan.total_as_count(),
        plan.vantage_count,
        spec.seed
    );
    let run = run_scenario_sharded(&spec, shards);
    let report = FullReport::from_campaign(&run.result);
    print!("{}", report.render());

    let summary = RunSummary::new(&spec, &run, &report);
    eprintln!(
        "done in {:.1}s: {} targets, {} traces, fig2a {:.2}%, \
         {} strip locations",
        summary.wall_ms / 1e3,
        summary.targets,
        summary.traces,
        summary.fig2a_pct,
        summary.survey_strip_locations,
    );
}
