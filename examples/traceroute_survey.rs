//! The §4.2 traceroute survey on its own: ECN-aware traceroute from every
//! vantage to every pool server, the hop-level mark-survival statistics,
//! and Graphviz DOT exports of the per-vantage maps (the paper's Figure 4).
//!
//! ```text
//! cargo run --release --example traceroute_survey -- [servers] [seed] [outdir]
//! ```
//!
//! DOT files land in `outdir` (default `target/fig4`); render one with
//! `twopi -Tsvg fig4-ec2-ireland.dot -o map.svg`.

use ecnudp::core::analysis::{figure4, figure4_dot};
use ecnudp::core::{traceroute, CampaignConfig, VantageRoutes};
use ecnudp::pool::{build_scenario, PoolPlan};

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);
    let outdir = args.next().unwrap_or_else(|| "target/fig4".to_string());

    let plan = if servers == 2500 {
        PoolPlan::paper()
    } else {
        PoolPlan::scaled(servers)
    };
    let cfg = CampaignConfig {
        seed,
        ..CampaignConfig::default()
    };
    let mut sc = build_scenario(&plan, seed);
    let targets: Vec<std::net::Ipv4Addr> = sc.servers.iter().map(|s| s.addr).collect();

    eprintln!(
        "tracerouting {} targets from {} vantages…",
        targets.len(),
        sc.vantages.len()
    );
    let mut routes = Vec::new();
    for vi in 0..sc.vantages.len() {
        let handle = sc.vantages[vi].handle.clone();
        let mut paths = Vec::with_capacity(targets.len());
        for &dst in &targets {
            paths.push(traceroute(&mut sc.sim, &handle, dst, &cfg.traceroute));
        }
        routes.push(VantageRoutes {
            vantage_key: sc.vantages[vi].spec.key.to_string(),
            paths,
        });
    }

    let stats = figure4(&routes, &sc.asdb);
    println!("{}", stats.render());

    std::fs::create_dir_all(&outdir).expect("create output dir");
    for vr in &routes {
        let path = format!("{outdir}/fig4-{}.dot", vr.vantage_key);
        std::fs::write(&path, figure4_dot(vr)).expect("write dot");
        println!("wrote {path}");
    }
    println!(
        "\nplanted bleachers (audit): {} always, {} sometimes",
        sc.truth.bleach_always.len(),
        sc.truth.bleach_sometimes.len()
    );
}
