//! Why ECN matters for UDP media — the paper's §1 motivation, demonstrated.
//!
//! An RTP video-like flow crosses a RED+ECN bottleneck twice:
//!
//! 1. **with ECN** — packets are ECT(0)-marked; the congested queue
//!    CE-marks instead of dropping; the receiver reports CE counts in
//!    RFC 6679-style feedback; the sender adapts its rate (a miniature
//!    NADA-style controller). Congestion is handled with (almost) no loss.
//! 2. **without ECN** — identical flow, not-ECT; the same queue must drop;
//!    the media stream takes visible losses.
//!
//! ```text
//! cargo run --release --example rtp_media
//! ```

use ecnudp::netsim::{LinkProps, Nanos, QueueDisc, RouteEntry, Router, Sim};
use ecnudp::stack::{install, HostHandle, StackConfig};
use ecnudp::wire::{Ecn, EcnFeedback, RtpHeader};
use std::net::Ipv4Addr;

const SENDER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const RECEIVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const MEDIA_PORT: u16 = 5004;

/// Media path: sender -- r1 ==RED bottleneck== r2 -- receiver.
fn build_path(seed: u64) -> (Sim, HostHandle, HostHandle) {
    let mut sim = Sim::new(seed);
    let s = sim.add_host("sender", SENDER);
    let r = sim.add_host("receiver", RECEIVER);
    let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
    let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
    sim.attach_host(s, r1, LinkProps::clean(Nanos::from_millis(2)));
    sim.attach_host(r, r2, LinkProps::clean(Nanos::from_millis(2)));
    // 2 Mbit/s bottleneck with a RED+ECN queue (~25 kB band)
    let red = QueueDisc::Red {
        min_th_bytes: 6_000,
        max_th_bytes: 25_000,
        max_p: 0.15,
        weight: 0.05,
        ecn: true,
        limit_bytes: 60_000,
    };
    let (l12, l21) = sim.add_duplex(
        r1,
        r2,
        LinkProps::bottleneck(Nanos::from_millis(20), 2_000_000, red),
    );
    sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
    sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
    let sender = install(&mut sim, s, StackConfig::default());
    let receiver = install(&mut sim, r, StackConfig::default());
    (sim, sender, receiver)
}

struct RunStats {
    sent: u32,
    received: u32,
    lost: u32,
    ce_marked: u32,
    rate_changes: u32,
    final_rate_kbps: f64,
}

/// Run a 30-second media session; `use_ecn` controls the packet marking
/// and whether the sender reacts to CE feedback.
fn run_media(use_ecn: bool, seed: u64) -> RunStats {
    let (mut sim, sender, receiver) = build_path(seed);
    let tx = sender.udp_bind(MEDIA_PORT);
    let rx = receiver.udp_bind(MEDIA_PORT);

    let marking = if use_ecn { Ecn::Ect0 } else { Ecn::NotEct };
    // media model: 1200-byte packets; rate starts at 3 Mbit/s (above the
    // 2 Mbit/s bottleneck) and adapts on feedback when ECN is on.
    let packet_bytes = 1200u32;
    let mut rate_bps: f64 = 3_000_000.0;
    let mut seq: u16 = 0;
    let mut ts: u32 = 0;
    let mut sent = 0u32;
    let mut rate_changes = 0u32;

    // receiver state
    let mut highest_seq: u32 = 0;
    let mut received = 0u32;
    let mut ce = 0u32;
    let mut ect0 = 0u32;
    let mut not_ect = 0u32;
    let mut interval_received = 0u32;
    let mut interval_ce = 0u32;

    let horizon = Nanos::from_secs(30);
    let feedback_every = Nanos::from_millis(100);
    let mut next_feedback = feedback_every;
    let mut next_send = Nanos::ZERO;

    while sim.now() < horizon {
        // send packets at the current rate
        while next_send <= sim.now() {
            let header = RtpHeader {
                payload_type: 96,
                marker: false,
                sequence: seq,
                timestamp: ts,
                ssrc: 0x1234_5678,
            };
            let payload = vec![0u8; packet_bytes as usize - 12];
            sender.udp_send(
                &mut sim,
                tx,
                (RECEIVER, MEDIA_PORT),
                &header.encode(&payload),
                marking,
            );
            sent += 1;
            seq = seq.wrapping_add(1);
            ts = ts.wrapping_add(3000);
            let gap = (f64::from(packet_bytes) * 8.0 / rate_bps * 1e9) as u64;
            next_send += Nanos(gap);
        }
        let step = next_send.min(sim.now() + Nanos::from_millis(10));
        sim.run_until(step);

        // receiver: drain media, count markings
        for got in receiver.udp_recv_all(rx) {
            if EcnFeedback::is_feedback(&got.payload) {
                continue; // feedback flows the other way
            }
            if let Ok((h, _)) = RtpHeader::decode(&got.payload) {
                received += 1;
                interval_received += 1;
                highest_seq = highest_seq.max(u32::from(h.sequence));
                match got.ecn {
                    Ecn::Ce => {
                        ce += 1;
                        interval_ce += 1;
                    }
                    Ecn::Ect0 => ect0 += 1,
                    _ => not_ect += 1,
                }
            }
        }

        // receiver: periodic RFC 6679-style feedback
        if sim.now() >= next_feedback {
            next_feedback += feedback_every;
            let fb = EcnFeedback {
                ext_highest_seq: highest_seq,
                received: interval_received,
                ce_count: interval_ce,
                ect0_count: ect0,
                not_ect_count: not_ect,
                lost: sent.saturating_sub(received),
            };
            receiver.udp_send(
                &mut sim,
                rx,
                (SENDER, MEDIA_PORT),
                &fb.encode(),
                Ecn::NotEct,
            );
            interval_received = 0;
            interval_ce = 0;
        }

        // sender: react to feedback (mini-NADA: multiplicative decrease on
        // CE, gentle additive increase otherwise)
        for got in sender.udp_recv_all(tx) {
            if let Ok(fb) = EcnFeedback::decode(&got.payload) {
                if use_ecn && fb.ce_count > 0 {
                    let ratio = f64::from(fb.ce_count) / f64::from(fb.received.max(1));
                    rate_bps = (rate_bps * (1.0 - 0.5 * ratio)).max(300_000.0);
                    rate_changes += 1;
                } else {
                    rate_bps = (rate_bps + 20_000.0).min(3_000_000.0);
                }
            }
        }
    }
    sim.run_for(Nanos::from_secs(1));
    for got in receiver.udp_recv_all(rx) {
        if !EcnFeedback::is_feedback(&got.payload) && RtpHeader::decode(&got.payload).is_ok() {
            received += 1;
            if got.ecn == Ecn::Ce {
                ce += 1;
            }
        }
    }

    RunStats {
        sent,
        received,
        lost: sent - received,
        ce_marked: ce,
        rate_changes,
        final_rate_kbps: rate_bps / 1000.0,
    }
}

fn main() {
    println!("RTP media over a 2 Mbit/s RED+ECN bottleneck, 30 s session\n");
    let with_ecn = run_media(true, 1);
    let without_ecn = run_media(false, 1);

    let row = |name: &str, s: &RunStats| {
        println!(
            "{name:<12} sent {:>6}  received {:>6}  lost {:>5} ({:>5.2}%)  CE-marked {:>5}  rate-adaptations {:>3}  final rate {:>7.0} kbit/s",
            s.sent,
            s.received,
            s.lost,
            100.0 * f64::from(s.lost) / f64::from(s.sent.max(1)),
            s.ce_marked,
            s.rate_changes,
            s.final_rate_kbps,
        );
    };
    row("with ECN", &with_ecn);
    row("without ECN", &without_ecn);

    let loss_with = f64::from(with_ecn.lost) / f64::from(with_ecn.sent.max(1));
    let loss_without = f64::from(without_ecn.lost) / f64::from(without_ecn.sent.max(1));
    println!(
        "\nECN cut media loss from {:.2}% to {:.2}% — congestion signalled by {} CE marks instead of drops.",
        100.0 * loss_without,
        100.0 * loss_with,
        with_ecn.ce_marked,
    );
    println!("This is the WebRTC/NADA use case that motivates asking whether ECT-marked UDP even survives the Internet (paper §1).");
}
