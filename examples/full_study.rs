//! The complete measurement study, end to end: discovery, the 210-trace
//! campaign from all 13 vantages, the traceroute survey, and every table
//! and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example full_study                 # paper scale (2500 servers)
//! cargo run --release --example full_study -- 250          # scaled-down population
//! cargo run --release --example full_study -- 250 42       # custom seed
//! ```
//!
//! At paper scale this simulates hundreds of millions of per-hop packet
//! events; build with `--release`.

use ecnudp::core::{run_campaign_parallel, CampaignConfig, FullReport};
use ecnudp::pool::PoolPlan;

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2500);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);

    let plan = if servers == 2500 {
        PoolPlan::paper()
    } else {
        PoolPlan::scaled(servers)
    };
    let cfg = CampaignConfig {
        seed,
        ..CampaignConfig::default()
    };

    eprintln!(
        "building the simulated Internet: {} servers, ~{} ASes, 13 vantages…",
        plan.servers,
        plan.total_as_count()
    );
    let t0 = std::time::Instant::now();
    let result = run_campaign_parallel(&plan, &cfg);
    eprintln!(
        "campaign done in {:.1}s wall: {} targets discovered, {} traces, {} traceroute paths",
        t0.elapsed().as_secs_f64(),
        result.targets.len(),
        result.traces.len(),
        result.routes.iter().map(|r| r.paths.len()).sum::<usize>(),
    );

    let report = FullReport::from_campaign(&result);
    println!("{}", report.render());

    // Ground-truth audit (not visible to the prober; printed for
    // EXPERIMENTS.md transparency).
    println!("--- planted ground truth (audit) ---");
    println!(
        "ECT-UDP-blocking middleboxes: {} always + {} on flapping ECMP branches",
        result.truth.ect_blocked.len(),
        result.truth.ect_blocked_flaky.len()
    );
    println!(
        "not-ECT-blocking oddities: {} global + {} EC2-only",
        result.truth.not_ect_blocked.len(),
        result.truth.not_ect_blocked_ec2.len()
    );
    println!(
        "bleaching routers: {} always + {} sometimes; web servers: {} ({} ECN-capable); dead: {}, churned: {}",
        result.truth.bleach_always.len(),
        result.truth.bleach_sometimes.len(),
        result.truth.web_server_count,
        result.truth.web_ecn_on_count,
        result.truth.always_down_count,
        result.truth.churn_down_count,
    );
}
