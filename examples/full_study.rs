//! The complete measurement study, end to end: discovery, the 210-trace
//! campaign from all 13 vantages, the traceroute survey, and every table
//! and figure of the paper — executed by the sharded campaign engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example full_study                 # paper scale (2500 servers)
//! cargo run --release --example full_study -- 250          # scaled-down population
//! cargo run --release --example full_study -- 250 42       # custom seed
//! ECNUDP_SHARDS=4 cargo run --release --example full_study # pin the shard count
//! ```
//!
//! `ECNUDP_SHARDS` selects the engine's shard count (default: available
//! parallelism). Any value yields byte-identical reports; it only changes
//! how the work units spread across threads.
//!
//! The study runs the trace-free default path: every table and figure is
//! rendered from the engine's streamed aggregates, so memory stays
//! O(aggregates) no matter how many traces the campaign schedules. Set
//! `ECNUDP_KEEP_TRACES=1` to retain the raw per-trace records (the
//! dataset escape hatch).
//!
//! At paper scale this simulates hundreds of millions of per-hop packet
//! events; build with `--release`.

use ecnudp::core::{run_engine, CampaignConfig, EngineConfig, FullReport};
use ecnudp::pool::PoolPlan;

fn main() {
    let mut args = std::env::args().skip(1);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2500);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);
    let shards: Option<usize> = std::env::var("ECNUDP_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok());

    let plan = if servers == 2500 {
        PoolPlan::paper()
    } else {
        PoolPlan::scaled(servers)
    };
    let cfg = CampaignConfig {
        seed,
        ..CampaignConfig::default()
    };
    let keep_traces = std::env::var("ECNUDP_KEEP_TRACES").is_ok_and(|v| v == "1");
    let eng = EngineConfig {
        shards,
        keep_traces,
        keep_routes: keep_traces,
        ..EngineConfig::default()
    };

    eprintln!(
        "building the simulated Internet: {} servers, ~{} ASes, 13 vantages…",
        plan.servers,
        plan.total_as_count()
    );
    let t0 = std::time::Instant::now();
    let run = run_engine(&plan, &cfg, &eng);
    let result = &run.result;
    eprintln!(
        "campaign done in {:.1}s wall ({} shards over {} work units): {} targets discovered, {} traces, {} traceroute paths",
        t0.elapsed().as_secs_f64(),
        run.shards,
        run.units,
        result.targets.len(),
        result.aggregates.trace_stats.len(),
        result.aggregates.hops.paths,
    );
    eprintln!(
        "peak resident TraceRecords: {}{}",
        run.peak_resident_traces,
        if keep_traces {
            " (ECNUDP_KEEP_TRACES=1)"
        } else {
            " (trace-free default; report rendered from streamed aggregates)"
        },
    );
    eprintln!(
        "engine timing: blueprint build {:.3}s | discovery {:.1}s | instantiate {:.3}s | probe {:.1}s | reduce {:.3}s",
        run.timing.blueprint_build.as_secs_f64(),
        run.timing.discovery.as_secs_f64(),
        run.timing.instantiate.as_secs_f64(),
        run.timing.probe.as_secs_f64(),
        run.timing.reduce.as_secs_f64(),
    );

    let report = FullReport::from_campaign(result);
    println!("{}", report.render());

    // Ground-truth audit (not visible to the prober; printed for
    // EXPERIMENTS.md transparency).
    println!("--- planted ground truth (audit) ---");
    println!(
        "ECT-UDP-blocking middleboxes: {} always + {} on flapping ECMP branches",
        result.truth.ect_blocked.len(),
        result.truth.ect_blocked_flaky.len()
    );
    println!(
        "not-ECT-blocking oddities: {} global + {} EC2-only",
        result.truth.not_ect_blocked.len(),
        result.truth.not_ect_blocked_ec2.len()
    );
    println!(
        "bleaching routers: {} always + {} sometimes; web servers: {} ({} ECN-capable); dead: {}, churned: {}",
        result.truth.bleach_always.len(),
        result.truth.bleach_sometimes.len(),
        result.truth.web_server_count,
        result.truth.web_ecn_on_count,
        result.truth.always_down_count,
        result.truth.churn_down_count,
    );
}
