//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes a complete ECN-measurement world — target
//! population size and service mix, vantage count, middlebox deployment
//! *rates*, link loss/latency, schedule profile, seed — as plain data that
//! can live in a TOML or JSON file. It lowers to the imperative
//! [`PoolPlan`] via [`ScenarioSpec::plan`]; [`ScenarioSpec::paper2015`]
//! lowers to exactly [`PoolPlan::paper`], bit for bit, so the spec layer
//! adds no noise to the reproduction (the golden suite gates this).
//!
//! The `ecnudp` CLI binary loads spec files and runs them through the
//! sharded engine; `scenarios/` in the repository root is the documented
//! preset library. File loading is *lenient*: every omitted key keeps its
//! [`ScenarioSpec::paper2015`] default, so a preset only states its deltas
//! — and *strict* about what is present: unknown keys and type mismatches
//! are errors that name the offending path.
//!
//! ```
//! use ecn_pool::{PoolPlan, ScenarioSpec};
//!
//! // A delta file: everything not mentioned stays at the paper defaults.
//! let spec = ScenarioSpec::from_toml_str(
//!     r#"
//!     name = "more-bleaching"
//!     seed = 7
//!
//!     [middleboxes]
//!     bleach_pe_per_1000 = 12.8
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(spec.seed, 7);
//! let plan = spec.plan();
//! assert_eq!(plan.bleach_pe, 32); // 12.8 per 1000 of 2500 servers
//! assert_eq!(plan.servers, PoolPlan::paper().servers);
//! ```

use crate::plan::PoolPlan;
use ecn_netsim::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

// ------------------------------------------------------------------ structs

/// A declarative scenario: everything the campaign needs to build and
/// measure a world, expressed as data. See the module docs for the file
/// format and `scenarios/` for the preset library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in logs and machine-readable summaries; never
    /// rendered into the report, so renaming cannot break goldens).
    pub name: String,
    /// The experiment seed: the only source of randomness.
    pub seed: u64,
    /// How many of the 13 Table 2 vantage points to measure from (a
    /// prefix of the Table 2 ordering).
    pub vantage_count: usize,
    /// Run the §4.2 traceroute survey.
    pub traceroute: bool,
    /// Target population size and service mix.
    pub population: PopulationSpec,
    /// Transit/destination AS structure.
    pub topology: TopologySpec,
    /// Middlebox deployment rates (per 1000 servers).
    pub middleboxes: MiddleboxSpec,
    /// Endpoint ECN validation pass (off by default).
    #[serde(default)]
    pub validator: ValidatorSpec,
    /// Link loss and latency.
    pub links: LinkSpec,
    /// Campaign schedule profile.
    pub schedule: ScheduleSpec,
    /// Event-stream observability (metrics export, progress, sampling).
    pub observability: ObservabilitySpec,
    /// Fault tolerance for supervised campaign execution (worker retries,
    /// deadlines, checkpointing).
    pub resilience: ResilienceSpec,
}

/// `[population]`: who is in the pool and what they run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Pool servers (paper: 2500).
    pub servers: usize,
    /// Fraction running a co-located web server.
    pub web_fraction: f64,
    /// Among web servers: fraction negotiating ECN.
    pub web_ecn_on: f64,
    /// Among web servers: fraction with the broken reflect-flags stack.
    pub web_ecn_reflect: f64,
    /// Share of web servers answering plain-OK instead of the redirect.
    pub plain_ok_fraction: f64,
    /// Servers per 1000 that never answer (paper: 169 of 2500).
    pub always_down_per_1000: f64,
    /// Servers per 1000 leaving the pool at the batch boundary.
    pub churn_per_1000: f64,
    /// Fraction of live servers with short random outages.
    pub flapping_fraction: f64,
}

/// `[topology]`: AS-level structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Tier-1 transit ASes (fully meshed core).
    pub t1_count: usize,
    /// Tier-2 (regional transit) ASes.
    pub t2_count: usize,
    /// Destination-AS bookkeeping target (reported via
    /// `PoolPlan::total_as_count`; the actual count is drawn during the
    /// blueprint's packing phase).
    pub dest_as_count: usize,
}

/// `[middleboxes]`: ECN-hostile deployment rates, per 1000 servers.
///
/// Rates lower to integer counts with round-half-up at the spec's
/// population size ([`ScenarioSpec::plan`]), so the same file scales with
/// `population.servers`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiddleboxSpec {
    /// Servers behind an always-on ECT-dropping middlebox.
    pub ect_droppers_per_1000: f64,
    /// ECT-droppers sitting on one branch of an ECMP pair.
    pub flaky_ect_droppers_per_1000: f64,
    /// Servers dropping **not-ECT** UDP from everywhere.
    pub not_ect_droppers_per_1000: f64,
    /// Servers dropping not-ECT UDP from EC2 sources only.
    pub ec2_not_ect_droppers_per_1000: f64,
    /// Always-bleaching routers at provider-edge positions.
    pub bleach_pe_per_1000: f64,
    /// Always-bleachers at destination-AS border routers.
    pub bleach_border_per_1000: f64,
    /// Always-bleachers at destination-AS interior routers.
    pub bleach_interior_per_1000: f64,
    /// Always-bleachers at per-server access routers.
    pub bleach_access_per_1000: f64,
    /// Probabilistic (sometimes-strip) bleachers at PE positions.
    pub bleach_prob_pe_per_1000: f64,
    /// Probabilistic bleachers at access positions.
    pub bleach_prob_access_per_1000: f64,
    /// Per-packet strip probability of the probabilistic bleachers.
    pub bleach_prob: f64,
    /// Destination-AS edges with a RED-style probabilistic CE marker
    /// (the modern-ECN family; `0` = the paper's 2015 world).
    #[serde(default)]
    pub aqm_red_per_1000: f64,
    /// Destination-AS edges with a CoDel-style sojourn-marking
    /// bottleneck.
    #[serde(default)]
    pub aqm_codel_per_1000: f64,
    /// CE-suppressing (CE→ECT(0)) middleboxes at provider edges.
    #[serde(default)]
    pub ce_suppressors_per_1000: f64,
    /// ECT(1)→ECT(0) downgrading middleboxes at provider edges.
    #[serde(default)]
    pub ect1_downgrade_per_1000: f64,
    /// Per-markable-packet CE probability of the RED-style markers.
    #[serde(default)]
    pub aqm_red_prob: f64,
    /// Sojourn threshold of the CoDel-style markers, microseconds.
    #[serde(default)]
    pub aqm_codel_target_us: u64,
    /// Serialisation rate of CoDel-marked bottleneck edges, kbit/s.
    #[serde(default)]
    pub aqm_rate_kbps: u64,
}

/// `[validator]`: the endpoint ECN validation pass (RFC 9000-style
/// state machine probing each target through the validation echo
/// service). `packets = 0` (the default) disables the pass entirely —
/// the campaign then runs byte-identically to pre-validator builds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidatorSpec {
    /// Marked packets per validation round (s2n-quic tests 10;
    /// `0` = validation off).
    pub packets: usize,
    /// Send one deliberately CE-marked canary to detect CE suppression.
    pub ce_canary: bool,
    /// Vantages per 1000 that mark with ECT(1) instead of ECT(0)
    /// (L4S-style senders).
    pub ect1_per_1000: f64,
}

impl Default for ValidatorSpec {
    fn default() -> ValidatorSpec {
        ValidatorSpec {
            packets: 0,
            ce_canary: true,
            ect1_per_1000: 0.0,
        }
    }
}

/// `[links]`: loss and latency distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Multiplier on every vantage access-link loss probability
    /// (`1.0` = the calibrated Table 2 noise).
    pub vantage_loss_scale: f64,
    /// Extra independent loss on destination access-chain links
    /// (`0.0` = the paper's clean edges).
    pub edge_loss: f64,
    /// One-way core-link delay, microseconds.
    pub core_delay_us: u64,
    /// One-way edge-link delay, microseconds.
    pub edge_delay_us: u64,
}

/// `[schedule]`: how the campaign maps onto virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Base schedule: the paper's 75-day two-batch calendar, or the
    /// compressed `quick` profile used by tests and presets.
    pub profile: ScheduleProfile,
    /// Cap traces per vantage (`0` = the full Table 2 allocation).
    pub traces_per_vantage: usize,
    /// DNS discovery rounds (`0` = the profile default).
    pub discovery_rounds: usize,
    /// Target-list chunks per vantage (part of the experiment definition;
    /// each chunk probes from its own world).
    pub target_chunks: usize,
}

/// `[observability]`: the typed event stream (see `ecn-core`'s `events`
/// module). Pure observation — no setting here can change a result byte;
/// the spec section exists so a scenario file can carry its own metrics
/// wiring. CLI flags (`--metrics`, `--progress`, `--sample-traces`)
/// override these per run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservabilitySpec {
    /// JSON-lines metrics file path (empty = no metrics export).
    pub metrics: String,
    /// Print live progress to stderr.
    pub progress: bool,
    /// Keep 1-in-N logical traces by identity hash (`0` = no sampling).
    /// Requires `metrics`: sampled records ride the metrics stream.
    pub sample_traces: usize,
    /// Emit a cumulative snapshot line every N units in the metrics
    /// stream.
    pub snapshot_every: usize,
}

/// `[resilience]`: fault tolerance for supervised campaign execution
/// (`ecn-core`'s multi-process driver). Pure execution policy — retries
/// re-run exactly the failed unit slice and the reducer merge is
/// commutative, so no setting here can change a result byte. CLI flags
/// (`--max-retries`, `--worker-timeout`, `--checkpoint`) override these
/// per run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// Respawn retries per worker slot before the campaign fails with a
    /// typed error (0 = fail on the first worker fault).
    pub max_worker_retries: usize,
    /// Per-worker deadline in seconds; a worker delivering no payload in
    /// time is killed and retried (0 = no deadline).
    pub worker_timeout_s: f64,
    /// Checkpoint file path: after every worker payload, atomically
    /// persist merged-so-far aggregates + the completed-unit bitmap
    /// (empty = no checkpointing). `ecnudp run --resume <path>` picks the
    /// campaign back up from it.
    pub checkpoint: String,
}

/// The two built-in campaign calendars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleProfile {
    /// The paper's §3 calendar: two batches 75 days apart, 40-day windows.
    Paper,
    /// Hours instead of months — same structure, compressed for fast runs.
    Quick,
}

// ----------------------------------------------------------------- defaults

impl ScenarioSpec {
    /// The reference scenario: the paper's fixed experiment. Lowers to
    /// exactly [`PoolPlan::paper`] (asserted by unit test and gated by the
    /// golden suite), so running this spec reproduces the pre-spec world
    /// byte for byte.
    ///
    /// ```
    /// use ecn_pool::{PoolPlan, ScenarioSpec};
    ///
    /// let spec = ScenarioSpec::paper2015();
    /// assert_eq!(spec.plan(), PoolPlan::paper());
    /// assert_eq!(spec.vantage_count, 13);
    /// assert!(spec.traceroute);
    /// ```
    pub fn paper2015() -> ScenarioSpec {
        ScenarioSpec {
            name: "paper2015".into(),
            seed: 2015,
            vantage_count: 13,
            traceroute: true,
            population: PopulationSpec {
                servers: 2500,
                web_fraction: 0.60,
                web_ecn_on: 0.84,
                web_ecn_reflect: 0.01,
                plain_ok_fraction: 0.08,
                always_down_per_1000: 67.6,
                churn_per_1000: 36.0,
                flapping_fraction: 0.6,
            },
            topology: TopologySpec {
                t1_count: 12,
                t2_count: 188,
                dest_as_count: 1200,
            },
            middleboxes: MiddleboxSpec {
                ect_droppers_per_1000: 3.2,
                flaky_ect_droppers_per_1000: 0.8,
                not_ect_droppers_per_1000: 0.4,
                ec2_not_ect_droppers_per_1000: 0.8,
                bleach_pe_per_1000: 3.2,
                bleach_border_per_1000: 0.4,
                bleach_interior_per_1000: 0.4,
                bleach_access_per_1000: 0.8,
                bleach_prob_pe_per_1000: 0.4,
                bleach_prob_access_per_1000: 0.8,
                bleach_prob: 0.5,
                aqm_red_per_1000: 0.0,
                aqm_codel_per_1000: 0.0,
                ce_suppressors_per_1000: 0.0,
                ect1_downgrade_per_1000: 0.0,
                aqm_red_prob: 0.1,
                aqm_codel_target_us: 500,
                aqm_rate_kbps: 1_000,
            },
            validator: ValidatorSpec::default(),
            links: LinkSpec {
                vantage_loss_scale: 1.0,
                edge_loss: 0.0,
                core_delay_us: 8_000,
                edge_delay_us: 2_000,
            },
            schedule: ScheduleSpec {
                profile: ScheduleProfile::Paper,
                traces_per_vantage: 0,
                discovery_rounds: 0,
                target_chunks: 1,
            },
            observability: ObservabilitySpec {
                metrics: String::new(),
                progress: false,
                sample_traces: 0,
                snapshot_every: 10,
            },
            resilience: ResilienceSpec {
                max_worker_retries: 2,
                worker_timeout_s: 0.0,
                checkpoint: String::new(),
            },
        }
    }

    /// Lower the declarative spec to the imperative world plan. Middlebox
    /// and availability rates become integer counts at this spec's
    /// population size (round half-up).
    pub fn plan(&self) -> PoolPlan {
        let p = &self.population;
        let m = &self.middleboxes;
        let n = |per_1000: f64| rate_count(per_1000, p.servers);
        PoolPlan {
            servers: p.servers,
            dest_as_count: self.topology.dest_as_count,
            t1_count: self.topology.t1_count,
            t2_count: self.topology.t2_count,
            web_fraction: p.web_fraction,
            web_ecn_on: p.web_ecn_on,
            web_ecn_reflect: p.web_ecn_reflect,
            always_down: n(p.always_down_per_1000),
            churn_down: n(p.churn_per_1000),
            flapping_fraction: p.flapping_fraction,
            ect_blocked: n(m.ect_droppers_per_1000),
            ect_blocked_flaky: n(m.flaky_ect_droppers_per_1000),
            not_ect_blocked_global: n(m.not_ect_droppers_per_1000),
            not_ect_blocked_ec2: n(m.ec2_not_ect_droppers_per_1000),
            bleach_pe: n(m.bleach_pe_per_1000),
            bleach_border: n(m.bleach_border_per_1000),
            bleach_interior: n(m.bleach_interior_per_1000),
            bleach_access: n(m.bleach_access_per_1000),
            bleach_prob_pe: n(m.bleach_prob_pe_per_1000),
            bleach_prob_access: n(m.bleach_prob_access_per_1000),
            bleach_prob: m.bleach_prob,
            aqm_red: n(m.aqm_red_per_1000),
            aqm_codel: n(m.aqm_codel_per_1000),
            ce_suppress: n(m.ce_suppressors_per_1000),
            ect1_downgrade: n(m.ect1_downgrade_per_1000),
            aqm_red_prob: m.aqm_red_prob,
            aqm_codel_target: Nanos(m.aqm_codel_target_us.saturating_mul(1_000)),
            aqm_rate_bps: m.aqm_rate_kbps.saturating_mul(1_000),
            plain_ok_fraction: p.plain_ok_fraction,
            vantage_count: self.vantage_count,
            loss_scale: self.links.vantage_loss_scale,
            edge_loss: self.links.edge_loss,
            core_delay: Nanos(self.links.core_delay_us.saturating_mul(1_000)),
            edge_delay: Nanos(self.links.edge_delay_us.saturating_mul(1_000)),
            // churn_at is pinned to the campaign's batch-2 boundary by the
            // engine; flap durations stay at the calibrated paper values
            ..PoolPlan::paper()
        }
    }

    /// Load a spec from TOML text (the `scenarios/*.toml` preset format).
    /// Lenient on absence (omitted keys keep their
    /// [`Self::paper2015`] defaults), strict on presence (unknown keys
    /// and type mismatches are errors naming the offending path).
    pub fn from_toml_str(input: &str) -> Result<ScenarioSpec, SpecError> {
        Self::from_value(parse_toml(input)?)
    }

    /// Load a spec from JSON text, with the same lenient-on-absence,
    /// strict-on-presence semantics as [`Self::from_toml_str`].
    pub fn from_json_str(input: &str) -> Result<ScenarioSpec, SpecError> {
        Self::from_value(parse_json(input)?)
    }

    fn from_value(value: SpecValue) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec::paper2015();
        apply_root(&mut spec, &value)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Check cross-field invariants that would otherwise surface as
    /// panics deep inside world construction.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |path: &str, message: String| Err(SpecError::new(path, message));
        let p = &self.population;
        if p.servers < 8 {
            return err("population.servers", format!("{} < 8", p.servers));
        }
        if self.vantage_count < 1 || self.vantage_count > 13 {
            return err(
                "vantage_count",
                format!("{} outside 1..=13", self.vantage_count),
            );
        }
        if self.topology.t1_count < 2 || self.topology.t2_count < 2 {
            return err("topology", "t1_count and t2_count must be >= 2".into());
        }
        for (path, frac) in [
            ("population.web_fraction", p.web_fraction),
            ("population.web_ecn_on", p.web_ecn_on),
            ("population.web_ecn_reflect", p.web_ecn_reflect),
            ("population.plain_ok_fraction", p.plain_ok_fraction),
            ("population.flapping_fraction", p.flapping_fraction),
            ("middleboxes.bleach_prob", self.middleboxes.bleach_prob),
            ("middleboxes.aqm_red_prob", self.middleboxes.aqm_red_prob),
            ("links.edge_loss", self.links.edge_loss),
        ] {
            if !(0.0..=1.0).contains(&frac) {
                return err(path, format!("{frac} outside [0, 1]"));
            }
        }
        let scale = self.links.vantage_loss_scale;
        if !scale.is_finite() || !(0.0..=1000.0).contains(&scale) {
            return err(
                "links.vantage_loss_scale",
                format!("{scale} outside [0, 1000]"),
            );
        }
        // one virtual minute per hop is already absurd; bounding here
        // keeps the µs→ns lowering far from u64 overflow
        const MAX_DELAY_US: u64 = 60_000_000;
        for (path, delay) in [
            ("links.core_delay_us", self.links.core_delay_us),
            ("links.edge_delay_us", self.links.edge_delay_us),
        ] {
            if delay > MAX_DELAY_US {
                return err(path, format!("{delay} exceeds {MAX_DELAY_US} (60 s)"));
            }
        }
        let m = &self.middleboxes;
        for (path, rate) in [
            ("population.always_down_per_1000", p.always_down_per_1000),
            ("population.churn_per_1000", p.churn_per_1000),
            ("middleboxes.ect_droppers_per_1000", m.ect_droppers_per_1000),
            (
                "middleboxes.flaky_ect_droppers_per_1000",
                m.flaky_ect_droppers_per_1000,
            ),
            (
                "middleboxes.not_ect_droppers_per_1000",
                m.not_ect_droppers_per_1000,
            ),
            (
                "middleboxes.ec2_not_ect_droppers_per_1000",
                m.ec2_not_ect_droppers_per_1000,
            ),
            ("middleboxes.bleach_pe_per_1000", m.bleach_pe_per_1000),
            (
                "middleboxes.bleach_border_per_1000",
                m.bleach_border_per_1000,
            ),
            (
                "middleboxes.bleach_interior_per_1000",
                m.bleach_interior_per_1000,
            ),
            (
                "middleboxes.bleach_access_per_1000",
                m.bleach_access_per_1000,
            ),
            (
                "middleboxes.bleach_prob_pe_per_1000",
                m.bleach_prob_pe_per_1000,
            ),
            (
                "middleboxes.bleach_prob_access_per_1000",
                m.bleach_prob_access_per_1000,
            ),
            ("middleboxes.aqm_red_per_1000", m.aqm_red_per_1000),
            ("middleboxes.aqm_codel_per_1000", m.aqm_codel_per_1000),
            (
                "middleboxes.ce_suppressors_per_1000",
                m.ce_suppressors_per_1000,
            ),
            (
                "middleboxes.ect1_downgrade_per_1000",
                m.ect1_downgrade_per_1000,
            ),
            ("validator.ect1_per_1000", self.validator.ect1_per_1000),
        ] {
            if !(0.0..=1000.0).contains(&rate) {
                return err(path, format!("{rate} outside [0, 1000]"));
            }
        }
        if self.validator.packets > 64 {
            return err(
                "validator.packets",
                format!(
                    "{} exceeds 64 (one validation round)",
                    self.validator.packets
                ),
            );
        }
        if m.aqm_codel_target_us > 10_000_000 {
            return err(
                "middleboxes.aqm_codel_target_us",
                format!("{} exceeds 10000000 (10 s)", m.aqm_codel_target_us),
            );
        }
        if m.aqm_rate_kbps < 8 || m.aqm_rate_kbps > 100_000_000 {
            return err(
                "middleboxes.aqm_rate_kbps",
                format!("{} outside [8, 100000000]", m.aqm_rate_kbps),
            );
        }
        if self.schedule.target_chunks < 1 {
            return err("schedule.target_chunks", "must be >= 1".into());
        }
        if self.observability.snapshot_every < 1 {
            return err("observability.snapshot_every", "must be >= 1".into());
        }
        if self.observability.sample_traces > 0 && self.observability.metrics.is_empty() {
            return err(
                "observability.sample_traces",
                "requires observability.metrics (sampled traces ride the metrics stream)".into(),
            );
        }
        let res = &self.resilience;
        if res.max_worker_retries > 1000 {
            return err(
                "resilience.max_worker_retries",
                format!("{} exceeds 1000", res.max_worker_retries),
            );
        }
        if !res.worker_timeout_s.is_finite() || !(0.0..=86_400.0).contains(&res.worker_timeout_s) {
            return err(
                "resilience.worker_timeout_s",
                format!("{} outside [0, 86400] seconds", res.worker_timeout_s),
            );
        }
        // the special population must leave room for the dead/churned
        // servers drawn before it (generate_profiles draws specials from
        // the *alive* remainder)
        let plan = self.plan();
        let specials = plan.ect_blocked
            + plan.ect_blocked_flaky
            + plan.not_ect_blocked_global
            + plan.not_ect_blocked_ec2;
        let dead = plan.always_down.min(p.servers / 3) + plan.churn_down.min(p.servers / 3);
        if specials + dead >= p.servers {
            return err(
                "middleboxes",
                format!(
                    "{specials} middleboxed + {dead} dead/churned servers \
                     exceed the population of {}",
                    p.servers
                ),
            );
        }
        // every planted modern middlebox consumes one candidate dest AS
        // (as do bleachers and special servers); the packer guarantees at
        // least servers/4 ASes (max AS size 4), so reject deployments that
        // would exhaust the pool before world construction can panic
        let modern = plan.aqm_red + plan.aqm_codel + plan.ce_suppress + plan.ect1_downgrade;
        let bleachers = plan.bleach_pe
            + plan.bleach_border
            + plan.bleach_interior
            + plan.bleach_access
            + plan.bleach_prob_pe
            + plan.bleach_prob_access;
        if modern > 0 && modern + bleachers + specials >= p.servers / 4 {
            return err(
                "middleboxes",
                format!(
                    "{modern} AQM/suppressor boxes + {bleachers} bleachers + \
                     {specials} special servers exceed the candidate AS pool \
                     (~{} ASes)",
                    p.servers / 4
                ),
            );
        }
        Ok(())
    }
}

/// Round-half-up count for a per-1000 deployment rate.
fn rate_count(per_1000: f64, servers: usize) -> usize {
    ((per_1000 * servers as f64) / 1000.0).round() as usize
}

// ------------------------------------------------------------------- errors

/// A spec-file problem: what went wrong, and at which key path or line.
#[derive(Debug, Clone)]
pub struct SpecError {
    /// Dotted key path (`middleboxes.bleach_prob`) or `line N` locator.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> SpecError {
        SpecError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec: {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SpecError {}

// -------------------------------------------------------------- value model

/// The common shape both file formats parse into: a tree of tables whose
/// leaves are strings, numbers (kept as text and parsed per target type,
/// so integers never round-trip through `f64`), and booleans.
#[derive(Debug, Clone, PartialEq)]
enum SpecValue {
    Str(String),
    Num(String),
    Bool(bool),
    Table(Vec<(String, SpecValue)>),
}

impl SpecValue {
    fn kind(&self) -> &'static str {
        match self {
            SpecValue::Str(_) => "string",
            SpecValue::Num(_) => "number",
            SpecValue::Bool(_) => "boolean",
            SpecValue::Table(_) => "table",
        }
    }
}

fn want_str(v: &SpecValue, path: &str) -> Result<String, SpecError> {
    match v {
        SpecValue::Str(s) => Ok(s.clone()),
        other => Err(SpecError::new(
            path,
            format!("expected a string, found {}", other.kind()),
        )),
    }
}

fn want_bool(v: &SpecValue, path: &str) -> Result<bool, SpecError> {
    match v {
        SpecValue::Bool(b) => Ok(*b),
        other => Err(SpecError::new(
            path,
            format!("expected true/false, found {}", other.kind()),
        )),
    }
}

fn want_f64(v: &SpecValue, path: &str) -> Result<f64, SpecError> {
    match v {
        SpecValue::Num(s) => s
            .parse::<f64>()
            .map_err(|e| SpecError::new(path, format!("bad number `{s}`: {e}"))),
        other => Err(SpecError::new(
            path,
            format!("expected a number, found {}", other.kind()),
        )),
    }
}

fn want_u64(v: &SpecValue, path: &str) -> Result<u64, SpecError> {
    match v {
        SpecValue::Num(s) => s.parse::<u64>().map_err(|_| {
            SpecError::new(path, format!("expected a non-negative integer, got `{s}`"))
        }),
        other => Err(SpecError::new(
            path,
            format!("expected an integer, found {}", other.kind()),
        )),
    }
}

fn want_usize(v: &SpecValue, path: &str) -> Result<usize, SpecError> {
    want_u64(v, path).map(|n| n as usize)
}

// ----------------------------------------------------------------- applying

macro_rules! apply_table {
    ($table:expr, $prefix:expr, { $($key:literal => $set:expr),+ $(,)? }) => {{
        for (key, value) in $table {
            let path = if $prefix.is_empty() {
                key.clone()
            } else {
                format!("{}.{key}", $prefix)
            };
            match key.as_str() {
                $($key => {
                    let mut apply = $set;
                    apply(value, path.as_str())?
                })+
                _ => {
                    return Err(SpecError::new(
                        path,
                        format!(
                            "unknown key (expected one of: {})",
                            [$($key),+].join(", ")
                        ),
                    ))
                }
            }
        }
        Ok::<(), SpecError>(())
    }};
}

fn want_table<'v>(v: &'v SpecValue, path: &str) -> Result<&'v [(String, SpecValue)], SpecError> {
    match v {
        SpecValue::Table(entries) => Ok(entries),
        other => Err(SpecError::new(
            path,
            format!("expected a table/object, found {}", other.kind()),
        )),
    }
}

fn apply_root(spec: &mut ScenarioSpec, value: &SpecValue) -> Result<(), SpecError> {
    let root = want_table(value, "<root>")?;
    apply_table!(root, "", {
        "name" => |v, p| { spec.name = want_str(v, p)?; Ok(()) },
        "seed" => |v, p| { spec.seed = want_u64(v, p)?; Ok(()) },
        "vantage_count" => |v, p| { spec.vantage_count = want_usize(v, p)?; Ok(()) },
        "traceroute" => |v, p| { spec.traceroute = want_bool(v, p)?; Ok(()) },
        "population" => |v, p: &str| apply_population(&mut spec.population, want_table(v, p)?, p),
        "topology" => |v, p: &str| apply_topology(&mut spec.topology, want_table(v, p)?, p),
        "middleboxes" => |v, p: &str| apply_middleboxes(&mut spec.middleboxes, want_table(v, p)?, p),
        "validator" => |v, p: &str| apply_validator(&mut spec.validator, want_table(v, p)?, p),
        "links" => |v, p: &str| apply_links(&mut spec.links, want_table(v, p)?, p),
        "schedule" => |v, p: &str| apply_schedule(&mut spec.schedule, want_table(v, p)?, p),
        "observability" => |v, p: &str| apply_observability(&mut spec.observability, want_table(v, p)?, p),
        "resilience" => |v, p: &str| apply_resilience(&mut spec.resilience, want_table(v, p)?, p),
    })
}

fn apply_population(
    out: &mut PopulationSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "servers" => |v, p| { out.servers = want_usize(v, p)?; Ok(()) },
        "web_fraction" => |v, p| { out.web_fraction = want_f64(v, p)?; Ok(()) },
        "web_ecn_on" => |v, p| { out.web_ecn_on = want_f64(v, p)?; Ok(()) },
        "web_ecn_reflect" => |v, p| { out.web_ecn_reflect = want_f64(v, p)?; Ok(()) },
        "plain_ok_fraction" => |v, p| { out.plain_ok_fraction = want_f64(v, p)?; Ok(()) },
        "always_down_per_1000" => |v, p| { out.always_down_per_1000 = want_f64(v, p)?; Ok(()) },
        "churn_per_1000" => |v, p| { out.churn_per_1000 = want_f64(v, p)?; Ok(()) },
        "flapping_fraction" => |v, p| { out.flapping_fraction = want_f64(v, p)?; Ok(()) },
    })
}

fn apply_topology(
    out: &mut TopologySpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "t1_count" => |v, p| { out.t1_count = want_usize(v, p)?; Ok(()) },
        "t2_count" => |v, p| { out.t2_count = want_usize(v, p)?; Ok(()) },
        "dest_as_count" => |v, p| { out.dest_as_count = want_usize(v, p)?; Ok(()) },
    })
}

fn apply_middleboxes(
    out: &mut MiddleboxSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "ect_droppers_per_1000" => |v, p| { out.ect_droppers_per_1000 = want_f64(v, p)?; Ok(()) },
        "flaky_ect_droppers_per_1000" => |v, p| { out.flaky_ect_droppers_per_1000 = want_f64(v, p)?; Ok(()) },
        "not_ect_droppers_per_1000" => |v, p| { out.not_ect_droppers_per_1000 = want_f64(v, p)?; Ok(()) },
        "ec2_not_ect_droppers_per_1000" => |v, p| { out.ec2_not_ect_droppers_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_pe_per_1000" => |v, p| { out.bleach_pe_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_border_per_1000" => |v, p| { out.bleach_border_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_interior_per_1000" => |v, p| { out.bleach_interior_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_access_per_1000" => |v, p| { out.bleach_access_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_prob_pe_per_1000" => |v, p| { out.bleach_prob_pe_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_prob_access_per_1000" => |v, p| { out.bleach_prob_access_per_1000 = want_f64(v, p)?; Ok(()) },
        "bleach_prob" => |v, p| { out.bleach_prob = want_f64(v, p)?; Ok(()) },
        "aqm_red_per_1000" => |v, p| { out.aqm_red_per_1000 = want_f64(v, p)?; Ok(()) },
        "aqm_codel_per_1000" => |v, p| { out.aqm_codel_per_1000 = want_f64(v, p)?; Ok(()) },
        "ce_suppressors_per_1000" => |v, p| { out.ce_suppressors_per_1000 = want_f64(v, p)?; Ok(()) },
        "ect1_downgrade_per_1000" => |v, p| { out.ect1_downgrade_per_1000 = want_f64(v, p)?; Ok(()) },
        "aqm_red_prob" => |v, p| { out.aqm_red_prob = want_f64(v, p)?; Ok(()) },
        "aqm_codel_target_us" => |v, p| { out.aqm_codel_target_us = want_u64(v, p)?; Ok(()) },
        "aqm_rate_kbps" => |v, p| { out.aqm_rate_kbps = want_u64(v, p)?; Ok(()) },
    })
}

fn apply_validator(
    out: &mut ValidatorSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "packets" => |v, p| { out.packets = want_usize(v, p)?; Ok(()) },
        "ce_canary" => |v, p| { out.ce_canary = want_bool(v, p)?; Ok(()) },
        "ect1_per_1000" => |v, p| { out.ect1_per_1000 = want_f64(v, p)?; Ok(()) },
    })
}

fn apply_links(
    out: &mut LinkSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "vantage_loss_scale" => |v, p| { out.vantage_loss_scale = want_f64(v, p)?; Ok(()) },
        "edge_loss" => |v, p| { out.edge_loss = want_f64(v, p)?; Ok(()) },
        "core_delay_us" => |v, p| { out.core_delay_us = want_u64(v, p)?; Ok(()) },
        "edge_delay_us" => |v, p| { out.edge_delay_us = want_u64(v, p)?; Ok(()) },
    })
}

fn apply_schedule(
    out: &mut ScheduleSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "profile" => |v, p: &str| {
            out.profile = match want_str(v, p)?.to_ascii_lowercase().as_str() {
                "paper" => ScheduleProfile::Paper,
                "quick" => ScheduleProfile::Quick,
                other => {
                    return Err(SpecError::new(
                        p,
                        format!("unknown profile `{other}` (expected `paper` or `quick`)"),
                    ))
                }
            };
            Ok(())
        },
        "traces_per_vantage" => |v, p| { out.traces_per_vantage = want_usize(v, p)?; Ok(()) },
        "discovery_rounds" => |v, p| { out.discovery_rounds = want_usize(v, p)?; Ok(()) },
        "target_chunks" => |v, p| { out.target_chunks = want_usize(v, p)?; Ok(()) },
    })
}

fn apply_observability(
    out: &mut ObservabilitySpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "metrics" => |v, p| { out.metrics = want_str(v, p)?; Ok(()) },
        "progress" => |v, p| { out.progress = want_bool(v, p)?; Ok(()) },
        "sample_traces" => |v, p| { out.sample_traces = want_usize(v, p)?; Ok(()) },
        "snapshot_every" => |v, p| { out.snapshot_every = want_usize(v, p)?; Ok(()) },
    })
}

fn apply_resilience(
    out: &mut ResilienceSpec,
    table: &[(String, SpecValue)],
    prefix: &str,
) -> Result<(), SpecError> {
    apply_table!(table, prefix, {
        "max_worker_retries" => |v, p| { out.max_worker_retries = want_usize(v, p)?; Ok(()) },
        "worker_timeout_s" => |v, p| { out.worker_timeout_s = want_f64(v, p)?; Ok(()) },
        "checkpoint" => |v, p| { out.checkpoint = want_str(v, p)?; Ok(()) },
    })
}

// -------------------------------------------------------------- TOML parser

/// Parse the TOML subset the spec format uses: `#` comments, `[section]`
/// headers (dotted), `key = value` pairs (dotted keys allowed) with
/// basic-string, integer/float, and boolean values. No arrays, no inline
/// tables, no multi-line strings — the format is deliberately flat.
fn parse_toml(input: &str) -> Result<SpecValue, SpecError> {
    let mut root: Vec<(String, SpecValue)> = Vec::new();
    let mut section: Vec<String> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| Err(SpecError::new(format!("line {lineno}"), message));
        if let Some(header) = line.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return err(format!("unterminated table header `{line}`"));
            };
            if header.starts_with('[') {
                return err("array-of-tables `[[...]]` is not part of the spec format".into());
            }
            section = split_keys(header, lineno)?;
            // materialise the (possibly empty) table so `[links]` alone
            // is accepted
            let _ = ensure_tables(&mut root, &section, lineno)?;
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(format!("expected `key = value`, found `{line}`"));
        };
        let mut keys = section.clone();
        keys.extend(split_keys(&line[..eq], lineno)?);
        let value = parse_toml_value(line[eq + 1..].trim(), lineno)?;
        let (leaf, parents) = keys.split_last().expect("split_keys yields >= 1 key");
        let table = ensure_tables(&mut root, parents, lineno)?;
        if table.iter().any(|(k, _)| k == leaf) {
            return err(format!("duplicate key `{}`", keys.join(".")));
        }
        table.push((leaf.clone(), value));
    }
    Ok(SpecValue::Table(root))
}

/// Remove a `#` comment, respecting basic strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn split_keys(dotted: &str, lineno: usize) -> Result<Vec<String>, SpecError> {
    let mut keys = Vec::new();
    for part in dotted.split('.') {
        let key = part.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(SpecError::new(
                format!("line {lineno}"),
                format!("bad key `{dotted}` (bare keys only: [A-Za-z0-9_-])"),
            ));
        }
        keys.push(key.to_string());
    }
    Ok(keys)
}

/// Walk (creating) nested tables down `keys`, returning the final table.
fn ensure_tables<'t>(
    root: &'t mut Vec<(String, SpecValue)>,
    keys: &[String],
    lineno: usize,
) -> Result<&'t mut Vec<(String, SpecValue)>, SpecError> {
    let mut table = root;
    for key in keys {
        if !table.iter().any(|(k, _)| k == key) {
            table.push((key.clone(), SpecValue::Table(Vec::new())));
        }
        let entry = table
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .expect("just ensured");
        table = match entry {
            SpecValue::Table(t) => t,
            other => {
                return Err(SpecError::new(
                    format!("line {lineno}"),
                    format!("key `{key}` already holds a {}", other.kind()),
                ))
            }
        };
    }
    Ok(table)
}

fn parse_toml_value(text: &str, lineno: usize) -> Result<SpecValue, SpecError> {
    let err = |message: String| Err(SpecError::new(format!("line {lineno}"), message));
    if text.is_empty() {
        return err("missing value".into());
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, consumed) = parse_basic_string(rest, lineno)?;
        if !rest[consumed..].trim().is_empty() {
            return err(format!("trailing characters after string: `{text}`"));
        }
        return Ok(SpecValue::Str(s));
    }
    match text {
        "true" => return Ok(SpecValue::Bool(true)),
        "false" => return Ok(SpecValue::Bool(false)),
        _ => {}
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    if digits
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        && digits.parse::<f64>().is_ok()
    {
        return Ok(SpecValue::Num(digits));
    }
    err(format!(
        "unsupported value `{text}` (strings, numbers, and booleans only)"
    ))
}

/// Parse a basic string body (after the opening quote); returns the text
/// and how many input bytes were consumed (including the closing quote).
fn parse_basic_string(body: &str, lineno: usize) -> Result<(String, usize), SpecError> {
    let err = |message: String| Err(SpecError::new(format!("line {lineno}"), message));
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => return err(format!("unknown escape `\\{other}`")),
                None => return err("unterminated escape".into()),
            },
            c => out.push(c),
        }
    }
    err("unterminated string".into())
}

// -------------------------------------------------------------- JSON parser

/// Parse JSON text into the shared value model. Self-contained (does not
/// rely on any serde implementation detail) so the loader keeps working
/// if the vendor stub is swapped for the real crates.
fn parse_json(input: &str) -> Result<SpecValue, SpecError> {
    let mut p = JsonCursor {
        bytes: input.as_bytes(),
        text: input,
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct JsonCursor<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl JsonCursor<'_> {
    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(format!("byte {}", self.pos), message)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), SpecError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SpecError> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.text[self.pos..];
            let Some(c) = rest.chars().next() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.text[self.pos..].chars().next() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                        }
                        other => return Err(self.err(format!("unknown escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<SpecValue, SpecError> {
        match self.peek() {
            Some(b'"') => Ok(SpecValue::Str(self.string()?)),
            Some(b'{') => {
                self.eat(b'{')?;
                let mut table = Vec::new();
                if self.peek() != Some(b'}') {
                    loop {
                        let key = self.string()?;
                        self.eat(b':')?;
                        let v = self.value()?;
                        if table.iter().any(|(k, _)| *k == key) {
                            return Err(self.err(format!("duplicate key `{key}`")));
                        }
                        table.push((key, v));
                        if self.peek() != Some(b',') {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                self.eat(b'}')?;
                Ok(SpecValue::Table(table))
            }
            Some(b't') => self.keyword("true").map(|_| SpecValue::Bool(true)),
            Some(b'f') => self.keyword("false").map(|_| SpecValue::Bool(false)),
            Some(b'[') => Err(self.err("arrays are not part of the spec format")),
            Some(b'n') => Err(self.err("null is not part of the spec format")),
            Some(_) => {
                self.skip_ws();
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                ) {
                    self.pos += 1;
                }
                let token = &self.text[start..self.pos];
                if token.is_empty() || token.parse::<f64>().is_err() {
                    return Err(self.err(format!("bad number `{token}`")));
                }
                Ok(SpecValue::Num(token.to_string()))
            }
            None => Err(self.err("unexpected end of input")),
        }
    }
}

// -------------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper2015_lowers_to_the_paper_plan_exactly() {
        assert_eq!(ScenarioSpec::paper2015().plan(), PoolPlan::paper());
    }

    #[test]
    fn rate_rounding_reproduces_every_paper_count() {
        let plan = ScenarioSpec::paper2015().plan();
        assert_eq!(plan.always_down, 169);
        assert_eq!(plan.churn_down, 90);
        assert_eq!(plan.ect_blocked, 8);
        assert_eq!(plan.ect_blocked_flaky, 2);
        assert_eq!(plan.not_ect_blocked_global, 1);
        assert_eq!(plan.not_ect_blocked_ec2, 2);
        assert_eq!(plan.bleach_pe, 8);
        assert_eq!(plan.bleach_prob_access, 2);
    }

    #[test]
    fn empty_toml_is_paper2015() {
        let spec = ScenarioSpec::from_toml_str("").unwrap();
        assert_eq!(spec, ScenarioSpec::paper2015());
        let spec = ScenarioSpec::from_toml_str("# comments only\n\n").unwrap();
        assert_eq!(spec, ScenarioSpec::paper2015());
    }

    #[test]
    fn toml_deltas_apply_and_defaults_hold() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
            name = "lossy"        # inline comment
            seed = 99
            vantage_count = 4
            traceroute = false

            [population]
            servers = 120

            [links]
            edge_loss = 0.05
            vantage_loss_scale = 2.0

            [schedule]
            profile = "quick"
            traces_per_vantage = 2
            "#,
        )
        .unwrap();
        assert_eq!(spec.name, "lossy");
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.vantage_count, 4);
        assert!(!spec.traceroute);
        assert_eq!(spec.population.servers, 120);
        assert_eq!(spec.links.edge_loss, 0.05);
        assert_eq!(spec.schedule.profile, ScheduleProfile::Quick);
        assert_eq!(spec.schedule.traces_per_vantage, 2);
        // untouched keys keep paper defaults
        assert_eq!(spec.population.web_fraction, 0.60);
        assert_eq!(spec.middleboxes.bleach_prob, 0.5);
        let plan = spec.plan();
        assert_eq!(plan.vantage_count, 4);
        assert_eq!(plan.edge_loss, 0.05);
        assert_eq!(plan.loss_scale, 2.0);
    }

    #[test]
    fn dotted_keys_and_sections_are_equivalent() {
        let a = ScenarioSpec::from_toml_str("links.edge_loss = 0.1").unwrap();
        let b = ScenarioSpec::from_toml_str("[links]\nedge_loss = 0.1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn json_specs_load_with_the_same_semantics() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"seed": 7, "population": {"servers": 200}, "schedule": {"profile": "quick"}}"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.population.servers, 200);
        assert_eq!(spec.schedule.profile, ScheduleProfile::Quick);
        assert_eq!(spec.vantage_count, 13, "omitted keys keep defaults");
    }

    #[test]
    fn unknown_keys_and_type_mismatches_name_the_path() {
        let e = ScenarioSpec::from_toml_str("[population]\nwebb_fraction = 0.5").unwrap_err();
        assert_eq!(e.path, "population.webb_fraction");
        assert!(e.message.contains("unknown key"), "{e}");
        assert!(e.message.contains("web_fraction"), "lists valid keys: {e}");

        let e = ScenarioSpec::from_toml_str("seed = \"twenty\"").unwrap_err();
        assert_eq!(e.path, "seed");

        let e = ScenarioSpec::from_json_str(r#"{"links": 3}"#).unwrap_err();
        assert_eq!(e.path, "links");
        assert!(e.message.contains("table"), "{e}");
    }

    #[test]
    fn validation_rejects_out_of_range_worlds() {
        let e = ScenarioSpec::from_toml_str("vantage_count = 20").unwrap_err();
        assert_eq!(e.path, "vantage_count");
        // delays are bounded before the µs→ns lowering can overflow
        let e = ScenarioSpec::from_toml_str("[links]\ncore_delay_us = 18446744073709551615")
            .unwrap_err();
        assert_eq!(e.path, "links.core_delay_us");
        // non-finite loss scales (1e999 parses to +inf) are named errors,
        // not silently-degenerate loss processes
        let e = ScenarioSpec::from_toml_str("[links]\nvantage_loss_scale = 1e999").unwrap_err();
        assert_eq!(e.path, "links.vantage_loss_scale");
        let mut nan = ScenarioSpec::paper2015();
        nan.links.vantage_loss_scale = f64::NAN;
        assert_eq!(nan.validate().unwrap_err().path, "links.vantage_loss_scale");
        let e = ScenarioSpec::from_toml_str("[links]\nedge_loss = 1.5").unwrap_err();
        assert_eq!(e.path, "links.edge_loss");
        let e = ScenarioSpec::from_toml_str(
            "[population]\nservers = 20\n[middleboxes]\nect_droppers_per_1000 = 900",
        )
        .unwrap_err();
        assert_eq!(e.path, "middleboxes");
    }

    #[test]
    fn toml_parse_errors_carry_line_numbers() {
        let e = ScenarioSpec::from_toml_str("seed = 1\nnot a pair\n").unwrap_err();
        assert_eq!(e.path, "line 2");
        let e = ScenarioSpec::from_toml_str("[unclosed\n").unwrap_err();
        assert_eq!(e.path, "line 1");
        let e = ScenarioSpec::from_toml_str("seed = 1\nseed = 2\n").unwrap_err();
        assert_eq!(e.path, "line 2");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let spec = ScenarioSpec::from_toml_str("seed = 9007199254740993").unwrap();
        // 2^53 + 1 survives (an f64 round-trip would flatten it)
        assert_eq!(spec.seed, 9_007_199_254_740_993);
        let spec = ScenarioSpec::from_toml_str("seed = 1_000_000").unwrap();
        assert_eq!(spec.seed, 1_000_000);
    }

    #[test]
    fn serde_roundtrip_preserves_the_spec() {
        let mut spec = ScenarioSpec::paper2015();
        spec.name = "round\"trip".into();
        spec.links.edge_loss = 0.125;
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn middlebox_rate_of_exactly_1000_is_accepted() {
        // the boundary: 1000 per 1000 = deploy to every server, legal
        let spec = ScenarioSpec::from_toml_str(
            r#"
            [population]
            servers = 5000
            [middleboxes]
            bleach_access_per_1000 = 1000
            "#,
        )
        .unwrap();
        assert_eq!(spec.middleboxes.bleach_access_per_1000, 1000.0);
        assert_eq!(spec.plan().bleach_access, 5000);
    }

    #[test]
    fn middlebox_rate_above_1000_is_rejected_with_the_key_path() {
        // > 1000 per 1000 would silently saturate at the whole population;
        // it must fail at load time, naming the offending key
        let err = ScenarioSpec::from_toml_str(
            r#"
            [middleboxes]
            ect_droppers_per_1000 = 1000.5
            "#,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("middleboxes.ect_droppers_per_1000"),
            "error must name the key path: {msg}"
        );
        assert!(msg.contains("1000.5"), "error must quote the value: {msg}");

        // population rates share the same per-1000 semantics and bound
        let err = ScenarioSpec::from_toml_str(
            r#"
            [population]
            churn_per_1000 = 2000
            "#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("population.churn_per_1000"),
            "error must name the key path: {err}"
        );
    }

    #[test]
    fn strings_with_escapes_and_comments_parse() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"a # not-a-comment \\\"quoted\\\"\" # real comment",
        )
        .unwrap();
        assert_eq!(spec.name, "a # not-a-comment \"quoted\"");
    }
}
