//! The assembled world and its types: tier-1 mesh, regional transits,
//! destination ASes with per-server access chains, the 13 vantage points,
//! the pool DNS, and the planted ground truth (middleboxes, bleachers,
//! churn) that the measurement campaign will rediscover through packets.
//!
//! Construction is split in two (see [`crate::blueprint`]):
//! [`crate::WorldBlueprint::build`] makes every seeded decision once,
//! and `instantiate` stamps out a live world from it. [`build_scenario`]
//! composes the two for callers that want one world from one seed.

use crate::plan::{PoolPlan, ServerProfile};
use ecn_asdb::AsDb;
use ecn_geo::GeoDb;
use ecn_netsim::{NodeId, Sim};
use ecn_stack::HostHandle;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The super-prefix all EC2 vantages live in (the Phoenix firewall rule).
pub const EC2_SUPER_PREFIX: &str = "54.0.0.0/8";

/// Where a bleaching router was planted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BleachSite {
    /// Provider-edge (customer-facing) router: observed strip location is
    /// the customer's border — an AS boundary.
    ProviderEdge,
    /// Destination-AS border router.
    Border,
    /// Destination-AS interior router.
    Interior,
    /// Per-server access router.
    Access,
}

/// The planted ground truth, for audits only — the prober never reads it.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Servers behind an always-on ECT-dropping middlebox.
    pub ect_blocked: Vec<Ipv4Addr>,
    /// Servers whose ECT-dropping middlebox is on one ECMP branch.
    pub ect_blocked_flaky: Vec<Ipv4Addr>,
    /// Servers dropping not-ECT UDP from everywhere.
    pub not_ect_blocked: Vec<Ipv4Addr>,
    /// Servers dropping not-ECT UDP from EC2 sources only.
    pub not_ect_blocked_ec2: Vec<Ipv4Addr>,
    /// Always-bleaching routers.
    pub bleach_always: Vec<(NodeId, BleachSite)>,
    /// Sometimes-bleaching routers.
    pub bleach_sometimes: Vec<(NodeId, BleachSite)>,
    /// Servers behind an always-on bleacher (any site) — the set an ECN
    /// validator *should* fail.
    pub bleached_servers: Vec<Ipv4Addr>,
    /// Servers behind a probabilistic bleacher (failure detectable but
    /// not guaranteed per round).
    pub bleached_sometimes_servers: Vec<Ipv4Addr>,
    /// Servers behind a RED-style CE-marking AQM edge (marks are benign:
    /// a validator must stay `Capable`).
    pub aqm_red_servers: Vec<Ipv4Addr>,
    /// Servers behind a CoDel-style sojourn-marking bottleneck edge.
    pub aqm_codel_servers: Vec<Ipv4Addr>,
    /// Servers behind a CE-suppressing middlebox (CE erased to ECT(0)).
    pub ce_suppressed_servers: Vec<Ipv4Addr>,
    /// Servers behind an ECT(1)→ECT(0) downgrading middlebox.
    pub ect1_downgraded_servers: Vec<Ipv4Addr>,
    /// Destination ASes actually created.
    pub dest_as_count: usize,
    /// Servers with a web server.
    pub web_server_count: usize,
    /// Web servers that negotiate ECN.
    pub web_ecn_on_count: usize,
    /// Servers dead from the start.
    pub always_down_count: usize,
    /// Servers leaving the pool at the batch boundary.
    pub churn_down_count: usize,
}

/// One built vantage point.
pub struct Vantage {
    /// Static spec (name, loss, traces).
    pub spec: crate::vantage::VantageSpec,
    /// The measurement host.
    pub node: NodeId,
    /// Stack handle driven by the prober.
    pub handle: HostHandle,
    /// The host's address.
    pub addr: Ipv4Addr,
}

/// One built pool server.
pub struct ServerInfo {
    /// The server's address (the measurement target).
    pub addr: Ipv4Addr,
    /// Ground-truth profile.
    pub profile: ServerProfile,
    /// Host node in the simulator.
    pub node: NodeId,
    /// Destination-AS index the server lives in.
    pub as_index: usize,
}

/// The assembled world.
pub struct Scenario {
    /// The simulator (run it!).
    pub sim: Sim,
    /// The 13 vantage points.
    pub vantages: Vec<Vantage>,
    /// The pool population in index order, shared with the owning
    /// blueprint (node ids are skeleton-deterministic, so one list serves
    /// every stamped world).
    pub servers: Arc<Vec<ServerInfo>>,
    /// Address of the pool DNS server.
    pub dns_addr: Ipv4Addr,
    /// Geolocation database (Table 1 / Figure 1), shared with the
    /// owning blueprint.
    pub geodb: Arc<GeoDb>,
    /// IP→AS database (§4.2 boundary analysis), shared with the owning
    /// blueprint.
    pub asdb: Arc<AsDb>,
    /// Planted ground truth, shared with the owning blueprint.
    pub truth: Arc<GroundTruth>,
    /// The plan that built this.
    pub plan: PoolPlan,
}

/// Build the full scenario: decide once, instantiate once.
///
/// Campaign engines that need many live worlds from one seed should hold
/// the [`crate::WorldBlueprint`] and call `instantiate` per world instead
/// of calling this repeatedly.
pub fn build_scenario(plan: &PoolPlan, seed: u64) -> Scenario {
    crate::blueprint::WorldBlueprint::build(plan, seed).instantiate()
}
