//! The thirteen measurement vantage points of paper §3: two homes, the
//! University of Glasgow (wired and wireless), and nine EC2 regions.

use ecn_geo::Region;
use ecn_netsim::{LossModel, Nanos};
use serde::{Deserialize, Serialize};

/// Which collection batch(es) a vantage participates in (§3: homes and
/// UGla wireless in April/May 2015; everything incl. EC2 in July/August).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceAllocation {
    /// Traces collected in the April/May batch.
    pub batch1: usize,
    /// Traces collected in the July/August batch.
    pub batch2: usize,
}

/// One vantage point.
#[derive(Debug, Clone)]
pub struct VantageSpec {
    /// Paper's display name (Table 2 spelling).
    pub name: &'static str,
    /// Stable key for labels/files.
    pub key: &'static str,
    /// Short name used in Figure 2/5 axis labels.
    pub short: &'static str,
    /// Region (places the vantage near a tier-1).
    pub region: Region,
    /// Third octet base for the vantage prefix (see `scenario::addressing`).
    pub net_index: u8,
    /// Is this an EC2 vantage (drawn from 54.0.0.0/8)?
    pub ec2: bool,
    /// Access-link loss model (the calibrated noise source).
    pub loss_up: LossModel,
    /// Loss on the downstream direction.
    pub loss_down: LossModel,
    /// Trace allocation across the two batches.
    pub traces: TraceAllocation,
}

/// All 13 vantages in Table 2 order, with calibrated loss models.
///
/// Calibration targets (Table 2 "Avg. unreachable UDP with ECT"):
/// Perkins 8, McQuistin 160, UGla wired 10, UGla wireless 43, EC2 10–16.
/// The McQuistin home runs an ECN-*biased* burst model — symmetric loss
/// cannot reproduce a large Fig 2a differential alongside the small
/// Fig 2b one, which is exactly the paper's TOS-sensitivity hypothesis.
pub fn all_vantages() -> Vec<VantageSpec> {
    let t = |b1, b2| TraceAllocation {
        batch1: b1,
        batch2: b2,
    };
    vec![
        VantageSpec {
            name: "Perkins home",
            key: "perkins-home",
            short: "Perkins\nhome",
            region: Region::Europe,
            net_index: 0,
            ec2: false,
            loss_up: LossModel::congested_access(0.003),
            loss_down: LossModel::congested_access(0.003),
            traces: t(15, 15),
        },
        VantageSpec {
            name: "McQuistin home",
            key: "mcquistin-home",
            short: "McQuistin\nhome",
            region: Region::Europe,
            net_index: 1,
            ec2: false,
            // Congested access with a TOS-reading shaper: bursts shed
            // ECT-marked packets far more aggressively than not-ECT.
            loss_up: LossModel::tos_biased_access(0.34, 0.50, 0.97),
            loss_down: LossModel::congested_access(0.006),
            traces: t(8, 5),
        },
        VantageSpec {
            name: "U. Glasgow wired",
            key: "uglasgow-wired",
            short: "UGla\nwired",
            region: Region::Europe,
            net_index: 2,
            ec2: false,
            loss_up: LossModel::congested_access(0.005),
            loss_down: LossModel::congested_access(0.005),
            traces: t(0, 22),
        },
        VantageSpec {
            name: "U. Glasgow w'less",
            key: "uglasgow-wireless",
            short: "UGla\nw'less",
            region: Region::Europe,
            net_index: 3,
            ec2: false,
            loss_up: LossModel::congested_access(0.12),
            loss_down: LossModel::congested_access(0.12),
            traces: t(14, 14),
        },
        ec2(
            "EC2 California",
            "ec2-california",
            "EC2\nCal",
            Region::NorthAmerica,
            4,
            0.005,
            t(0, 13),
        ),
        ec2(
            "EC2 Frankfurt",
            "ec2-frankfurt",
            "EC2\nFra",
            Region::Europe,
            5,
            0.012,
            t(0, 13),
        ),
        ec2(
            "EC2 Ireland",
            "ec2-ireland",
            "EC2\nIre",
            Region::Europe,
            6,
            0.0055,
            t(0, 13),
        ),
        ec2(
            "EC2 Oregon",
            "ec2-oregon",
            "EC2\nOre",
            Region::NorthAmerica,
            7,
            0.012,
            t(0, 13),
        ),
        ec2(
            "EC2 Sao Paulo",
            "ec2-sao-paulo",
            "EC2\nSao",
            Region::SouthAmerica,
            8,
            0.016,
            t(0, 13),
        ),
        ec2(
            "EC2 Singapore",
            "ec2-singapore",
            "EC2\nSin",
            Region::Asia,
            9,
            0.005,
            t(0, 13),
        ),
        ec2(
            "EC2 Sydney",
            "ec2-sydney",
            "EC2\nSyd",
            Region::Australia,
            10,
            0.0055,
            t(0, 13),
        ),
        ec2(
            "EC2 Tokyo",
            "ec2-tokyo",
            "EC2\nTok",
            Region::Asia,
            11,
            0.012,
            t(0, 13),
        ),
        ec2(
            "EC2 Virginia",
            "ec2-virginia",
            "EC2\nVir",
            Region::NorthAmerica,
            12,
            0.016,
            t(0, 13),
        ),
    ]
}

fn ec2(
    name: &'static str,
    key: &'static str,
    short: &'static str,
    region: Region,
    net_index: u8,
    loss: f64,
    traces: TraceAllocation,
) -> VantageSpec {
    VantageSpec {
        name,
        key,
        short,
        region,
        net_index,
        ec2: true,
        loss_up: LossModel::congested_access(loss),
        loss_down: LossModel::congested_access(loss),
        traces,
    }
}

/// Total traces across the campaign (paper: 210).
pub fn total_traces(vantages: &[VantageSpec]) -> usize {
    vantages
        .iter()
        .map(|v| v.traces.batch1 + v.traces.batch2)
        .sum()
}

/// The probe-retry schedule of §3: up to five retransmissions, one second
/// timeout each.
pub const UDP_RETRIES: u32 = 5;
/// Per-attempt timeout.
pub const UDP_TIMEOUT: Nanos = Nanos(1_000_000_000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_vantages_two_hundred_ten_traces() {
        let v = all_vantages();
        assert_eq!(v.len(), 13);
        assert_eq!(total_traces(&v), 210);
        assert_eq!(v.iter().filter(|x| x.ec2).count(), 9);
    }

    #[test]
    fn batch1_is_homes_and_wireless_only() {
        // §3: initial traces from the authors' homes and the UGla wireless.
        for v in all_vantages() {
            if v.traces.batch1 > 0 {
                assert!(
                    v.key.contains("home") || v.key.contains("wireless"),
                    "{} should not be in batch 1",
                    v.name
                );
                assert!(!v.ec2);
            }
        }
    }

    #[test]
    fn keys_and_net_indices_unique() {
        let v = all_vantages();
        let keys: std::collections::HashSet<_> = v.iter().map(|x| x.key).collect();
        assert_eq!(keys.len(), 13);
        let nets: std::collections::HashSet<_> = v.iter().map(|x| x.net_index).collect();
        assert_eq!(nets.len(), 13);
    }

    #[test]
    fn mcquistin_home_is_ecn_biased() {
        let v = all_vantages();
        let mcq = v.iter().find(|x| x.key == "mcquistin-home").unwrap();
        assert!(matches!(
            mcq.loss_up,
            LossModel::GilbertElliottEcnBiased { .. }
        ));
        // and it is the only one
        let biased = v
            .iter()
            .filter(|x| matches!(x.loss_up, LossModel::GilbertElliottEcnBiased { .. }))
            .count();
        assert_eq!(biased, 1);
    }
}
