//! # ecn-pool — population model and scenario builder
//!
//! Builds the world the measurement study probes: the ~2500-member NTP
//! pool with its co-located web servers, the AS-level topology connecting
//! them to the 13 vantage points of paper §3, and the planted ground truth
//! — ECT-dropping middleboxes, ECN-bleaching routers, volunteer churn and
//! flaps — whose *measured* shadow the campaign reproduces.
//!
//! Everything is seeded: [`scenario::build_scenario`] with the same plan
//! and seed yields the same Internet, packet for packet.
//!
//! Worlds are described declaratively by [`spec::ScenarioSpec`] (TOML or
//! JSON files; `scenarios/` in the repository root is the preset
//! library) and lowered to the imperative [`plan::PoolPlan`] that
//! [`blueprint::WorldBlueprint::build`] consumes.

#![warn(missing_docs)]

pub mod blueprint;
pub mod plan;
pub mod scenario;
pub mod spec;
pub mod vantage;

pub use blueprint::{generate_profiles, WorldBlueprint};
pub use plan::{PoolPlan, ServerProfile, SpecialBehaviour, WebProfile};
pub use scenario::{
    build_scenario, BleachSite, GroundTruth, Scenario, ServerInfo, Vantage, EC2_SUPER_PREFIX,
};
pub use spec::{
    LinkSpec, MiddleboxSpec, ObservabilitySpec, PopulationSpec, ResilienceSpec, ScenarioSpec,
    ScheduleProfile, ScheduleSpec, SpecError, TopologySpec, ValidatorSpec,
};
pub use vantage::{
    all_vantages, total_traces, TraceAllocation, VantageSpec, UDP_RETRIES, UDP_TIMEOUT,
};
