//! The ground-truth plan: every knob of the simulated Internet, with
//! defaults calibrated so the *measured* campaign results land near the
//! paper's headline numbers. EXPERIMENTS.md records the audit.

use ecn_netsim::Nanos;
use ecn_stack::EcnMode;
use ecn_wire::NtpPacket;
use serde::{Deserialize, Serialize};

// keep the import list honest: NtpPacket is only used in doc examples
#[allow(unused_imports)]
use ecn_wire as _;

/// Scenario-wide knobs. `PoolPlan::paper()` reproduces the paper's scale;
/// `PoolPlan::scaled(n)` shrinks everything proportionally for tests.
///
/// Plans are usually not written by hand: [`crate::ScenarioSpec`] is the
/// declarative front-end (TOML/JSON spec files, rate-based middlebox
/// deployment) and lowers to a `PoolPlan` via
/// [`crate::ScenarioSpec::plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolPlan {
    /// Number of NTP pool servers (paper: 2500).
    pub servers: usize,
    /// Destination (server-hosting) AS count (paper-derived: ~1200, giving
    /// 1400 total ASes with transit, as §4.2 reports).
    pub dest_as_count: usize,
    /// Tier-1 transit AS count (fully meshed core).
    pub t1_count: usize,
    /// Tier-2 (regional transit) AS count: 188 + 12 T1 + 1200 dest = 1400.
    pub t2_count: usize,

    /// Fraction of servers running a co-located web server.
    /// Calibrated: avg 1334 TCP-reachable of 2253 up ⇒ ~59.2% of all 2500.
    pub web_fraction: f64,
    /// Among web servers: fraction negotiating ECN (paper: 82.0% of
    /// TCP-reachable).
    pub web_ecn_on: f64,
    /// Among web servers: fraction with the broken reflect-flags stack.
    pub web_ecn_reflect: f64,

    /// Servers that never answer (volunteers gone, target list stale).
    pub always_down: usize,
    /// Servers that leave the pool between the April/May and July/August
    /// batches ("servers leaving the NTP pool between the two sets of
    /// measurements", §4.1).
    pub churn_down: usize,
    /// When the churned servers go dark (the campaign's batch-2 start).
    pub churn_at: Nanos,
    /// Fraction of live servers with short random outages.
    pub flapping_fraction: f64,
    /// Mean up-time between flaps.
    pub flap_mean_up: Nanos,
    /// Mean outage length.
    pub flap_mean_down: Nanos,

    /// Servers behind a middlebox that always drops ECT-marked UDP
    /// (persistently ECT-unreachable; Figure 3a's tall spikes: 9–14 seen).
    pub ect_blocked: usize,
    /// Servers whose ECT-dropping middlebox sits on one branch of an ECMP
    /// pair, so route churn sometimes bypasses it (§4.1's
    /// "high, but not 100%" differential reachability).
    pub ect_blocked_flaky: usize,
    /// Servers that drop **not-ECT** UDP from everywhere (Figure 3b: one).
    pub not_ect_blocked_global: usize,
    /// Servers that drop not-ECT UDP only from EC2 source ranges
    /// (Figure 3b: the two Phoenix Public Library servers).
    pub not_ect_blocked_ec2: usize,

    /// ECN-bleaching routers at provider-edge (customer-facing) positions:
    /// observed strip location is the customer border = AS boundary.
    pub bleach_pe: usize,
    /// Bleachers at dest-AS border routers (observed location interior).
    pub bleach_border: usize,
    /// Bleachers at dest-AS interior routers.
    pub bleach_interior: usize,
    /// Bleachers at per-server access routers (short red tails).
    pub bleach_access: usize,
    /// Probabilistic (sometimes-strip) bleachers at PE positions.
    pub bleach_prob_pe: usize,
    /// Probabilistic bleachers at access positions.
    pub bleach_prob_access: usize,
    /// Per-packet strip probability of the probabilistic bleachers.
    pub bleach_prob: f64,

    /// Destination ASes whose edge link runs a RED-style probabilistic
    /// CE marker (the modern-ECN scenario family; `0` = the paper's
    /// 2015 world, byte-identical to plans predating the knob).
    #[serde(default)]
    pub aqm_red: usize,
    /// Destination ASes whose edge link is a rate-limited bottleneck
    /// with a CoDel-style sojourn-threshold CE marker (L4S-flavoured).
    #[serde(default)]
    pub aqm_codel: usize,
    /// Per-markable-packet CE probability of the RED-style markers.
    #[serde(default)]
    pub aqm_red_prob: f64,
    /// Sojourn threshold of the CoDel-style markers.
    #[serde(default)]
    pub aqm_codel_target: Nanos,
    /// Serialisation rate of the CoDel-marked bottleneck links, bits/s
    /// (finite so probe trains actually build sojourn).
    #[serde(default)]
    pub aqm_rate_bps: u64,
    /// Destination ASes whose provider edge erases CE back to ECT(0)
    /// (a congestion-signal suppressor, caught by the validator's CE
    /// canary).
    #[serde(default)]
    pub ce_suppress: usize,
    /// Destination ASes whose provider edge rewrites ECT(1) to ECT(0)
    /// (L4S-hostile re-markers).
    #[serde(default)]
    pub ect1_downgrade: usize,

    /// Share of pool servers answering with the plain-OK page instead of
    /// the standard redirect.
    pub plain_ok_fraction: f64,

    /// Vantage points used, as a prefix of the Table 2 ordering
    /// (paper: all 13). See [`crate::all_vantages`].
    pub vantage_count: usize,
    /// Multiplier applied to every vantage access-link loss probability
    /// (`1.0` = the calibrated Table 2 noise, bit-identical to plans
    /// predating the knob).
    pub loss_scale: f64,
    /// Extra independent (Bernoulli) loss on every destination-side
    /// access-chain link (`0.0` = clean edges, the paper's world).
    pub edge_loss: f64,
    /// One-way delay of core (tier-1/tier-2) links.
    pub core_delay: Nanos,
    /// One-way delay of edge (access/leaf) links.
    pub edge_delay: Nanos,
}

impl PoolPlan {
    /// Full paper scale.
    pub fn paper() -> PoolPlan {
        PoolPlan {
            servers: 2500,
            dest_as_count: 1200,
            t1_count: 12,
            t2_count: 188,
            web_fraction: 0.60,
            web_ecn_on: 0.84,
            web_ecn_reflect: 0.01,
            always_down: 169,
            churn_down: 90,
            churn_at: Nanos::from_secs(86_400 * 60), // default; campaign overrides
            flapping_fraction: 0.6,
            flap_mean_up: Nanos::from_secs(2 * 3600),
            flap_mean_down: Nanos::from_secs(45),
            ect_blocked: 8,
            ect_blocked_flaky: 2,
            not_ect_blocked_global: 1,
            not_ect_blocked_ec2: 2,
            bleach_pe: 8,
            bleach_border: 1,
            bleach_interior: 1,
            bleach_access: 2,
            bleach_prob_pe: 1,
            bleach_prob_access: 2,
            bleach_prob: 0.5,
            aqm_red: 0,
            aqm_codel: 0,
            aqm_red_prob: 0.1,
            aqm_codel_target: Nanos(500_000), // 0.5 ms
            aqm_rate_bps: 1_000_000,          // 1 Mbit/s bottleneck
            ce_suppress: 0,
            ect1_downgrade: 0,
            plain_ok_fraction: 0.08,
            vantage_count: 13,
            loss_scale: 1.0,
            edge_loss: 0.0,
            core_delay: Nanos(8_000_000), // 8 ms
            edge_delay: Nanos(2_000_000), // 2 ms
        }
    }

    /// A proportionally shrunk plan for fast tests. Keeps at least one of
    /// each special behaviour so every code path stays exercised.
    pub fn scaled(servers: usize) -> PoolPlan {
        let f = servers as f64 / 2500.0;
        let scale = |n: usize| ((n as f64 * f).round() as usize).max(1);
        PoolPlan {
            servers,
            dest_as_count: (servers / 2).max(4),
            t1_count: 3,
            t2_count: ((188.0 * f) as usize).clamp(3, 188),
            always_down: ((169.0 * f) as usize).max(1),
            churn_down: ((90.0 * f) as usize).max(1),
            ect_blocked: scale(8).min(servers / 8).max(1),
            ect_blocked_flaky: 1,
            not_ect_blocked_global: 1,
            not_ect_blocked_ec2: 1,
            bleach_pe: scale(8).min(4),
            bleach_border: 1,
            bleach_interior: 1,
            bleach_access: 1,
            bleach_prob_pe: 1,
            bleach_prob_access: 1,
            ..PoolPlan::paper()
        }
    }

    /// Total ASes in the scenario (§4.2 reports 1400).
    pub fn total_as_count(&self) -> usize {
        self.t1_count + self.t2_count + self.dest_as_count
    }

    /// The vantage points this plan measures from: the first
    /// [`Self::vantage_count`] entries of the Table 2 ordering, with
    /// every access-link loss model scaled by [`Self::loss_scale`].
    ///
    /// With `vantage_count = 13` and `loss_scale = 1.0` (the paper
    /// defaults) this is exactly [`crate::all_vantages`], bit for bit.
    pub fn vantages(&self) -> Vec<crate::vantage::VantageSpec> {
        let mut specs = crate::vantage::all_vantages();
        let keep = self.vantage_count.clamp(1, specs.len());
        specs.truncate(keep);
        for spec in &mut specs {
            spec.loss_up = spec.loss_up.scaled(self.loss_scale);
            spec.loss_down = spec.loss_down.scaled(self.loss_scale);
        }
        specs
    }
}

/// Middlebox/oddity behaviour attached to one server's access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecialBehaviour {
    /// Nothing unusual.
    None,
    /// Access middlebox drops ECT-marked UDP. `flaky` = on one ECMP branch
    /// only.
    EctBlocked {
        /// Only one of two equal-cost branches carries the middlebox.
        flaky: bool,
    },
    /// Access middlebox drops not-ECT UDP. `ec2_only` = only for sources
    /// within 54.0.0.0/8 (the EC2 vantage super-prefix).
    NotEctBlocked {
        /// Restrict to EC2-sourced packets.
        ec2_only: bool,
    },
}

/// Web-server half of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebProfile {
    /// The server stack's ECN negotiation behaviour.
    pub ecn: EcnMode,
    /// Redirect or plain page.
    pub plain_ok: bool,
}

/// Everything true about one pool member.
#[derive(Debug, Clone)]
pub struct ServerProfile {
    /// Index in the population (stable across runs of the same seed).
    pub index: usize,
    /// Continental region (Table 1 marginals).
    pub region: ecn_geo::Region,
    /// Country code for DNS zones.
    pub country: String,
    /// Web server, if the volunteer runs one.
    pub web: Option<WebProfile>,
    /// Availability schedule.
    pub availability: ecn_stack::AvailabilityModel,
    /// Middlebox oddity on the access path.
    pub special: SpecialBehaviour,
    /// NTP stratum advertised.
    pub stratum: u8,
    /// Access-chain length in routers (1–4; calibrates §4.2 hop counts).
    pub access_chain_len: usize,
}

/// Sanity bound used in tests: a valid NTP response is at least this long.
pub const MIN_NTP_RESPONSE: usize = ecn_wire::NTP_PACKET_LEN;

/// Suppress the unused-import lint for the doc-only import above.
const _: fn(&[u8]) -> Result<NtpPacket, ecn_wire::WireError> = NtpPacket::decode;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_paper_counts() {
        let p = PoolPlan::paper();
        assert_eq!(p.servers, 2500);
        assert_eq!(p.total_as_count(), 1400);
        assert_eq!(p.ect_blocked + p.ect_blocked_flaky, 10);
        assert_eq!(p.not_ect_blocked_global + p.not_ect_blocked_ec2, 3);
    }

    #[test]
    fn scaled_plan_keeps_special_behaviours() {
        let p = PoolPlan::scaled(50);
        assert_eq!(p.servers, 50);
        assert!(p.ect_blocked >= 1);
        assert!(p.not_ect_blocked_global >= 1);
        assert!(p.always_down >= 1);
        assert!(p.dest_as_count >= 4);
        assert!(p.total_as_count() < 100);
    }

    #[test]
    fn default_vantage_selection_is_all_vantages() {
        let plan = PoolPlan::paper();
        let selected = plan.vantages();
        let all = crate::vantage::all_vantages();
        assert_eq!(selected.len(), all.len());
        for (s, a) in selected.iter().zip(&all) {
            assert_eq!(s.key, a.key);
            assert_eq!(
                s.loss_up, a.loss_up,
                "{}: loss_scale 1.0 is identity",
                s.key
            );
            assert_eq!(s.loss_down, a.loss_down);
        }
    }

    #[test]
    fn vantage_count_truncates_in_table2_order() {
        let plan = PoolPlan {
            vantage_count: 4,
            loss_scale: 2.0,
            ..PoolPlan::paper()
        };
        let v = plan.vantages();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].key, "perkins-home");
        assert_eq!(v[3].key, "uglasgow-wireless");
        assert!(v.iter().all(|s| !s.ec2), "first four are the non-EC2 set");
        // scaling applied
        let base = crate::vantage::all_vantages();
        assert!(v[0].loss_up.mean_loss() > base[0].loss_up.mean_loss() * 1.5);
    }

    #[test]
    fn scaled_special_counts_fit_population() {
        for n in [20, 50, 100, 400] {
            let p = PoolPlan::scaled(n);
            let special = p.ect_blocked
                + p.ect_blocked_flaky
                + p.not_ect_blocked_global
                + p.not_ect_blocked_ec2;
            assert!(
                special + p.always_down + p.churn_down < n,
                "plan for {n} over-allocates: {special} special"
            );
        }
    }
}
