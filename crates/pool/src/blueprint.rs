//! The blueprint/instantiate split behind scenario construction.
//!
//! [`WorldBlueprint::build`] performs every seeded *decision* — population
//! profiles, tier-2 region/provider assignment, destination-AS packing,
//! geolocation sampling, bleacher placement — exactly once, recording the
//! outcome as plain data, together with the simulator-independent products
//! (geo DB, AS DB, DNS zone, ground-truth addresses).
//! [`WorldBlueprint::instantiate`] then stamps out a live [`Scenario`]
//! without consuming any decision randomness, so N execution shards pay
//! one decision phase instead of N full world builds, and every
//! instantiation of the same blueprint is bit-identical.
//!
//! The decision phase consumes `derive_rng(seed, "scenario")` in exactly
//! the order the pre-split builder did, so `build_scenario` (the
//! `build(..).instantiate()` composition) still produces the same world,
//! packet for packet, for a given (plan, seed).
//!
//! Per-shard RNG domains: [`WorldBlueprint::instantiate_domain`] gives the
//! world's *packet* randomness its own stream derived from the seed and a
//! stable label (`ecn_netsim::Sim::with_domain`), so an execution engine
//! can give every work unit an independent stream whose identity depends
//! only on the unit label — never on shard count or scheduling order.

use crate::plan::{PoolPlan, ServerProfile, SpecialBehaviour};
use crate::scenario::{BleachSite, GroundTruth, Scenario, ServerInfo, Vantage, EC2_SUPER_PREFIX};
use crate::vantage::VantageSpec;
use ecn_asdb::AsDb;
use ecn_geo::{
    sample_country, sample_location, GeoDb, GeoRecord, Region, TABLE1_DISTRIBUTION, TABLE1_TOTAL,
};
use ecn_netsim::{
    derive_rng, derive_seed, EcnPolicy, Firewall, FirewallRule, Ipv4Prefix, LabelBuf, LinkProps,
    NodeId, RouteEntry, Router, Sim, SimConfig, SimSkeleton,
};
use ecn_services::{
    EcnEchoService, HttpServerKind, NtpServerConfig, NtpServerService, PoolDnsService,
    PoolHttpService, ECN_ECHO_PORT,
};
use ecn_stack::{install, AvailabilityModel, EcnMode, HostHandle, StackConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

// ---------------------------------------------------------------- addressing

fn t1_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(5, i as u8, 0, 1)
}
fn t1_prefix(i: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(5, i as u8, 0, 0), 16)
}
fn t2_core_addr(j: usize) -> Ipv4Addr {
    Ipv4Addr::new(62, j as u8, 0, 1)
}
fn t2_prefix(j: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(62, j as u8, 0, 0), 16)
}
fn t2_pe_addr(j: usize, customer: usize) -> Ipv4Addr {
    Ipv4Addr::new(62, j as u8, (1 + customer % 254) as u8, 1)
}
fn dest_base(k: usize) -> u32 {
    0x8000_0000 | ((k as u32) << 12)
}
fn dest_prefix(k: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::from(dest_base(k)), 20)
}
fn dest_router_addr(k: usize, slot: u32) -> Ipv4Addr {
    Ipv4Addr::from(dest_base(k) + slot)
}
fn vantage_prefix(spec: &VantageSpec) -> Ipv4Prefix {
    let first = if spec.ec2 { 54 } else { 81 };
    Ipv4Prefix::new(Ipv4Addr::new(first, spec.net_index, 0, 0), 16)
}
fn vantage_addr(spec: &VantageSpec, slot: u8) -> Ipv4Addr {
    let first = if spec.ec2 { 54 } else { 81 };
    Ipv4Addr::new(first, spec.net_index, 0, slot)
}

const DNS_ADDR: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const DNS_PREFIX_STR: &str = "198.41.0.0/24";

// ---------------------------------------------------------------- profiles

/// Generate the population (regions per Table 1 marginals, scaled).
pub fn generate_profiles(plan: &PoolPlan, rng: &mut SmallRng) -> Vec<ServerProfile> {
    let scale = plan.servers as f64 / TABLE1_TOTAL as f64;
    let mut regions: Vec<Region> = Vec::with_capacity(plan.servers);
    for (region, count) in TABLE1_DISTRIBUTION {
        let n = if (scale - 1.0).abs() < 1e-9 {
            count
        } else {
            ((count as f64) * scale).round() as usize
        };
        regions.extend(std::iter::repeat_n(region, n));
    }
    // rounding: trim or pad with Europe
    while regions.len() > plan.servers {
        let idx = regions
            .iter()
            .rposition(|r| *r == Region::Europe)
            .unwrap_or(regions.len() - 1);
        regions.remove(idx);
    }
    while regions.len() < plan.servers {
        regions.push(Region::Europe);
    }
    regions.shuffle(rng);

    let mut profiles: Vec<ServerProfile> = regions
        .into_iter()
        .enumerate()
        .map(|(index, region)| {
            let web = if rng.gen_bool(plan.web_fraction) {
                let ecn = if rng.gen_bool(plan.web_ecn_reflect) {
                    EcnMode::ReflectFlags
                } else if rng.gen_bool(plan.web_ecn_on) {
                    EcnMode::On
                } else {
                    EcnMode::Off
                };
                Some(crate::plan::WebProfile {
                    ecn,
                    plain_ok: rng.gen_bool(plan.plain_ok_fraction),
                })
            } else {
                None
            };
            let access_chain_len = *[1usize, 2, 2, 3, 3, 3, 3, 4, 4, 4]
                .choose(rng)
                .expect("non-empty");
            ServerProfile {
                index,
                region,
                country: sample_country(region, rng),
                web,
                availability: AvailabilityModel::AlwaysUp,
                special: SpecialBehaviour::None,
                stratum: *[1u8, 2, 2, 2, 3, 3].choose(rng).expect("non-empty"),
                access_chain_len,
            }
        })
        .collect();

    // Availability: always-down, churned, flapping; assigned to distinct
    // indices so special behaviours (below) can avoid dead hosts.
    let mut order: Vec<usize> = (0..plan.servers).collect();
    order.shuffle(rng);
    let mut cursor = 0;
    for _ in 0..plan.always_down.min(plan.servers / 3) {
        profiles[order[cursor]].availability = AvailabilityModel::AlwaysDown;
        cursor += 1;
    }
    for _ in 0..plan.churn_down.min(plan.servers / 3) {
        profiles[order[cursor]].availability = AvailabilityModel::DownAfter(plan.churn_at);
        cursor += 1;
    }
    for &idx in order.iter().skip(cursor) {
        if rng.gen_bool(plan.flapping_fraction) {
            profiles[idx].availability = AvailabilityModel::Flapping {
                mean_up: plan.flap_mean_up,
                mean_down: plan.flap_mean_down,
            };
        }
    }

    // Special behaviours go on always-up or flapping servers (the paper's
    // persistently-ECT-unreachable servers are otherwise healthy).
    let alive: Vec<usize> = order[cursor..].to_vec();
    let mut alive_iter = alive.into_iter();
    let mut take_alive = |profiles: &mut Vec<ServerProfile>| -> usize {
        let idx = alive_iter
            .next()
            .expect("population exhausted for special servers");
        // make the middleboxed servers steady so they show up persistently
        profiles[idx].availability = AvailabilityModel::AlwaysUp;
        idx
    };

    // ECT-blocked: web mix calibrated for Table 2 column 2 (~3 of the
    // blocked set are TCP-reachable but refuse ECN).
    let ect_total = plan.ect_blocked + plan.ect_blocked_flaky;
    for i in 0..ect_total {
        let idx = take_alive(&mut profiles);
        profiles[idx].special = SpecialBehaviour::EctBlocked {
            flaky: i < plan.ect_blocked_flaky,
        };
        profiles[idx].web = match i % 10 {
            0..=3 => Some(crate::plan::WebProfile {
                ecn: EcnMode::On,
                plain_ok: false,
            }),
            4..=6 => Some(crate::plan::WebProfile {
                ecn: EcnMode::Off,
                plain_ok: false,
            }),
            _ => None,
        };
    }
    for _ in 0..plan.not_ect_blocked_global {
        let idx = take_alive(&mut profiles);
        profiles[idx].special = SpecialBehaviour::NotEctBlocked { ec2_only: false };
    }
    for _ in 0..plan.not_ect_blocked_ec2 {
        let idx = take_alive(&mut profiles);
        profiles[idx].special = SpecialBehaviour::NotEctBlocked { ec2_only: true };
        // the paper's pair are Phoenix Public Library machines
        profiles[idx].region = Region::NorthAmerica;
        profiles[idx].country = "us".into();
    }
    profiles
}

// ---------------------------------------------------------------- blueprint

/// One destination AS, as decided by the blueprint phase.
#[derive(Debug, Clone)]
struct DestAsPlan {
    /// Providing tier-2 index.
    provider_t2: usize,
    /// Member profile indices in construction order.
    members: Vec<usize>,
}

/// One decided bleacher placement.
#[derive(Debug, Clone, Copy)]
struct BleachPlan {
    as_index: usize,
    site: BleachSite,
    prob: Option<f64>,
}

/// A modern-ECN middlebox flavour (the scenario family the validator is
/// tested against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModernBoxKind {
    /// RED-style probabilistic CE marker on the dest-AS edge link.
    AqmRed,
    /// CoDel-style sojourn-threshold CE marker on a rate-limited edge.
    AqmCodel,
    /// CE→ECT(0) suppressor at the provider edge.
    CeSuppress,
    /// ECT(1)→ECT(0) downgrader at the provider edge.
    Ect1Downgrade,
}

/// One decided modern-middlebox placement.
#[derive(Debug, Clone, Copy)]
struct ModernBoxPlan {
    as_index: usize,
    kind: ModernBoxKind,
}

/// The immutable world description: every seeded decision plus the
/// simulator-independent databases, built once per (plan, seed).
///
/// Cheap to share across threads (`&WorldBlueprint` is `Sync`); each call
/// to [`instantiate`](Self::instantiate) stamps out an identical live
/// world. The topology itself is *compiled once* at build time into a
/// [`SimSkeleton`] — router names, firewalls, and longest-prefix-match
/// forwarding tables are `Arc`-shared immutables — so per-world
/// instantiation only allocates genuinely per-world state: host stacks,
/// services, captures, and the domain RNG.
pub struct WorldBlueprint {
    /// The plan this blueprint realises (churn already applied).
    pub plan: PoolPlan,
    /// The experiment seed.
    pub seed: u64,
    /// The decided population, in index order.
    pub profiles: Vec<ServerProfile>,
    /// Per-server address, in profile index order.
    pub server_addrs: Vec<Ipv4Addr>,
    /// Geolocation database (Table 1 / Figure 1) — simulator-independent,
    /// shared by reference with every instantiated world.
    pub geodb: Arc<GeoDb>,
    /// IP→AS database (§4.2 boundary analysis) — simulator-independent,
    /// shared by reference with every instantiated world.
    pub asdb: Arc<AsDb>,
    /// The compiled topology every world is stamped from.
    skeleton: SimSkeleton,
    /// Vantage measurement-host node ids, in Table 2 order.
    vantage_hosts: Vec<NodeId>,
    /// The pool DNS host node.
    dns_host: NodeId,
    /// Complete ground truth (incl. skeleton bleach node ids), shared with
    /// every world.
    truth: Arc<GroundTruth>,
    /// The built server population (node ids are skeleton-deterministic),
    /// shared with every world.
    servers: Arc<Vec<ServerInfo>>,
    /// The pool DNS zone, shared with every instantiated world's DNS
    /// service.
    zone: Arc<HashMap<String, Vec<Ipv4Addr>>>,
    /// Exact element counts, for simulator pre-allocation.
    node_count: usize,
    link_count: usize,
}

impl WorldBlueprint {
    /// Run the decision phase: one pass over `derive_rng(seed, "scenario")`
    /// in the canonical draw order.
    pub fn build(plan: &PoolPlan, seed: u64) -> WorldBlueprint {
        let mut rng = derive_rng(seed, "scenario");
        let mut asdb = AsDb::new();
        let mut geodb = GeoDb::new();
        let mut truth = GroundTruth::default();

        let profiles = generate_profiles(plan, &mut rng);

        let t1_count = plan.t1_count.max(2);
        let t2_count = plan.t2_count.max(2);
        for i in 0..t1_count {
            asdb.insert(t1_prefix(i).addr(), 16, 100 + i as u32);
        }

        // --- tier-2 transits: region-weighted assignment ---------------------
        let region_weights: Vec<(Region, usize)> = TABLE1_DISTRIBUTION
            .iter()
            .filter(|(r, _)| *r != Region::Unknown)
            .map(|(r, n)| (*r, (*n).max(1)))
            .collect();
        let weight_total: usize = region_weights.iter().map(|(_, n)| n).sum();
        let mut t2_region = Vec::with_capacity(t2_count);
        let mut t2_primary_t1 = Vec::with_capacity(t2_count);
        for j in 0..t2_count {
            let mut pick = rng.gen_range(0..weight_total);
            let mut region = Region::Europe;
            for (r, w) in &region_weights {
                if pick < *w {
                    region = *r;
                    break;
                }
                pick -= w;
            }
            asdb.insert(t2_prefix(j).addr(), 16, 1000 + j as u32);
            t2_region.push(region);
            t2_primary_t1.push(rng.gen_range(0..t1_count));
        }
        let t2_by_region: BTreeMap<Region, Vec<usize>> = {
            let mut m: BTreeMap<Region, Vec<usize>> = BTreeMap::new();
            for (j, r) in t2_region.iter().enumerate() {
                m.entry(*r).or_default().push(j);
            }
            m
        };

        // --- vantage and DNS prefixes ----------------------------------------
        let specs = plan.vantages();
        for spec in &specs {
            asdb.insert(
                vantage_prefix(spec).addr(),
                16,
                30_000 + spec.net_index as u32,
            );
        }
        asdb.insert(Ipv4Addr::new(198, 41, 0, 0), 24, 100);

        // --- destination-AS packing + per-server decisions -------------------
        let mut by_region: BTreeMap<Region, Vec<usize>> = BTreeMap::new();
        for p in &profiles {
            by_region.entry(p.region).or_default().push(p.index);
        }
        let mut server_addrs = vec![Ipv4Addr::UNSPECIFIED; plan.servers];
        let mut dest_as: Vec<DestAsPlan> = Vec::new();
        // exact element counts for Sim pre-allocation
        let mut node_count = t1_count + t2_count + specs.len() * 4 + 1;
        let mut link_count = t1_count * (t1_count - 1) + t2_count * 2 + specs.len() * 8 + 2;

        for (region, mut members) in by_region {
            members.sort_unstable();
            members.shuffle(&mut rng);
            let lookup_region = if region == Region::Unknown {
                Region::Europe // unknown-geo servers still live somewhere
            } else {
                region
            };
            let t2_candidates = t2_by_region
                .get(&lookup_region)
                .cloned()
                .unwrap_or_else(|| (0..t2_count).collect());
            let mut i = 0;
            while i < members.len() {
                let size = *[1usize, 1, 2, 2, 2, 2, 3, 4]
                    .choose(&mut rng)
                    .expect("non-empty");
                let chunk: Vec<usize> = members[i..(i + size).min(members.len())].to_vec();
                i += chunk.len();
                let k = dest_as.len();
                asdb.insert(dest_prefix(k).addr(), 20, 20_000 + k as u32);
                let provider_t2 = t2_candidates[rng.gen_range(0..t2_candidates.len())];
                node_count += 5; // PE + B + I1 + I2 + I3
                link_count += 10;

                for (server_slot, &pidx) in (2048u32..).zip(chunk.iter()) {
                    let profile = &profiles[pidx];
                    let server_addr = dest_router_addr(k, server_slot);
                    server_addrs[pidx] = server_addr;
                    if profile.special == (SpecialBehaviour::EctBlocked { flaky: true }) {
                        node_count += 3; // host + two ECMP branch routers
                        link_count += 9;
                    } else {
                        node_count += 1 + profile.access_chain_len;
                        link_count += 2 * profile.access_chain_len + 2;
                    }

                    let (lat, lon) = sample_location(profile.region, &mut rng);
                    if profile.region != Region::Unknown {
                        geodb.insert(
                            server_addr,
                            GeoRecord {
                                region: profile.region,
                                country: profile.country.clone(),
                                lat,
                                lon,
                            },
                        );
                    }
                    match profile.special {
                        SpecialBehaviour::EctBlocked { flaky: true } => {
                            truth.ect_blocked_flaky.push(server_addr)
                        }
                        SpecialBehaviour::EctBlocked { flaky: false } => {
                            truth.ect_blocked.push(server_addr)
                        }
                        SpecialBehaviour::NotEctBlocked { ec2_only: false } => {
                            truth.not_ect_blocked.push(server_addr)
                        }
                        SpecialBehaviour::NotEctBlocked { ec2_only: true } => {
                            truth.not_ect_blocked_ec2.push(server_addr)
                        }
                        SpecialBehaviour::None => {}
                    }
                    if profile.web.is_some() {
                        truth.web_server_count += 1;
                        if profile.web.as_ref().map(|w| w.ecn) == Some(EcnMode::On) {
                            truth.web_ecn_on_count += 1;
                        }
                    }
                    match profile.availability {
                        AvailabilityModel::AlwaysDown => truth.always_down_count += 1,
                        AvailabilityModel::DownAfter(_) => truth.churn_down_count += 1,
                        _ => {}
                    }
                }
                dest_as.push(DestAsPlan {
                    provider_t2,
                    members: chunk,
                });
            }
        }
        truth.dest_as_count = dest_as.len();

        // --- bleacher placement ----------------------------------------------
        // Per-AS access-chain lengths as `instantiate` will build them:
        // flaky-ECMP servers get a single-router filtered branch.
        let chain_lens: Vec<Vec<usize>> = dest_as
            .iter()
            .map(|d| {
                d.members
                    .iter()
                    .map(|&p| {
                        if profiles[p].special == (SpecialBehaviour::EctBlocked { flaky: true }) {
                            1
                        } else {
                            profiles[p].access_chain_len
                        }
                    })
                    .collect()
            })
            .collect();
        let has_special: Vec<bool> = dest_as
            .iter()
            .map(|d| {
                d.members
                    .iter()
                    .any(|&p| profiles[p].special != SpecialBehaviour::None)
            })
            .collect();
        let mut candidate_as: Vec<usize> =
            (0..dest_as.len()).filter(|&k| !has_special[k]).collect();
        candidate_as.shuffle(&mut rng);
        let mut next_as = candidate_as.into_iter();
        let mut bleachers: Vec<BleachPlan> = Vec::new();
        let mut place = |site: BleachSite, prob: Option<f64>, bleachers: &mut Vec<BleachPlan>| {
            for k in &mut next_as {
                // access sites need a chain of length >= 2 so a red tail
                // exists; unsuitable candidates are consumed, not recycled
                if site == BleachSite::Access && !chain_lens[k].iter().any(|&l| l >= 2) {
                    continue;
                }
                bleachers.push(BleachPlan {
                    as_index: k,
                    site,
                    prob,
                });
                return;
            }
            panic!("ran out of candidate ASes for bleacher placement");
        };
        for _ in 0..plan.bleach_pe {
            place(BleachSite::ProviderEdge, None, &mut bleachers);
        }
        for _ in 0..plan.bleach_border {
            place(BleachSite::Border, None, &mut bleachers);
        }
        for _ in 0..plan.bleach_interior {
            place(BleachSite::Interior, None, &mut bleachers);
        }
        for _ in 0..plan.bleach_access {
            place(BleachSite::Access, None, &mut bleachers);
        }
        for _ in 0..plan.bleach_prob_pe {
            place(
                BleachSite::ProviderEdge,
                Some(plan.bleach_prob),
                &mut bleachers,
            );
        }
        for _ in 0..plan.bleach_prob_access {
            place(BleachSite::Access, Some(plan.bleach_prob), &mut bleachers);
        }

        // --- modern-middlebox placement ---------------------------------------
        // Continues consuming the same shuffled candidate iterator, so each
        // AS hosts at most one planted behaviour and zero-count plans draw
        // no extra randomness (byte-identical to pre-AQM worlds).
        let mut modern: Vec<ModernBoxPlan> = Vec::new();
        {
            let mut place_modern = |kind: ModernBoxKind, modern: &mut Vec<ModernBoxPlan>| {
                let k = next_as
                    .next()
                    .expect("ran out of candidate ASes for modern middlebox placement");
                modern.push(ModernBoxPlan { as_index: k, kind });
            };
            for _ in 0..plan.aqm_red {
                place_modern(ModernBoxKind::AqmRed, &mut modern);
            }
            for _ in 0..plan.aqm_codel {
                place_modern(ModernBoxKind::AqmCodel, &mut modern);
            }
            for _ in 0..plan.ce_suppress {
                place_modern(ModernBoxKind::CeSuppress, &mut modern);
            }
            for _ in 0..plan.ect1_downgrade {
                place_modern(ModernBoxKind::Ect1Downgrade, &mut modern);
            }
        }

        // --- per-server ground-truth classes ----------------------------------
        // The confusion-matrix join needs each planted behaviour as the set
        // of server *addresses* it affects. PE/Border/Interior boxes cover
        // every member of their AS; an Access bleacher covers the first
        // member with a chain long enough to host it (the same member the
        // wiring below picks).
        for bp in &bleachers {
            let das = &dest_as[bp.as_index];
            let affected: Vec<Ipv4Addr> = if bp.site == BleachSite::Access {
                let i = chain_lens[bp.as_index]
                    .iter()
                    .position(|&l| l >= 2)
                    .expect("validated during placement");
                vec![server_addrs[das.members[i]]]
            } else {
                das.members.iter().map(|&p| server_addrs[p]).collect()
            };
            match bp.prob {
                None => truth.bleached_servers.extend(affected),
                Some(_) => truth.bleached_sometimes_servers.extend(affected),
            }
        }
        for mp in &modern {
            let addrs = dest_as[mp.as_index]
                .members
                .iter()
                .map(|&p| server_addrs[p]);
            match mp.kind {
                ModernBoxKind::AqmRed => truth.aqm_red_servers.extend(addrs),
                ModernBoxKind::AqmCodel => truth.aqm_codel_servers.extend(addrs),
                ModernBoxKind::CeSuppress => truth.ce_suppressed_servers.extend(addrs),
                ModernBoxKind::Ect1Downgrade => truth.ect1_downgraded_servers.extend(addrs),
            }
        }

        // --- DNS zone ---------------------------------------------------------
        let mut zone: HashMap<String, Vec<Ipv4Addr>> = HashMap::new();
        let all_addrs: Vec<Ipv4Addr> = server_addrs.clone();
        zone.insert("pool.ntp.org".into(), all_addrs.clone());
        for i in 0..4 {
            zone.insert(format!("{i}.pool.ntp.org"), all_addrs.clone());
        }
        for (pidx, profile) in profiles.iter().enumerate() {
            if let Some(zone_name) = ecn_geo::region_zone(profile.region) {
                zone.entry(format!("{zone_name}.pool.ntp.org"))
                    .or_default()
                    .push(server_addrs[pidx]);
            }
            if !profile.country.is_empty() {
                zone.entry(format!("{}.pool.ntp.org", profile.country))
                    .or_default()
                    .push(server_addrs[pidx]);
            }
        }

        // --- compile the topology once ---------------------------------------
        // Replay the decisions into a construction simulator, freeze it
        // into the Arc-shared skeleton, and record everything node-id
        // dependent (bleach truth, server node ids) while we're at it.
        let decisions = Decisions {
            plan,
            profiles: &profiles,
            server_addrs: &server_addrs,
            t2_primary_t1: &t2_primary_t1,
            dest_as: &dest_as,
            bleachers: &bleachers,
            modern: &modern,
        };
        let topo = compile_topology(&decisions, node_count, link_count, &mut truth);
        let servers: Vec<ServerInfo> = {
            let mut as_index = vec![0usize; plan.servers];
            for (k, d) in dest_as.iter().enumerate() {
                for &pidx in &d.members {
                    as_index[pidx] = k;
                }
            }
            profiles
                .iter()
                .enumerate()
                .map(|(pidx, profile)| ServerInfo {
                    addr: server_addrs[pidx],
                    profile: profile.clone(),
                    node: topo.server_hosts[pidx],
                    as_index: as_index[pidx],
                })
                .collect()
        };

        WorldBlueprint {
            plan: plan.clone(),
            seed,
            profiles,
            server_addrs,
            geodb: Arc::new(geodb),
            asdb: Arc::new(asdb),
            skeleton: topo.sim.freeze(),
            vantage_hosts: topo.vantage_hosts,
            dns_host: topo.dns_host,
            truth: Arc::new(truth),
            servers: Arc::new(servers),
            zone: Arc::new(zone),
            node_count,
            link_count,
        }
    }

    /// Destination ASes this blueprint decided on.
    pub fn dest_as_count(&self) -> usize {
        self.truth.dest_as_count
    }

    /// Exact node count of every instantiated world.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Exact link count of every instantiated world.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Instantiate the canonical world: packet randomness on the root
    /// stream, exactly as `build_scenario` always produced.
    pub fn instantiate(&self) -> Scenario {
        self.instantiate_config(SimConfig {
            seed: self.seed,
            ..SimConfig::default()
        })
    }

    /// Instantiate a world whose packet randomness lives in its own
    /// domain derived from the seed and `domain`. The topology, stacks,
    /// services, flap schedules and ground truth are identical to
    /// [`instantiate`](Self::instantiate); only per-packet noise (loss,
    /// probabilistic firewalls/bleachers, queue marking) differs — and
    /// depends only on the label, never on how many sibling worlds exist.
    pub fn instantiate_domain(&self, domain: &str) -> Scenario {
        self.instantiate_config(SimConfig {
            seed: derive_seed(self.seed, domain),
            ..SimConfig::default()
        })
    }

    /// Instantiate the world for engine unit `(vantage, chunk)`: the
    /// packet-RNG domain label `engine/unit/v{vantage}/c{chunk}` is
    /// formatted on the stack (same bytes, same seed, no allocation).
    pub fn instantiate_unit(&self, vantage: usize, chunk: usize) -> Scenario {
        let label = LabelBuf::format(format_args!("engine/unit/v{vantage}/c{chunk}"));
        self.instantiate_domain(label.as_str())
    }

    /// [`instantiate_unit`](Self::instantiate_unit), but install server
    /// stacks only on the hosts in `probed` (the unit's target chunk).
    ///
    /// A unit world only ever exchanges packets with its own chunk's
    /// targets, and installing a stack is side-effect-free (no events
    /// scheduled, no shared RNG consumed; availability is evaluated
    /// on demand) — so skipping the other stacks is invisible to every
    /// probe while cutting per-unit stamp cost from O(servers) to
    /// O(servers/chunks). At megapool scale this is the difference
    /// between instantiation dominating the campaign and vanishing from
    /// its profile; `tests/determinism.rs` and the goldens pin the
    /// byte-identity.
    pub fn instantiate_unit_scoped(
        &self,
        vantage: usize,
        chunk: usize,
        probed: &HashSet<Ipv4Addr>,
    ) -> Scenario {
        let label = LabelBuf::format(format_args!("engine/unit/v{vantage}/c{chunk}"));
        self.instantiate_scoped(
            SimConfig {
                seed: derive_seed(self.seed, label.as_str()),
                ..SimConfig::default()
            },
            Some(probed),
        )
    }

    /// The per-world construction phase: stamp a simulator from the
    /// skeleton and install what is genuinely per-world — host stacks,
    /// services, and the vantage handles.
    fn instantiate_config(&self, config: SimConfig) -> Scenario {
        self.instantiate_scoped(config, None)
    }

    fn instantiate_scoped(
        &self,
        config: SimConfig,
        probed: Option<&HashSet<Ipv4Addr>>,
    ) -> Scenario {
        let seed = self.seed;
        let mut sim = self.skeleton.instantiate(config);
        sim.reserve_events(256);

        let specs = self.plan.vantages();
        let mut vantages = Vec::with_capacity(specs.len());
        for (vi, spec) in specs.into_iter().enumerate() {
            let node = self.vantage_hosts[vi];
            let addr = sim.addr_of(node);
            let handle = install(
                &mut sim,
                node,
                StackConfig {
                    udp_port_unreachable: true,
                    seed: seed ^ (vi as u64) << 32,
                    ..StackConfig::default()
                },
            );
            vantages.push(Vantage {
                spec,
                node,
                handle,
                addr,
            });
        }

        for info in self.servers.iter() {
            if let Some(probed) = probed {
                if !probed.contains(&info.addr) {
                    continue;
                }
            }
            let profile = &info.profile;
            let handle = install(
                &mut sim,
                info.node,
                StackConfig {
                    udp_port_unreachable: false,
                    tcp_rst_on_closed: true,
                    echo_replies: true,
                    availability: profile.availability,
                    seed: seed ^ 0x5e17_0000 ^ profile.index as u64,
                },
            );
            handle.register_udp_service(
                123,
                Box::new(NtpServerService::new(NtpServerConfig {
                    stratum: profile.stratum,
                    reference_id: *b"POOL",
                    kod: None,
                })),
            );
            // ECN-validation feedback responder: registration is inert
            // (no events, no RNG, keyed lookup), so every world carries
            // it without disturbing pre-validator byte streams.
            handle.register_udp_service(ECN_ECHO_PORT, Box::new(EcnEchoService));
            if let Some(web) = &profile.web {
                let kind = if web.plain_ok {
                    HttpServerKind::PlainOk
                } else {
                    HttpServerKind::PoolRedirect
                };
                handle.register_tcp_listener(
                    80,
                    web.ecn,
                    Some(Box::new(PoolHttpService::new(kind))),
                );
            }
        }

        let dns_handle: HostHandle = install(
            &mut sim,
            self.dns_host,
            StackConfig {
                seed: seed ^ 0xd15,
                ..StackConfig::default()
            },
        );
        dns_handle
            .register_udp_service(53, Box::new(PoolDnsService::new_shared(self.zone.clone())));

        Scenario {
            sim,
            vantages,
            servers: self.servers.clone(),
            dns_addr: DNS_ADDR,
            geodb: self.geodb.clone(),
            asdb: self.asdb.clone(),
            truth: self.truth.clone(),
            plan: self.plan.clone(),
        }
    }
}

/// The decision-phase outputs `compile_topology` replays.
struct Decisions<'a> {
    plan: &'a PoolPlan,
    profiles: &'a [ServerProfile],
    server_addrs: &'a [Ipv4Addr],
    t2_primary_t1: &'a [usize],
    dest_as: &'a [DestAsPlan],
    bleachers: &'a [BleachPlan],
    modern: &'a [ModernBoxPlan],
}

/// What topology compilation yields besides the simulator itself.
struct CompiledTopology {
    sim: Sim,
    vantage_hosts: Vec<NodeId>,
    dns_host: NodeId,
    /// Server host node id per profile index.
    server_hosts: Vec<NodeId>,
}

/// The RNG-free topology phase, run **once** per blueprint: replay the
/// recorded decisions into a construction simulator (routers with their
/// compiled forwarding tables, links, firewalls, bleachers), completing
/// `truth` with the node-id-dependent bleach entries. Host stacks and
/// services are *not* installed here — they are per-world state.
fn compile_topology(
    d: &Decisions<'_>,
    node_count: usize,
    link_count: usize,
    truth: &mut GroundTruth,
) -> CompiledTopology {
    let plan = d.plan;
    let mut sim = Sim::new(0); // construction only; never runs an event
    let core_delay = plan.core_delay;
    let edge_delay = plan.edge_delay;
    // destination access-chain links carry the plan's extra edge loss
    // (0.0 = clean, byte-identical to plans predating the knob)
    let access_props = if plan.edge_loss > 0.0 {
        LinkProps::lossy(edge_delay, plan.edge_loss)
    } else {
        LinkProps::clean(edge_delay)
    };

    sim.reserve(node_count, link_count);

    // --- tier-1 mesh -----------------------------------------------------
    let t1_count = plan.t1_count.max(2);
    let mut t1_nodes = Vec::with_capacity(t1_count);
    for i in 0..t1_count {
        let node = sim.add_router(Router::new(format!("t1-{i}"), t1_addr(i), 100 + i as u32));
        t1_nodes.push(node);
    }
    // full mesh peer links: peer[i][j] = link i->j
    let mut t1_peer: HashMap<(usize, usize), ecn_netsim::LinkId> = HashMap::new();
    for i in 0..t1_count {
        for j in (i + 1)..t1_count {
            let (ij, ji) = sim.add_duplex(t1_nodes[i], t1_nodes[j], LinkProps::clean(core_delay));
            t1_peer.insert((i, j), ij);
            t1_peer.insert((j, i), ji);
        }
    }

    // --- tier-2 transits ---------------------------------------------------
    let t2_count = plan.t2_count.max(2);
    let default_route: Ipv4Prefix = "0.0.0.0/0".parse().expect("prefix");
    let mut t2_nodes = Vec::with_capacity(t2_count);
    let mut t1_downlink = Vec::with_capacity(t2_count); // T1 -> core
    for j in 0..t2_count {
        let asn = 1000 + j as u32;
        let node = sim.add_router(Router::new(format!("t2-{j}"), t2_core_addr(j), asn));
        let primary = d.t2_primary_t1[j];
        let (up, down) = sim.add_duplex(node, t1_nodes[primary], LinkProps::clean(core_delay));
        sim.route(node, default_route, RouteEntry::Link(up));
        t2_nodes.push(node);
        t1_downlink.push(down);
    }

    // --- vantages ----------------------------------------------------------
    let specs = plan.vantages();
    let mut vantage_hosts = Vec::with_capacity(specs.len());
    let mut vantage_routes: Vec<(Ipv4Prefix, usize, ecn_netsim::LinkId)> = Vec::new();
    for (vi, spec) in specs.iter().enumerate() {
        let asn = 30_000 + spec.net_index as u32;
        let prefix = vantage_prefix(spec);
        let cpe = sim.add_router(Router::new(
            format!("{}-cpe", spec.key),
            vantage_addr(spec, 1),
            asn,
        ));
        let isp_a = sim.add_router(Router::new(
            format!("{}-isp-a", spec.key),
            vantage_addr(spec, 2),
            asn,
        ));
        let isp_b = sim.add_router(Router::new(
            format!("{}-isp-b", spec.key),
            vantage_addr(spec, 3),
            asn,
        ));
        let host_addr = vantage_addr(spec, 100);
        let host = sim.add_host(format!("{}-host", spec.key), host_addr);

        // access link carries the calibrated loss models
        let up_props = LinkProps {
            delay: edge_delay,
            rate_bps: None,
            queue: ecn_netsim::QueueDisc::deep_fifo(),
            loss: spec.loss_up,
        };
        let down_props = LinkProps {
            loss: spec.loss_down,
            ..up_props
        };
        let up = sim.add_link(host, cpe, up_props);
        let down = sim.add_link(cpe, host, down_props);
        sim.set_uplink(host, up);
        sim.route(cpe, Ipv4Prefix::host(host_addr), RouteEntry::Link(down));

        let (c_up, a_down) = sim.add_duplex(cpe, isp_a, LinkProps::clean(edge_delay));
        let (a_up, b_down) = sim.add_duplex(isp_a, isp_b, LinkProps::clean(edge_delay));
        // pick a T1 for this region (deterministic spread)
        let t1_index = (spec.net_index as usize * 5 + vi) % t1_count;
        let (b_up, t1_down) =
            sim.add_duplex(isp_b, t1_nodes[t1_index], LinkProps::clean(core_delay));
        sim.route(cpe, default_route, RouteEntry::Link(c_up));
        sim.route(isp_a, default_route, RouteEntry::Link(a_up));
        sim.route(isp_a, prefix, RouteEntry::Link(a_down));
        sim.route(isp_b, default_route, RouteEntry::Link(b_up));
        sim.route(isp_b, prefix, RouteEntry::Link(b_down));
        vantage_routes.push((prefix, t1_index, t1_down));
        vantage_hosts.push(host);
    }

    // --- DNS host ----------------------------------------------------------
    let dns_router = t1_nodes[0];
    let dns_host = sim.add_host("pool-dns", DNS_ADDR);
    sim.attach_host(dns_host, dns_router, LinkProps::clean(edge_delay));

    // --- destination ASes with servers --------------------------------------
    let ec2_prefix: Ipv4Prefix = EC2_SUPER_PREFIX.parse().expect("prefix");
    let mut server_hosts: Vec<NodeId> = vec![NodeId(u32::MAX); plan.servers];
    // per-AS bookkeeping for bleach placement
    struct DestAsNodes {
        pe: NodeId,
        border: NodeId,
        i2: NodeId,
        /// (first access router, chain length) per server
        access_heads: Vec<(NodeId, usize)>,
    }
    let mut dest_nodes: Vec<DestAsNodes> = Vec::with_capacity(d.dest_as.len());
    let mut t1_leaf_routes: Vec<(Ipv4Prefix, usize)> = Vec::with_capacity(d.dest_as.len());
    let mut t2_customer_count = vec![0usize; t2_count];
    let mut modern_kind: Vec<Option<ModernBoxKind>> = vec![None; d.dest_as.len()];
    for mp in d.modern {
        modern_kind[mp.as_index] = Some(mp.kind);
    }

    for (k, das) in d.dest_as.iter().enumerate() {
        let asn = 20_000 + k as u32;
        let prefix = dest_prefix(k);
        let j = das.provider_t2;
        let customer = t2_customer_count[j];
        t2_customer_count[j] += 1;
        let t2_asn = 1000 + j as u32;

        // routers: PE (provider AS) + B + I1 + I2 + I3
        let pe = sim.add_router(Router::new(
            format!("pe-{j}-{customer}"),
            t2_pe_addr(j, customer),
            t2_asn,
        ));
        let b = sim.add_router(Router::new(
            format!("d{k}-border"),
            dest_router_addr(k, 1),
            asn,
        ));
        let i1 = sim.add_router(Router::new(format!("d{k}-i1"), dest_router_addr(k, 2), asn));
        let i2 = sim.add_router(Router::new(format!("d{k}-i2"), dest_router_addr(k, 3), asn));
        let i3 = sim.add_router(Router::new(format!("d{k}-i3"), dest_router_addr(k, 4), asn));

        let (t2_to_pe, pe_to_t2) = sim.add_duplex(t2_nodes[j], pe, LinkProps::clean(edge_delay));
        // An AQM-marking AS runs its marker on the inbound PE→border edge
        // (the direction probe traffic travels); the return edge stays
        // clean. Same link count either way, so capacity hints are exact.
        let pe_b_down_props = match modern_kind[k] {
            Some(ModernBoxKind::AqmRed) => LinkProps {
                queue: ecn_netsim::QueueDisc::aqm_mark(plan.aqm_red_prob),
                ..LinkProps::clean(edge_delay)
            },
            Some(ModernBoxKind::AqmCodel) => LinkProps {
                rate_bps: Some(plan.aqm_rate_bps),
                queue: ecn_netsim::QueueDisc::l4s_mark(plan.aqm_codel_target),
                ..LinkProps::clean(edge_delay)
            },
            _ => LinkProps::clean(edge_delay),
        };
        let pe_to_b = sim.add_link(pe, b, pe_b_down_props);
        let b_to_pe = sim.add_link(b, pe, LinkProps::clean(edge_delay));
        let (b_to_i1, i1_to_b) = sim.add_duplex(b, i1, LinkProps::clean(edge_delay));
        let (i1_to_i2, i2_to_i1) = sim.add_duplex(i1, i2, LinkProps::clean(edge_delay));
        let (i2_to_i3, i3_to_i2) = sim.add_duplex(i2, i3, LinkProps::clean(edge_delay));

        sim.route(t2_nodes[j], prefix, RouteEntry::Link(t2_to_pe));
        sim.route(pe, default_route, RouteEntry::Link(pe_to_t2));
        sim.route(pe, prefix, RouteEntry::Link(pe_to_b));
        sim.route(b, default_route, RouteEntry::Link(b_to_pe));
        sim.route(b, prefix, RouteEntry::Link(b_to_i1));
        sim.route(i1, default_route, RouteEntry::Link(i1_to_b));
        sim.route(i1, prefix, RouteEntry::Link(i1_to_i2));
        sim.route(i2, default_route, RouteEntry::Link(i2_to_i1));
        sim.route(i2, prefix, RouteEntry::Link(i2_to_i3));
        sim.route(i3, default_route, RouteEntry::Link(i3_to_i2));
        t1_leaf_routes.push((prefix, j));

        let mut info = DestAsNodes {
            pe,
            border: b,
            i2,
            access_heads: Vec::new(),
        };

        // servers
        let mut access_slot = 16u32;
        for (server_slot, (s_in_as, &pidx)) in (2048u32..).zip(das.members.iter().enumerate()) {
            let profile = &d.profiles[pidx];
            let server_addr = dest_router_addr(k, server_slot);
            debug_assert_eq!(server_addr, d.server_addrs[pidx]);
            let host = sim.add_host(format!("srv-{pidx}"), server_addr);

            let flaky_ect = profile.special == SpecialBehaviour::EctBlocked { flaky: true };
            if flaky_ect {
                // two parallel single-router branches; only one filtered
                let a_fw = sim.add_router(Router::new(
                    format!("d{k}-s{s_in_as}-fw"),
                    dest_router_addr(k, access_slot),
                    asn,
                ));
                let a_clean = sim.add_router(Router::new(
                    format!("d{k}-s{s_in_as}-alt"),
                    dest_router_addr(k, access_slot + 1),
                    asn,
                ));
                access_slot += 2;
                sim.set_firewall(a_fw, Firewall::single(FirewallRule::drop_ect_udp()));
                let (fw_up, _fw_down_i3) = sim.add_duplex(a_fw, i3, access_props);
                let (cl_up, _cl_down_i3) = sim.add_duplex(a_clean, i3, access_props);
                sim.route(a_fw, default_route, RouteEntry::Link(fw_up));
                sim.route(a_clean, default_route, RouteEntry::Link(cl_up));
                // host attaches to the firewalled branch; extra
                // delivery link from the clean branch
                sim.attach_host(host, a_fw, access_props);
                let clean_down = sim.add_link(a_clean, host, access_props);
                sim.route(
                    a_clean,
                    Ipv4Prefix::host(server_addr),
                    RouteEntry::Link(clean_down),
                );
                // ECMP at I3: epoch-hashed branch choice
                let to_fw = sim.add_link(i3, a_fw, access_props);
                let to_clean = sim.add_link(i3, a_clean, access_props);
                sim.route(
                    i3,
                    Ipv4Prefix::host(server_addr),
                    RouteEntry::Ecmp(vec![to_fw, to_clean]),
                );
                info.access_heads.push((a_fw, 1));
            } else {
                // linear access chain of profile.access_chain_len routers
                let mut chain = Vec::new();
                for c in 0..profile.access_chain_len {
                    let r = sim.add_router(Router::new(
                        format!("d{k}-s{s_in_as}-a{c}"),
                        dest_router_addr(k, access_slot),
                        asn,
                    ));
                    access_slot += 1;
                    chain.push(r);
                }
                // wire i3 -> chain[0] -> ... -> host
                let mut prev = i3;
                for &r in &chain {
                    let (down, up) = sim.add_duplex(prev, r, access_props);
                    sim.route(prev, Ipv4Prefix::host(server_addr), RouteEntry::Link(down));
                    sim.route(r, default_route, RouteEntry::Link(up));
                    prev = r;
                }
                sim.attach_host(host, prev, access_props);
                // firewall on the last access router for special servers
                let last = prev;
                match profile.special {
                    SpecialBehaviour::EctBlocked { flaky: false } => {
                        sim.set_firewall(last, Firewall::single(FirewallRule::drop_ect_udp()));
                    }
                    SpecialBehaviour::NotEctBlocked { ec2_only: false } => {
                        sim.set_firewall(last, Firewall::single(FirewallRule::drop_not_ect_udp()));
                    }
                    SpecialBehaviour::NotEctBlocked { ec2_only: true } => {
                        sim.set_firewall(
                            last,
                            Firewall::single(
                                FirewallRule::drop_not_ect_udp().from_sources(ec2_prefix),
                            ),
                        );
                    }
                    _ => {}
                }
                info.access_heads.push((chain[0], chain.len()));
            }

            server_hosts[pidx] = host;
        }
        dest_nodes.push(info);
    }

    // --- T1 full tables -----------------------------------------------------
    // `t1_leaf_routes` records (dest prefix, serving T2 index): the owning
    // T1 routes down its T2 link; every other T1 routes across the mesh to
    // the owner.
    for (i, &t1) in t1_nodes.iter().enumerate() {
        for (prefix, j) in &t1_leaf_routes {
            let owner = d.t2_primary_t1[*j];
            let entry = if owner == i {
                RouteEntry::Link(t1_downlink[*j])
            } else {
                RouteEntry::Link(t1_peer[&(i, owner)])
            };
            sim.route(t1, *prefix, entry);
        }
        for (prefix, t1_index, down) in &vantage_routes {
            if *t1_index == i {
                sim.route(t1, *prefix, RouteEntry::Link(*down));
            } else {
                sim.route(t1, *prefix, RouteEntry::Link(t1_peer[&(i, *t1_index)]));
            }
        }
        let dns_prefix: Ipv4Prefix = DNS_PREFIX_STR.parse().expect("prefix");
        if i != 0 {
            sim.route(t1, dns_prefix, RouteEntry::Link(t1_peer[&(i, 0)]));
        }
    }

    // --- wire ground-truth bleachers -----------------------------------------
    for bp in d.bleachers {
        let info = &dest_nodes[bp.as_index];
        let node = match bp.site {
            BleachSite::ProviderEdge => info.pe,
            BleachSite::Border => info.border,
            BleachSite::Interior => info.i2,
            BleachSite::Access => {
                info.access_heads
                    .iter()
                    .find(|(_, len)| *len >= 2)
                    .expect("validated during blueprint build")
                    .0
            }
        };
        let policy = match bp.prob {
            None => EcnPolicy::Bleach,
            Some(p) => EcnPolicy::BleachProb(p),
        };
        sim.set_ecn_policy(node, policy);
        match bp.prob {
            None => truth.bleach_always.push((node, bp.site)),
            Some(_) => truth.bleach_sometimes.push((node, bp.site)),
        }
    }

    // --- wire modern middlebox policies --------------------------------------
    // AQM markers were wired as link properties above; the codepoint
    // rewriters are PE router policies.
    for mp in d.modern {
        let pe = dest_nodes[mp.as_index].pe;
        match mp.kind {
            ModernBoxKind::CeSuppress => sim.set_ecn_policy(pe, EcnPolicy::ClearCe),
            ModernBoxKind::Ect1Downgrade => sim.set_ecn_policy(pe, EcnPolicy::DowngradeEct1),
            ModernBoxKind::AqmRed | ModernBoxKind::AqmCodel => {}
        }
    }

    debug_assert!(
        server_hosts.iter().all(|n| n.0 != u32::MAX),
        "every profile placed"
    );
    CompiledTopology {
        sim,
        vantage_hosts,
        dns_host,
        server_hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiations_are_identical() {
        let bp = WorldBlueprint::build(&PoolPlan::scaled(40), 7);
        let a = bp.instantiate();
        let b = bp.instantiate();
        assert_eq!(a.sim.node_count(), b.sim.node_count());
        assert_eq!(a.sim.links.len(), b.sim.links.len());
        assert_eq!(a.servers.len(), b.servers.len());
        for (sa, sb) in a.servers.iter().zip(b.servers.iter()) {
            assert_eq!(sa.addr, sb.addr);
            assert_eq!(sa.node, sb.node);
            assert_eq!(sa.as_index, sb.as_index);
        }
        assert_eq!(a.truth.ect_blocked, b.truth.ect_blocked);
        assert_eq!(a.truth.bleach_always, b.truth.bleach_always);
    }

    #[test]
    fn capacity_hints_are_exact() {
        let bp = WorldBlueprint::build(&PoolPlan::scaled(60), 3);
        let sc = bp.instantiate();
        assert_eq!(sc.sim.node_count(), bp.node_count(), "node count hint");
        assert_eq!(sc.sim.links.len(), bp.link_count(), "link count hint");
    }

    #[test]
    fn domain_instantiation_shares_world_but_not_packet_noise() {
        let bp = WorldBlueprint::build(&PoolPlan::scaled(30), 11);
        let a = bp.instantiate();
        let b = bp.instantiate_domain("engine/unit/v0/c0");
        // identical topology and ground truth
        assert_eq!(a.sim.node_count(), b.sim.node_count());
        assert_eq!(a.truth.ect_blocked, b.truth.ect_blocked);
        assert_eq!(
            a.truth.bleach_always, b.truth.bleach_always,
            "bleach node ids are sim-order-deterministic"
        );
        // same label, same world again
        let c = bp.instantiate_domain("engine/unit/v0/c0");
        assert_eq!(b.sim.node_count(), c.sim.node_count());
    }

    #[test]
    fn blueprint_precomputes_dbs() {
        let bp = WorldBlueprint::build(&PoolPlan::scaled(50), 9);
        let sc = bp.instantiate();
        assert_eq!(bp.geodb.len(), sc.geodb.len());
        assert_eq!(bp.server_addrs.len(), 50);
        assert!(bp.dest_as_count() > 0);
        assert_eq!(bp.dest_as_count(), sc.truth.dest_as_count);
    }
}
