//! End-to-end checks of the assembled world: DNS discovery, NTP probing
//! with both ECN markings, middlebox behaviour, bleached paths observed
//! via ICMP quotes, and HTTP over TCP with ECN negotiation.

use ecn_netsim::Nanos;
use ecn_pool::{build_scenario, PoolPlan, Scenario, SpecialBehaviour};
use ecn_services::NtpClient;
use ecn_stack::{AvailabilityModel, TcpState};
use ecn_wire::{DnsMessage, Ecn, HttpResponse, IcmpMessage, Ipv4Header};
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn world(seed: u64) -> Scenario {
    build_scenario(&PoolPlan::scaled(60), seed)
}

/// Probe one server with up to 5 retries, 1 s apart. Returns true if an
/// NTP answer arrived.
fn ntp_probe(sc: &mut Scenario, vantage: usize, server: Ipv4Addr, ecn: Ecn) -> bool {
    let handle = sc.vantages[vantage].handle.clone();
    let sock = handle.udp_bind(0);
    for _ in 0..=5 {
        let req = NtpClient::request(sc.sim.now());
        handle.udp_send(&mut sc.sim, sock, (server, 123), &req.encode(), ecn);
        let deadline = sc.sim.now() + Nanos::from_secs(1);
        sc.sim.run_until(deadline);
        while let Some(got) = handle.udp_recv(sock) {
            if NtpClient::matches(&req, &got.payload) {
                return true;
            }
        }
    }
    false
}

#[test]
fn scenario_shape_matches_plan() {
    let sc = world(1);
    assert_eq!(sc.servers.len(), 60);
    assert_eq!(sc.vantages.len(), 13);
    assert!(!sc.truth.ect_blocked.is_empty() || !sc.truth.ect_blocked_flaky.is_empty());
    assert!(!sc.truth.not_ect_blocked.is_empty());
    assert!(!sc.truth.bleach_always.is_empty());
    assert!(sc.truth.web_server_count > 10);
    // all server addresses unique
    let addrs: HashSet<_> = sc.servers.iter().map(|s| s.addr).collect();
    assert_eq!(addrs.len(), 60);
    // geo DB covers all but Unknown-region servers
    let unknown = sc
        .servers
        .iter()
        .filter(|s| s.profile.region == ecn_geo::Region::Unknown)
        .count();
    assert_eq!(sc.geodb.len(), 60 - unknown);
}

#[test]
fn dns_discovery_enumerates_pool() {
    let mut sc = world(2);
    let handle = sc.vantages[0].handle.clone();
    let dns = sc.dns_addr;
    let sock = handle.udp_bind(0);
    let mut found: HashSet<Ipv4Addr> = HashSet::new();
    for qid in 0..40u16 {
        let q = DnsMessage::a_query(qid, "pool.ntp.org");
        handle.udp_send(&mut sc.sim, sock, (dns, 53), &q.encode(), Ecn::NotEct);
        let deadline = sc.sim.now() + Nanos::from_millis(500);
        sc.sim.run_until(deadline);
        while let Some(got) = handle.udp_recv(sock) {
            if let Ok(m) = DnsMessage::decode(&got.payload) {
                found.extend(m.a_records());
            }
        }
    }
    // 40 queries x 4 answers with rotation cover the 60-server zone
    assert_eq!(found.len(), 60, "discovery should enumerate the pool");
}

#[test]
fn healthy_server_reachable_with_both_markings() {
    let mut sc = world(3);
    let target = sc
        .servers
        .iter()
        .position(|s| {
            s.profile.special == SpecialBehaviour::None
                && s.profile.availability == AvailabilityModel::AlwaysUp
        })
        .expect("healthy server");
    let addr = sc.servers[target].addr;
    assert!(ntp_probe(&mut sc, 4, addr, Ecn::NotEct), "not-ECT");
    assert!(ntp_probe(&mut sc, 4, addr, Ecn::Ect0), "ECT(0)");
}

#[test]
fn ect_blocked_server_shows_differential_reachability() {
    let mut sc = world(4);
    let addr = *sc.truth.ect_blocked.first().expect("ect-blocked server");
    // reachable with plain UDP from several vantages, never with ECT(0)
    for vantage in [0usize, 5, 9] {
        assert!(
            ntp_probe(&mut sc, vantage, addr, Ecn::NotEct),
            "vantage {vantage} not-ECT"
        );
        assert!(
            !ntp_probe(&mut sc, vantage, addr, Ecn::Ect0),
            "vantage {vantage} ECT(0) must be blackholed"
        );
    }
}

#[test]
fn ec2_only_not_ect_blocker_discriminates_by_source() {
    let mut sc = world(5);
    let addr = *sc
        .truth
        .not_ect_blocked_ec2
        .first()
        .expect("phoenix-style server");
    // vantage 0 = Perkins home (81.0.0.0/16): unaffected
    assert!(
        ntp_probe(&mut sc, 0, addr, Ecn::NotEct),
        "home not-ECT works"
    );
    // vantage 4 = EC2 California (54.x): not-ECT blocked, ECT(0) fine
    assert!(
        !ntp_probe(&mut sc, 4, addr, Ecn::NotEct),
        "EC2 not-ECT blocked"
    );
    assert!(ntp_probe(&mut sc, 4, addr, Ecn::Ect0), "EC2 ECT(0) works");
}

#[test]
fn always_down_server_is_unreachable() {
    let mut sc = world(6);
    let dead = sc
        .servers
        .iter()
        .find(|s| s.profile.availability == AvailabilityModel::AlwaysDown)
        .map(|s| s.addr)
        .expect("dead server");
    assert!(!ntp_probe(&mut sc, 2, dead, Ecn::NotEct));
}

#[test]
fn traceroute_probe_reveals_bleached_hop_via_quote() {
    let mut sc = world(7);
    // pick a server behind an always-bleaching PE/border/etc: any server in
    // an AS whose PE/border is in truth.bleach_always. Simplest: probe all
    // servers until we find one whose quoted ECN at high TTL is not-ECT.
    let handle = sc.vantages[0].handle.clone();
    let sock = handle.udp_bind(0);
    let mut bleach_seen = false;
    let mut pass_seen = false;
    let targets: Vec<Ipv4Addr> = sc.servers.iter().map(|s| s.addr).collect();
    'outer: for addr in targets {
        for ttl in 1..=20u8 {
            handle.udp_send_probe(
                &mut sc.sim,
                sock,
                (addr, 33434),
                b"traceroute-probe",
                Ecn::Ect0,
                ttl,
            );
            let deadline = sc.sim.now() + Nanos::from_millis(400);
            sc.sim.run_until(deadline);
            let mut answered = false;
            for icmp in handle.icmp_recv_all() {
                if let IcmpMessage::TimeExceeded { quoted } = &icmp.msg {
                    answered = true;
                    let qh = Ipv4Header::decode(quoted).expect("quote parses");
                    assert_eq!(qh.dst, addr, "quote is our probe");
                    match qh.ecn {
                        Ecn::Ect0 => pass_seen = true,
                        Ecn::NotEct => bleach_seen = true,
                        other => panic!("unexpected quoted ECN {other}"),
                    }
                }
            }
            if !answered {
                // destination (or silent hop) reached; next target
                continue 'outer;
            }
            if bleach_seen && pass_seen {
                break 'outer;
            }
        }
    }
    assert!(pass_seen, "most hops pass ECT(0)");
    assert!(bleach_seen, "some hop shows the mark stripped");
}

#[test]
fn http_probe_with_ecn_negotiation_works_against_pool_web_server() {
    let mut sc = world(8);
    let target = sc
        .servers
        .iter()
        .find(|s| {
            s.profile.web.as_ref().map(|w| w.ecn) == Some(ecn_stack::EcnMode::On)
                && s.profile.availability == AvailabilityModel::AlwaysUp
                && s.profile.special == SpecialBehaviour::None
        })
        .expect("ecn web server");
    let addr = target.addr;
    let handle = sc.vantages[6].handle.clone();
    let conn = handle.tcp_connect(&mut sc.sim, (addr, 80), true);
    let deadline = sc.sim.now() + Nanos::from_secs(3);
    sc.sim.run_until(deadline);
    let snap = handle.conn(conn).expect("conn");
    assert_eq!(snap.state, TcpState::Established);
    assert!(snap.ecn_negotiated, "ECN-setup SYN-ACK received");
    let req = ecn_wire::HttpRequest::get_root(&addr.to_string()).encode();
    handle.tcp_send(&mut sc.sim, conn, &req);
    let deadline = sc.sim.now() + Nanos::from_secs(5);
    sc.sim.run_until(deadline);
    let snap = handle.conn(conn).expect("conn");
    let rsp = HttpResponse::decode(&snap.received).expect("http response");
    assert!(rsp.status == 302 || rsp.status == 200);
    handle.tcp_close(&mut sc.sim, conn);
}

#[test]
fn same_seed_same_world_different_seed_different_world() {
    let a = world(9);
    let b = world(9);
    let c = world(10);
    let addrs_a: Vec<_> = a.servers.iter().map(|s| s.addr).collect();
    let addrs_b: Vec<_> = b.servers.iter().map(|s| s.addr).collect();
    let addrs_c: Vec<_> = c.servers.iter().map(|s| s.addr).collect();
    assert_eq!(addrs_a, addrs_b);
    assert_ne!(addrs_a, addrs_c);
    assert_eq!(a.truth.ect_blocked, b.truth.ect_blocked);
}
