//! RTP (RFC 3550) fixed header and a compact ECN feedback report in the
//! spirit of RFC 6679 — the "ECN for RTP over UDP" mechanism whose
//! deployability motivates the whole measurement study (paper §1: WebRTC,
//! NADA congestion control for interactive media).
//!
//! Scope: the 12-byte fixed header without CSRC/extensions, and the
//! summary ECN feedback block (packets received / CE-marked / lost) that a
//! receiver returns so the sender can react to congestion *without* loss.

use crate::error::WireError;
use serde::{Deserialize, Serialize};

/// RTP fixed header length (no CSRCs).
pub const RTP_HEADER_LEN: usize = 12;

/// The RTP fixed header (V=2, no padding/extension/CSRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpHeader {
    /// Payload type (e.g. 96 for dynamic video).
    pub payload_type: u8,
    /// Marker bit (end of frame).
    pub marker: bool,
    /// Sequence number.
    pub sequence: u16,
    /// Media timestamp.
    pub timestamp: u32,
    /// Synchronisation source.
    pub ssrc: u32,
}

impl RtpHeader {
    /// Encode header + payload (convenience wrapper; prefer
    /// [`RtpHeader::encode_into`] on hot paths).
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(RTP_HEADER_LEN + payload.len());
        self.encode_into(payload, &mut out);
        out
    }

    /// Append header + payload wire bytes to `out`.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        out.push(0x80); // V=2, P=0, X=0, CC=0
        out.push((self.payload_type & 0x7f) | if self.marker { 0x80 } else { 0 });
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.extend_from_slice(payload);
    }

    /// Decode; returns header and payload slice.
    pub fn decode(buf: &[u8]) -> Result<(RtpHeader, &[u8]), WireError> {
        if buf.len() < RTP_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "rtp",
                needed: RTP_HEADER_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 6;
        if version != 2 {
            return Err(WireError::InvalidField {
                layer: "rtp",
                field: "version",
                value: u64::from(version),
            });
        }
        if buf[0] & 0x2f != 0 {
            // padding/extension/CSRC unsupported in this subset
            return Err(WireError::Malformed {
                layer: "rtp",
                what: "padding/extension/CSRC not supported",
            });
        }
        Ok((
            RtpHeader {
                payload_type: buf[1] & 0x7f,
                marker: buf[1] & 0x80 != 0,
                sequence: u16::from_be_bytes([buf[2], buf[3]]),
                timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            },
            &buf[RTP_HEADER_LEN..],
        ))
    }
}

/// Magic tag distinguishing feedback packets from media on the same port.
const FEEDBACK_MAGIC: [u8; 4] = *b"ECNF";

/// RFC 6679-style ECN summary feedback: what the receiver saw since the
/// last report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EcnFeedback {
    /// Highest sequence number received.
    pub ext_highest_seq: u32,
    /// Packets received in the interval.
    pub received: u32,
    /// Packets that arrived CE-marked.
    pub ce_count: u32,
    /// Packets that arrived ECT(0)-marked (capability confirmation).
    pub ect0_count: u32,
    /// Packets that arrived not-ECT (mark bleached on path).
    pub not_ect_count: u32,
    /// Losses inferred from sequence gaps.
    pub lost: u32,
}

impl EcnFeedback {
    /// Encode to wire form (convenience wrapper; prefer
    /// [`EcnFeedback::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 24);
        self.encode_into(&mut out);
        out
    }

    /// Append the wire form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&FEEDBACK_MAGIC);
        for v in [
            self.ext_highest_seq,
            self.received,
            self.ce_count,
            self.ect0_count,
            self.not_ect_count,
            self.lost,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
    }

    /// Decode from wire form.
    pub fn decode(buf: &[u8]) -> Result<EcnFeedback, WireError> {
        if buf.len() < 28 {
            return Err(WireError::Truncated {
                layer: "rtp-ecn-feedback",
                needed: 28,
                got: buf.len(),
            });
        }
        if buf[..4] != FEEDBACK_MAGIC {
            return Err(WireError::Malformed {
                layer: "rtp-ecn-feedback",
                what: "bad magic",
            });
        }
        let word = |i: usize| u32::from_be_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        Ok(EcnFeedback {
            ext_highest_seq: word(4),
            received: word(8),
            ce_count: word(12),
            ect0_count: word(16),
            not_ect_count: word(20),
            lost: word(24),
        })
    }

    /// Is this buffer a feedback packet (vs RTP media)?
    pub fn is_feedback(buf: &[u8]) -> bool {
        buf.len() >= 4 && buf[..4] == FEEDBACK_MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtp_roundtrip() {
        let h = RtpHeader {
            payload_type: 96,
            marker: true,
            sequence: 4242,
            timestamp: 0xdead_beef,
            ssrc: 0x1234_5678,
        };
        let wire = h.encode(b"frame data");
        let (d, payload) = RtpHeader::decode(&wire).unwrap();
        assert_eq!(d, h);
        assert_eq!(payload, b"frame data");
    }

    #[test]
    fn rtp_rejects_bad_version_and_truncation() {
        let h = RtpHeader {
            payload_type: 96,
            marker: false,
            sequence: 1,
            timestamp: 2,
            ssrc: 3,
        };
        let mut wire = h.encode(b"");
        wire[0] = 0x40; // version 1
        assert!(matches!(
            RtpHeader::decode(&wire),
            Err(WireError::InvalidField {
                field: "version",
                ..
            })
        ));
        assert!(RtpHeader::decode(&wire[..8]).is_err());
    }

    #[test]
    fn feedback_roundtrip_and_detection() {
        let f = EcnFeedback {
            ext_highest_seq: 1000,
            received: 98,
            ce_count: 5,
            ect0_count: 93,
            not_ect_count: 0,
            lost: 2,
        };
        let wire = f.encode();
        assert!(EcnFeedback::is_feedback(&wire));
        assert_eq!(EcnFeedback::decode(&wire).unwrap(), f);
        // media packets are not feedback
        let media = RtpHeader {
            payload_type: 96,
            marker: false,
            sequence: 1,
            timestamp: 2,
            ssrc: 3,
        }
        .encode(b"x");
        assert!(!EcnFeedback::is_feedback(&media));
        assert!(EcnFeedback::decode(&media).is_err());
    }

    #[test]
    fn feedback_rejects_truncation() {
        let f = EcnFeedback::default();
        let wire = f.encode();
        assert!(EcnFeedback::decode(&wire[..20]).is_err());
    }
}
