//! IPv4 header codec (RFC 791) with first-class DSCP/ECN fields.

use crate::checksum::{finish, sum_words};
use crate::ecn::{Dscp, Ecn};
use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Length of the IPv4 header this crate emits (no options), in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// 1 — ICMP.
    Icmp,
    /// 6 — TCP.
    Tcp,
    /// 17 — UDP.
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// The wire value.
    pub fn number(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(n) => n,
        }
    }

    /// Decode from the wire value.
    pub fn from_number(n: u8) -> IpProto {
        match n {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => f.write_str("icmp"),
            IpProto::Tcp => f.write_str("tcp"),
            IpProto::Udp => f.write_str("udp"),
            IpProto::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// A decoded IPv4 header (IHL fixed at 5; the study never sends IP options).
///
/// The DSCP and ECN fields are kept separate rather than as a raw TOS octet
/// because the whole measurement campaign pivots on the two ECN bits, and
/// because middleboxes that conflate the two are one of the failure modes
/// under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated-services codepoint (upper six TOS bits).
    pub dscp: Dscp,
    /// ECN codepoint (lower two TOS bits).
    pub ecn: Ecn,
    /// Total datagram length including this header. `Datagram::new` patches
    /// this on assembly.
    pub total_len: u16,
    /// Identification field (used by traceroute to match quoted headers).
    pub identification: u16,
    /// DF flag.
    pub dont_fragment: bool,
    /// MF flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units (13 bits).
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub protocol: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// A reasonable default header for probe traffic: DF set, TTL 64.
    pub fn probe(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProto, ecn: Ecn) -> Ipv4Header {
        Ipv4Header {
            dscp: Dscp::DEFAULT,
            ecn,
            total_len: 0,
            identification: 0,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Append the 20 encoded header bytes (checksum computed) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + IPV4_HEADER_LEN, 0);
        self.write(&mut out[start..start + IPV4_HEADER_LEN]);
    }

    /// Re-encode this header over the first 20 bytes of an existing buffer
    /// (in-place mutation by routers/middleboxes).
    pub fn encode_into(&self, buf: &mut [u8]) {
        self.write(&mut buf[..IPV4_HEADER_LEN]);
    }

    fn write(&self, b: &mut [u8]) {
        debug_assert_eq!(b.len(), IPV4_HEADER_LEN);
        b[0] = 0x45; // version 4, IHL 5
        b[1] = self.dscp.to_tos(self.ecn);
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        b[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.protocol.number();
        b[10] = 0;
        b[11] = 0;
        b[12..16].copy_from_slice(&self.src.octets());
        b[16..20].copy_from_slice(&self.dst.octets());
        let ck = finish(sum_words(&b[..IPV4_HEADER_LEN], 0));
        b[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode and checksum-verify a header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Ipv4Header, WireError> {
        Self::decode_inner(buf, true)
    }

    /// Decode *without* checksum verification — for buffers whose
    /// integrity the caller already guarantees (e.g. the simulator's
    /// per-hop pipeline re-reading a header it wrote itself). Endpoint
    /// stacks and captures keep using the verifying [`Ipv4Header::decode`].
    pub fn decode_trusted(buf: &[u8]) -> Result<Ipv4Header, WireError> {
        Self::decode_inner(buf, false)
    }

    fn decode_inner(buf: &[u8], verify: bool) -> Result<Ipv4Header, WireError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::InvalidField {
                layer: "ipv4",
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            // The study never emits options; receiving them indicates a
            // corrupted or hostile packet as far as this codec is concerned.
            return Err(WireError::InvalidField {
                layer: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        if verify {
            let computed = finish(sum_words(&buf[..IPV4_HEADER_LEN], 0));
            if computed != 0 {
                let found = u16::from_be_bytes([buf[10], buf[11]]);
                return Err(WireError::BadChecksum {
                    layer: "ipv4",
                    found,
                    computed,
                });
            }
        }
        let (dscp, ecn) = Dscp::from_tos(buf[1]);
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok(Ipv4Header {
            dscp,
            ecn,
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: IpProto::from_number(buf[9]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        let mut h = Ipv4Header::probe(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(203, 0, 113, 9),
            IpProto::Udp,
            Ecn::Ect0,
        );
        h.total_len = 48;
        h.identification = 0xbeef;
        h
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = hdr();
        let mut out = Vec::new();
        h.encode(&mut out);
        assert_eq!(out.len(), IPV4_HEADER_LEN);
        let d = Ipv4Header::decode(&out).unwrap();
        assert_eq!(h, d);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut out = Vec::new();
        hdr().encode(&mut out);
        out[8] ^= 0xff; // mangle TTL
        match Ipv4Header::decode(&out) {
            Err(WireError::BadChecksum { layer: "ipv4", .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_version_and_options() {
        let mut out = Vec::new();
        hdr().encode(&mut out);
        let mut v6 = out.clone();
        v6[0] = 0x65;
        assert!(matches!(
            Ipv4Header::decode(&v6),
            Err(WireError::InvalidField {
                field: "version",
                ..
            })
        ));
        let mut opt = out.clone();
        opt[0] = 0x46; // IHL 6 => options present
        assert!(matches!(
            Ipv4Header::decode(&opt),
            Err(WireError::InvalidField { field: "ihl", .. })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            Ipv4Header::decode(&[0u8; 10]),
            Err(WireError::Truncated { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn tos_octet_carries_dscp_and_ecn() {
        let mut h = hdr();
        h.dscp = Dscp::EF;
        h.ecn = Ecn::Ce;
        let mut out = Vec::new();
        h.encode(&mut out);
        assert_eq!(out[1], (46 << 2) | 0b11);
        let d = Ipv4Header::decode(&out).unwrap();
        assert_eq!(d.dscp, Dscp::EF);
        assert_eq!(d.ecn, Ecn::Ce);
    }

    #[test]
    fn flags_and_fragment_offset_roundtrip() {
        let mut h = hdr();
        h.dont_fragment = false;
        h.more_fragments = true;
        h.fragment_offset = 0x1abc;
        let mut out = Vec::new();
        h.encode(&mut out);
        let d = Ipv4Header::decode(&out).unwrap();
        assert!(!d.dont_fragment);
        assert!(d.more_fragments);
        assert_eq!(d.fragment_offset, 0x1abc);
    }

    #[test]
    fn in_place_reencode_preserves_validity() {
        let mut out = Vec::new();
        hdr().encode(&mut out);
        let mut h = Ipv4Header::decode(&out).unwrap();
        h.ttl -= 1;
        h.ecn = Ecn::NotEct;
        h.encode_into(&mut out);
        let d = Ipv4Header::decode(&out).unwrap();
        assert_eq!(d.ttl, 63);
        assert_eq!(d.ecn, Ecn::NotEct);
    }
}
