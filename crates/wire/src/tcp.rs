//! TCP header codec (RFC 793) including the ECN flags of RFC 3168.

use crate::checksum::{finish, pseudo_header_sum, sum_words};
use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options), bytes.
pub const TCP_HEADER_MIN_LEN: usize = 20;

/// TCP flag bits, including NS/ECE/CWR.
///
/// The ECN handshake of RFC 3168 §6.1.1 is expressed with these: an
/// *ECN-setup SYN* carries `SYN | ECE | CWR`; an *ECN-setup SYN-ACK* carries
/// `SYN | ACK | ECE` (and **not** CWR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u16);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x001);
    /// SYN: synchronise sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x002);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x004);
    /// PSH: push function.
    pub const PSH: TcpFlags = TcpFlags(0x008);
    /// ACK: acknowledgement field significant.
    pub const ACK: TcpFlags = TcpFlags(0x010);
    /// URG: urgent pointer significant.
    pub const URG: TcpFlags = TcpFlags(0x020);
    /// ECE: ECN-echo (RFC 3168).
    pub const ECE: TcpFlags = TcpFlags(0x040);
    /// CWR: congestion window reduced (RFC 3168).
    pub const CWR: TcpFlags = TcpFlags(0x080);
    /// NS: ECN-nonce sum (RFC 3540, historic) — carried for completeness.
    pub const NS: TcpFlags = TcpFlags(0x100);

    /// The empty flag set.
    pub const fn empty() -> TcpFlags {
        TcpFlags(0)
    }

    /// Set union.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Remove `other`'s bits.
    pub const fn without(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & !other.0)
    }

    /// The ECN-setup SYN flag combination (RFC 3168 §6.1.1).
    pub const fn ecn_setup_syn() -> TcpFlags {
        TcpFlags::SYN.union(TcpFlags::ECE).union(TcpFlags::CWR)
    }

    /// The ECN-setup SYN-ACK flag combination (RFC 3168 §6.1.1).
    pub const fn ecn_setup_syn_ack() -> TcpFlags {
        TcpFlags::SYN.union(TcpFlags::ACK).union(TcpFlags::ECE)
    }

    /// Is this segment an ECN-setup SYN? (SYN, not ACK, both ECE and CWR.)
    pub fn is_ecn_setup_syn(self) -> bool {
        self.contains(TcpFlags::ecn_setup_syn()) && !self.contains(TcpFlags::ACK)
    }

    /// Is this segment an ECN-setup SYN-ACK? (SYN+ACK+ECE, CWR clear.)
    ///
    /// RFC 3168 is explicit that a SYN-ACK with *both* ECE and CWR is not an
    /// ECN-setup SYN-ACK; broken middleboxes that reflect the SYN's flags
    /// produce exactly that, and the prober must not count it as success.
    pub fn is_ecn_setup_syn_ack(self) -> bool {
        self.contains(TcpFlags::ecn_setup_syn_ack()) && !self.contains(TcpFlags::CWR)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(&str, TcpFlags); 9] = [
            ("NS", TcpFlags::NS),
            ("CWR", TcpFlags::CWR),
            ("ECE", TcpFlags::ECE),
            ("URG", TcpFlags::URG),
            ("ACK", TcpFlags::ACK),
            ("PSH", TcpFlags::PSH),
            ("RST", TcpFlags::RST),
            ("SYN", TcpFlags::SYN),
            ("FIN", TcpFlags::FIN),
        ];
        let mut first = true;
        for (name, bit) in names {
            if self.contains(bit) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// TCP options the codec understands; anything else is preserved raw.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpOption {
    /// Maximum segment size (kind 2).
    Mss(u16),
    /// Window scale shift (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// Timestamps: value, echo reply (kind 8).
    Timestamps(u32, u32),
    /// Unknown option preserved as (kind, data).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    fn encoded_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps(_, _) => 10,
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Mss(mss) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => out.extend_from_slice(&[3, 3, *shift]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps(val, echo) => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&val.to_be_bytes());
                out.extend_from_slice(&echo.to_be_bytes());
            }
            TcpOption::Unknown(kind, data) => {
                out.push(*kind);
                out.push((2 + data.len()) as u8);
                out.extend_from_slice(data);
            }
        }
    }
}

/// A decoded TCP header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits, including ECE/CWR/NS.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer (carried but unused by the study).
    pub urgent: u16,
    /// Options in order of appearance.
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// Header length on the wire including options, padded to 4 bytes.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::encoded_len).sum();
        TCP_HEADER_MIN_LEN + opt_len.div_ceil(4) * 4
    }

    /// Encode header + payload with a pseudo-header checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        let header_len = self.header_len();
        let data_offset_words = (header_len / 4) as u16;
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let offset_flags = (data_offset_words << 12) | (self.flags.0 & 0x01ff);
        out.extend_from_slice(&offset_flags.to_be_bytes());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.urgent.to_be_bytes());
        for opt in &self.options {
            opt.encode(out);
        }
        while (out.len() - start) < header_len {
            out.push(0); // end-of-options / padding
        }
        out.extend_from_slice(payload);
        let seg_len = (out.len() - start) as u16;
        let mut acc = pseudo_header_sum(src, dst, 6, seg_len);
        acc = sum_words(&out[start..], acc);
        let ck = finish(acc);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode a TCP segment, verifying the pseudo-header checksum, returning
    /// the header and payload slice.
    pub fn decode(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        buf: &[u8],
    ) -> Result<(TcpHeader, &[u8]), WireError> {
        let header = Self::decode_fields(buf)?;
        let header_len = Self::data_offset_bytes(buf);
        let seg_len = buf.len() as u16;
        let mut acc = pseudo_header_sum(src, dst, 6, seg_len);
        acc = sum_words(buf, acc);
        let computed = finish(acc);
        if computed != 0 {
            let found = u16::from_be_bytes([buf[16], buf[17]]);
            return Err(WireError::BadChecksum {
                layer: "tcp",
                found,
                computed,
            });
        }
        Ok((header, &buf[header_len..]))
    }

    /// Decode header fields without checksum verification (for quoted
    /// headers inside ICMP errors, where only 8 bytes may be present —
    /// in that case only ports/seq are meaningful and this returns an error;
    /// use [`TcpHeader::decode_ports`] instead).
    pub fn decode_fields(buf: &[u8]) -> Result<TcpHeader, WireError> {
        if buf.len() < TCP_HEADER_MIN_LEN {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: TCP_HEADER_MIN_LEN,
                got: buf.len(),
            });
        }
        let header_len = Self::data_offset_bytes(buf);
        if header_len < TCP_HEADER_MIN_LEN || header_len > buf.len() {
            return Err(WireError::InvalidField {
                layer: "tcp",
                field: "data_offset",
                value: header_len as u64,
            });
        }
        let offset_flags = u16::from_be_bytes([buf[12], buf[13]]);
        let options = Self::decode_options(&buf[TCP_HEADER_MIN_LEN..header_len])?;
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags(offset_flags & 0x01ff),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            urgent: u16::from_be_bytes([buf[18], buf[19]]),
            options,
        })
    }

    /// Extract just src/dst ports and sequence number from the first 8
    /// bytes, as quoted by ICMP errors.
    pub fn decode_ports(buf: &[u8]) -> Result<(u16, u16, u32), WireError> {
        if buf.len() < 8 {
            return Err(WireError::Truncated {
                layer: "tcp",
                needed: 8,
                got: buf.len(),
            });
        }
        Ok((
            u16::from_be_bytes([buf[0], buf[1]]),
            u16::from_be_bytes([buf[2], buf[3]]),
            u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        ))
    }

    fn data_offset_bytes(buf: &[u8]) -> usize {
        ((buf[12] >> 4) as usize) * 4
    }

    fn decode_options(mut buf: &[u8]) -> Result<Vec<TcpOption>, WireError> {
        let mut options = Vec::new();
        while !buf.is_empty() {
            match buf[0] {
                0 => break, // end of options list
                1 => {
                    buf = &buf[1..]; // NOP padding
                }
                kind => {
                    if buf.len() < 2 {
                        return Err(WireError::Malformed {
                            layer: "tcp",
                            what: "option missing length",
                        });
                    }
                    let len = buf[1] as usize;
                    if len < 2 || len > buf.len() {
                        return Err(WireError::Malformed {
                            layer: "tcp",
                            what: "option length out of range",
                        });
                    }
                    let data = &buf[2..len];
                    let opt = match (kind, data.len()) {
                        (2, 2) => TcpOption::Mss(u16::from_be_bytes([data[0], data[1]])),
                        (3, 1) => TcpOption::WindowScale(data[0]),
                        (4, 0) => TcpOption::SackPermitted,
                        (8, 8) => TcpOption::Timestamps(
                            u32::from_be_bytes([data[0], data[1], data[2], data[3]]),
                            u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                        ),
                        _ => TcpOption::Unknown(kind, data.to_vec()),
                    };
                    options.push(opt);
                    buf = &buf[len..];
                }
            }
        }
        Ok(options)
    }
}

/// Build a TCP segment ready to drop into a [`crate::Datagram`].
#[allow(clippy::too_many_arguments)]
pub fn tcp_segment(src: Ipv4Addr, dst: Ipv4Addr, header: &TcpHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(header.header_len() + payload.len());
    header.encode(src, dst, payload, &mut out);
    out
}

/// Append a TCP segment to `out` — the allocation-free companion of
/// [`tcp_segment`], for composing straight into a pooled datagram buffer.
pub fn tcp_segment_into(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    header: &TcpHeader,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    header.encode(src, dst, payload, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 80);

    fn syn() -> TcpHeader {
        TcpHeader {
            src_port: 40123,
            dst_port: 80,
            seq: 0x01020304,
            ack: 0,
            flags: TcpFlags::ecn_setup_syn(),
            window: 65535,
            urgent: 0,
            options: vec![TcpOption::Mss(1460), TcpOption::WindowScale(7)],
        }
    }

    #[test]
    fn roundtrip_with_options() {
        let h = syn();
        let seg = tcp_segment(SRC, DST, &h, b"");
        let (d, payload) = TcpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(d, h);
        assert!(payload.is_empty());
    }

    #[test]
    fn roundtrip_with_payload() {
        let mut h = syn();
        h.flags = TcpFlags::ACK | TcpFlags::PSH;
        let body = b"GET / HTTP/1.1\r\n\r\n";
        let seg = tcp_segment(SRC, DST, &h, body);
        let (d, payload) = TcpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(payload, body);
        assert!(d.flags.contains(TcpFlags::PSH));
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let seg = tcp_segment(SRC, DST, &syn(), b"");
        let wrong = Ipv4Addr::new(198, 51, 100, 81);
        assert!(matches!(
            TcpHeader::decode(SRC, wrong, &seg),
            Err(WireError::BadChecksum { layer: "tcp", .. })
        ));
    }

    #[test]
    fn ecn_setup_flag_combinations() {
        assert!(TcpFlags::ecn_setup_syn().is_ecn_setup_syn());
        assert!(!TcpFlags::SYN.is_ecn_setup_syn());
        assert!(TcpFlags::ecn_setup_syn_ack().is_ecn_setup_syn_ack());
        // A SYN-ACK that reflects ECE+CWR (broken middlebox) is NOT ECN-setup.
        let reflected = TcpFlags::SYN | TcpFlags::ACK | TcpFlags::ECE | TcpFlags::CWR;
        assert!(!reflected.is_ecn_setup_syn_ack());
        // An ECN-setup SYN is not a SYN-ACK.
        assert!(!TcpFlags::ecn_setup_syn().is_ecn_setup_syn_ack());
    }

    #[test]
    fn ns_flag_roundtrips() {
        let mut h = syn();
        h.flags = h.flags | TcpFlags::NS;
        let seg = tcp_segment(SRC, DST, &h, b"");
        let (d, _) = TcpHeader::decode(SRC, DST, &seg).unwrap();
        assert!(d.flags.contains(TcpFlags::NS));
    }

    #[test]
    fn options_with_nop_padding_decode() {
        // Hand-build an options area: NOP NOP MSS.
        let mut h = syn();
        h.options = vec![TcpOption::Mss(536)];
        let mut seg = tcp_segment(SRC, DST, &h, b"");
        // splice NOPs by rewriting: easier to verify decoder tolerance with
        // a hand-rolled buffer.
        let (d, _) = TcpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(d.options, vec![TcpOption::Mss(536)]);
        // corrupt an option length
        seg[TCP_HEADER_MIN_LEN + 1] = 200;
        assert!(TcpHeader::decode_fields(&seg).is_err());
    }

    #[test]
    fn unknown_option_preserved() {
        let mut h = syn();
        h.options = vec![TcpOption::Unknown(254, vec![1, 2, 3, 4])];
        let seg = tcp_segment(SRC, DST, &h, b"");
        let (d, _) = TcpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(d.options, vec![TcpOption::Unknown(254, vec![1, 2, 3, 4])]);
    }

    #[test]
    fn quoted_ports_from_eight_bytes() {
        let seg = tcp_segment(SRC, DST, &syn(), b"");
        let (sp, dp, seq) = TcpHeader::decode_ports(&seg[..8]).unwrap();
        assert_eq!((sp, dp, seq), (40123, 80, 0x01020304));
        assert!(TcpHeader::decode_ports(&seg[..7]).is_err());
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::ecn_setup_syn().to_string(), "CWR|ECE|SYN");
        assert_eq!(TcpFlags::empty().to_string(), "(none)");
    }
}
