//! ICMPv4 codec (RFC 792): echo, time-exceeded and destination-unreachable,
//! with quoted original datagrams.
//!
//! The quoted datagram is the heart of ECN-aware traceroute: a router
//! answering a TTL-limited probe quotes the IP header (and ≥8 bytes of
//! transport header) *as it arrived at that router*. Comparing the quoted
//! ECN field with what the prober sent reveals exactly where on the path the
//! ECT(0) mark was stripped (paper §4.2; same technique as Bauer et al. and
//! tracebox).

use crate::checksum::internet_checksum;
use crate::error::WireError;
use crate::ipv4::IPV4_HEADER_LEN;
use serde::{Deserialize, Serialize};

/// Number of quoted bytes: original IP header + 8 transport bytes
/// (the RFC 792 minimum, which is what most routers send).
pub const QUOTE_BYTES: usize = IPV4_HEADER_LEN + 8;

/// Destination-unreachable codes used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DestUnreachCode {
    /// 0 — net unreachable.
    Net,
    /// 1 — host unreachable.
    Host,
    /// 2 — protocol unreachable.
    Protocol,
    /// 3 — port unreachable (the classic traceroute terminator).
    Port,
    /// 13 — communication administratively prohibited (filtering firewall).
    AdminProhibited,
    /// Any other code, preserved.
    Other(u8),
}

impl DestUnreachCode {
    fn code(self) -> u8 {
        match self {
            DestUnreachCode::Net => 0,
            DestUnreachCode::Host => 1,
            DestUnreachCode::Protocol => 2,
            DestUnreachCode::Port => 3,
            DestUnreachCode::AdminProhibited => 13,
            DestUnreachCode::Other(c) => c,
        }
    }

    fn from_code(c: u8) -> DestUnreachCode {
        match c {
            0 => DestUnreachCode::Net,
            1 => DestUnreachCode::Host,
            2 => DestUnreachCode::Protocol,
            3 => DestUnreachCode::Port,
            13 => DestUnreachCode::AdminProhibited,
            other => DestUnreachCode::Other(other),
        }
    }
}

/// A decoded ICMPv4 message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// Type 8 — echo request.
    EchoRequest {
        /// Identifier (matches request/reply pairs).
        id: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Type 0 — echo reply.
    EchoReply {
        /// Identifier copied from the request.
        id: u16,
        /// Sequence copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Type 11 code 0 — time exceeded in transit, quoting the offending
    /// datagram's IP header + first 8 payload bytes.
    TimeExceeded {
        /// Quoted bytes of the original datagram as seen by the router.
        quoted: Vec<u8>,
    },
    /// Type 3 — destination unreachable, also quoting the original.
    DestUnreachable {
        /// Why the destination was unreachable.
        code: DestUnreachCode,
        /// Quoted bytes of the original datagram.
        quoted: Vec<u8>,
    },
}

impl IcmpMessage {
    /// Build a time-exceeded message quoting the first [`QUOTE_BYTES`] of
    /// `original` (fewer if the datagram was shorter).
    pub fn time_exceeded_for(original: &[u8]) -> IcmpMessage {
        IcmpMessage::TimeExceeded {
            quoted: original[..original.len().min(QUOTE_BYTES)].to_vec(),
        }
    }

    /// Build a destination-unreachable message quoting `original`.
    pub fn dest_unreachable_for(code: DestUnreachCode, original: &[u8]) -> IcmpMessage {
        IcmpMessage::DestUnreachable {
            code,
            quoted: original[..original.len().min(QUOTE_BYTES)].to_vec(),
        }
    }

    /// The quoted original datagram, if this is an error message.
    pub fn quoted(&self) -> Option<&[u8]> {
        match self {
            IcmpMessage::TimeExceeded { quoted } => Some(quoted),
            IcmpMessage::DestUnreachable { quoted, .. } => Some(quoted),
            _ => None,
        }
    }

    /// Encode to wire bytes, checksum computed (convenience wrapper;
    /// prefer [`IcmpMessage::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + QUOTE_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Append the wire bytes (checksum computed) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        match self {
            IcmpMessage::EchoRequest { id, seq, payload } => {
                out.extend_from_slice(&[8, 0, 0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::EchoReply { id, seq, payload } => {
                out.extend_from_slice(&[0, 0, 0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::TimeExceeded { quoted } => {
                out.extend_from_slice(&[11, 0, 0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(quoted);
            }
            IcmpMessage::DestUnreachable { code, quoted } => {
                out.extend_from_slice(&[3, code.code(), 0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(quoted);
            }
        }
        let ck = internet_checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Append a time-exceeded message quoting `original` directly to
    /// `out` — byte-identical to
    /// `IcmpMessage::time_exceeded_for(original).encode()` without
    /// materialising the intermediate message (the router TTL-expiry hot
    /// path).
    pub fn encode_time_exceeded_into(original: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[11, 0, 0, 0, 0, 0, 0, 0]);
        out.extend_from_slice(&original[..original.len().min(QUOTE_BYTES)]);
        let ck = internet_checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Append a destination-unreachable message quoting `original`
    /// directly to `out` — byte-identical to
    /// `IcmpMessage::dest_unreachable_for(code, original).encode()`.
    pub fn encode_dest_unreachable_into(code: DestUnreachCode, original: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[3, code.code(), 0, 0, 0, 0, 0, 0]);
        out.extend_from_slice(&original[..original.len().min(QUOTE_BYTES)]);
        let ck = internet_checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decode and checksum-verify an ICMP message.
    pub fn decode(buf: &[u8]) -> Result<IcmpMessage, WireError> {
        if buf.len() < 8 {
            return Err(WireError::Truncated {
                layer: "icmp",
                needed: 8,
                got: buf.len(),
            });
        }
        if internet_checksum(buf) != 0 {
            let found = u16::from_be_bytes([buf[2], buf[3]]);
            return Err(WireError::BadChecksum {
                layer: "icmp",
                found,
                computed: internet_checksum(buf),
            });
        }
        let (ty, code) = (buf[0], buf[1]);
        match ty {
            8 | 0 => {
                let id = u16::from_be_bytes([buf[4], buf[5]]);
                let seq = u16::from_be_bytes([buf[6], buf[7]]);
                let payload = buf[8..].to_vec();
                Ok(if ty == 8 {
                    IcmpMessage::EchoRequest { id, seq, payload }
                } else {
                    IcmpMessage::EchoReply { id, seq, payload }
                })
            }
            11 => Ok(IcmpMessage::TimeExceeded {
                quoted: buf[8..].to_vec(),
            }),
            3 => Ok(IcmpMessage::DestUnreachable {
                code: DestUnreachCode::from_code(code),
                quoted: buf[8..].to_vec(),
            }),
            other => Err(WireError::InvalidField {
                layer: "icmp",
                field: "type",
                value: u64::from(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecn::Ecn;
    use crate::ipv4::{IpProto, Ipv4Header};
    use crate::Datagram;
    use std::net::Ipv4Addr;

    fn original_probe() -> Datagram {
        let h = Ipv4Header::probe(
            Ipv4Addr::new(10, 9, 8, 7),
            Ipv4Addr::new(192, 0, 2, 1),
            IpProto::Udp,
            Ecn::Ect0,
        );
        Datagram::new(
            h,
            &crate::udp::udp_segment(
                Ipv4Addr::new(10, 9, 8, 7),
                Ipv4Addr::new(192, 0, 2, 1),
                40000,
                33434,
                b"probe-payload",
            ),
        )
    }

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            id: 77,
            seq: 3,
            payload: b"ping".to_vec(),
        };
        let bytes = m.encode();
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn time_exceeded_quotes_exactly_28_bytes() {
        let orig = original_probe();
        let m = IcmpMessage::time_exceeded_for(orig.as_bytes());
        let quoted = m.quoted().unwrap();
        assert_eq!(quoted.len(), QUOTE_BYTES);
        assert_eq!(quoted, &orig.as_bytes()[..QUOTE_BYTES]);
        let bytes = m.encode();
        let d = IcmpMessage::decode(&bytes).unwrap();
        assert_eq!(d.quoted().unwrap(), quoted);
    }

    #[test]
    fn quoted_header_preserves_ecn_field() {
        // The decisive property for §4.2: the quoted header's ECN bits are
        // readable and reflect the datagram as the router saw it.
        let mut orig = original_probe();
        orig.set_ecn(Ecn::NotEct); // bleached upstream
        let m = IcmpMessage::time_exceeded_for(orig.as_bytes());
        let quoted = m.quoted().unwrap();
        let qh = Ipv4Header::decode(quoted).unwrap();
        assert_eq!(qh.ecn, Ecn::NotEct);
    }

    #[test]
    fn dest_unreachable_codes_roundtrip() {
        for code in [
            DestUnreachCode::Net,
            DestUnreachCode::Host,
            DestUnreachCode::Protocol,
            DestUnreachCode::Port,
            DestUnreachCode::AdminProhibited,
            DestUnreachCode::Other(9),
        ] {
            let m = IcmpMessage::dest_unreachable_for(code, original_probe().as_bytes());
            let d = IcmpMessage::decode(&m.encode()).unwrap();
            match d {
                IcmpMessage::DestUnreachable { code: c, .. } => assert_eq!(c, code),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let m = IcmpMessage::EchoReply {
            id: 1,
            seq: 2,
            payload: vec![0xaa; 16],
        };
        let mut bytes = m.encode();
        bytes[9] ^= 0x10;
        assert!(matches!(
            IcmpMessage::decode(&bytes),
            Err(WireError::BadChecksum { layer: "icmp", .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::decode(&bytes),
            Err(WireError::InvalidField { field: "type", .. })
        ));
    }

    #[test]
    fn short_original_quotes_what_exists() {
        let h = Ipv4Header::probe(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Udp,
            Ecn::NotEct,
        );
        let d = Datagram::new(h, b"abc"); // 23 bytes total < QUOTE_BYTES
        let m = IcmpMessage::time_exceeded_for(d.as_bytes());
        assert_eq!(m.quoted().unwrap().len(), 23);
    }
}
