//! The 48-byte NTP packet (RFC 5905), the payload of every UDP probe.
//!
//! The measurement application implements "a custom NTP client" (paper §3):
//! it sends a mode-3 (client) request and accepts any syntactically valid
//! mode-4 (server) response as evidence of reachability. The server side is
//! a full responder including the kiss-o'-death rate-limit reply that real
//! pool servers send.

use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// NTP packet length, bytes. Extensions/MAC fields are not used by the pool.
pub const NTP_PACKET_LEN: usize = 48;

/// Leap-indicator value meaning "clock unsynchronised" (also used by KoD).
pub const LEAP_UNSYNC: u8 = 3;

/// NTP association modes (RFC 5905 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NtpMode {
    /// 1 — symmetric active.
    SymmetricActive,
    /// 2 — symmetric passive.
    SymmetricPassive,
    /// 3 — client request.
    Client,
    /// 4 — server response.
    Server,
    /// 5 — broadcast.
    Broadcast,
    /// 0, 6, 7 — reserved/control/private, preserved verbatim.
    Other(u8),
}

impl NtpMode {
    fn value(self) -> u8 {
        match self {
            NtpMode::SymmetricActive => 1,
            NtpMode::SymmetricPassive => 2,
            NtpMode::Client => 3,
            NtpMode::Server => 4,
            NtpMode::Broadcast => 5,
            NtpMode::Other(v) => v & 0b111,
        }
    }

    fn from_value(v: u8) -> NtpMode {
        match v & 0b111 {
            1 => NtpMode::SymmetricActive,
            2 => NtpMode::SymmetricPassive,
            3 => NtpMode::Client,
            4 => NtpMode::Server,
            5 => NtpMode::Broadcast,
            other => NtpMode::Other(other),
        }
    }
}

/// 64-bit NTP timestamp: seconds since 1900-01-01 and a 2^-32 fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct NtpTimestamp {
    /// Whole seconds since the NTP epoch.
    pub seconds: u32,
    /// Fractional seconds in units of 2^-32 s.
    pub fraction: u32,
}

impl NtpTimestamp {
    /// The zero timestamp (meaning "unknown" in origin fields).
    pub const ZERO: NtpTimestamp = NtpTimestamp {
        seconds: 0,
        fraction: 0,
    };

    /// Convert from nanoseconds since the NTP epoch.
    pub fn from_nanos(nanos: u64) -> NtpTimestamp {
        let seconds = (nanos / 1_000_000_000) as u32;
        let rem = nanos % 1_000_000_000;
        let fraction = ((rem << 32) / 1_000_000_000) as u32;
        NtpTimestamp { seconds, fraction }
    }

    /// Convert to nanoseconds since the NTP epoch (lossy below ~0.23 ns).
    pub fn to_nanos(self) -> u64 {
        u64::from(self.seconds) * 1_000_000_000 + ((u64::from(self.fraction) * 1_000_000_000) >> 32)
    }

    fn encode(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seconds.to_be_bytes());
        out.extend_from_slice(&self.fraction.to_be_bytes());
    }

    fn decode(buf: &[u8]) -> NtpTimestamp {
        NtpTimestamp {
            seconds: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
            fraction: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        }
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:09}",
            self.seconds,
            (self.to_nanos() % 1_000_000_000)
        )
    }
}

/// A decoded NTP packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NtpPacket {
    /// Leap indicator (2 bits).
    pub leap: u8,
    /// Protocol version (3 bits); the pool runs v3/v4.
    pub version: u8,
    /// Association mode.
    pub mode: NtpMode,
    /// Stratum: 0 = KoD/unspec, 1 = primary, 2.. = secondary.
    pub stratum: u8,
    /// log2 poll interval.
    pub poll: i8,
    /// log2 clock precision.
    pub precision: i8,
    /// Root delay in NTP short format.
    pub root_delay: u32,
    /// Root dispersion in NTP short format.
    pub root_dispersion: u32,
    /// Reference ID: refclock tag, upstream address, or KoD code.
    pub reference_id: [u8; 4],
    /// When the clock was last set.
    pub reference_ts: NtpTimestamp,
    /// Client transmit time, copied by the server (request matching).
    pub origin_ts: NtpTimestamp,
    /// When the server received the request.
    pub receive_ts: NtpTimestamp,
    /// When this packet left its sender.
    pub transmit_ts: NtpTimestamp,
}

impl NtpPacket {
    /// A client (mode 3) request with the given transmit timestamp, shaped
    /// like what `ntpdate`/`sntp` send.
    pub fn client_request(transmit_ts: NtpTimestamp) -> NtpPacket {
        NtpPacket {
            leap: LEAP_UNSYNC,
            version: 4,
            mode: NtpMode::Client,
            stratum: 0,
            poll: 4,
            precision: -20,
            root_delay: 0,
            root_dispersion: 0,
            reference_id: [0; 4],
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts,
        }
    }

    /// A server (mode 4) response to `request`.
    pub fn server_response(
        request: &NtpPacket,
        stratum: u8,
        reference_id: [u8; 4],
        receive_ts: NtpTimestamp,
        transmit_ts: NtpTimestamp,
    ) -> NtpPacket {
        NtpPacket {
            leap: 0,
            version: request.version.clamp(3, 4),
            mode: NtpMode::Server,
            stratum,
            poll: request.poll,
            precision: -23,
            root_delay: 0x0000_0200,      // ~7.8 ms in NTP short format
            root_dispersion: 0x0000_0100, // ~3.9 ms
            reference_id,
            reference_ts: receive_ts,
            origin_ts: request.transmit_ts,
            receive_ts,
            transmit_ts,
        }
    }

    /// A kiss-o'-death `RATE` response (RFC 5905 §7.4): stratum 0 with the
    /// KoD code in the reference-ID field. Pool servers rate-limiting
    /// aggressive clients send these.
    pub fn kiss_of_death_rate(request: &NtpPacket, transmit_ts: NtpTimestamp) -> NtpPacket {
        let mut p = NtpPacket::server_response(request, 0, *b"RATE", transmit_ts, transmit_ts);
        p.leap = LEAP_UNSYNC;
        p
    }

    /// Is this a kiss-o'-death packet, and if so what code?
    pub fn kod_code(&self) -> Option<&[u8; 4]> {
        if self.stratum == 0 && self.mode == NtpMode::Server {
            Some(&self.reference_id)
        } else {
            None
        }
    }

    /// True if this packet is a plausible server answer to `request`:
    /// mode 4 and the origin timestamp echoes the request's transmit time.
    /// KoD replies also count as "server responded" for reachability —
    /// the paper records a server as reachable if *any* NTP response
    /// arrives.
    pub fn answers(&self, request: &NtpPacket) -> bool {
        self.mode == NtpMode::Server && self.origin_ts == request.transmit_ts
    }

    /// Encode to the 48-byte wire format (convenience wrapper; prefer
    /// [`NtpPacket::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NTP_PACKET_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Append the 48-byte wire format to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(((self.leap & 0b11) << 6) | ((self.version & 0b111) << 3) | self.mode.value());
        out.push(self.stratum);
        out.push(self.poll as u8);
        out.push(self.precision as u8);
        out.extend_from_slice(&self.root_delay.to_be_bytes());
        out.extend_from_slice(&self.root_dispersion.to_be_bytes());
        out.extend_from_slice(&self.reference_id);
        self.reference_ts.encode(out);
        self.origin_ts.encode(out);
        self.receive_ts.encode(out);
        self.transmit_ts.encode(out);
        debug_assert_eq!(out.len() - start, NTP_PACKET_LEN);
    }

    /// Decode from wire bytes (must be at least 48 bytes; extensions after
    /// the base header are ignored, as SNTP clients do).
    pub fn decode(buf: &[u8]) -> Result<NtpPacket, WireError> {
        if buf.len() < NTP_PACKET_LEN {
            return Err(WireError::Truncated {
                layer: "ntp",
                needed: NTP_PACKET_LEN,
                got: buf.len(),
            });
        }
        let version = (buf[0] >> 3) & 0b111;
        if version == 0 || version > 4 {
            return Err(WireError::InvalidField {
                layer: "ntp",
                field: "version",
                value: u64::from(version),
            });
        }
        Ok(NtpPacket {
            leap: buf[0] >> 6,
            version,
            mode: NtpMode::from_value(buf[0]),
            stratum: buf[1],
            poll: buf[2] as i8,
            precision: buf[3] as i8,
            root_delay: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            root_dispersion: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            reference_id: [buf[12], buf[13], buf[14], buf[15]],
            reference_ts: NtpTimestamp::decode(&buf[16..24]),
            origin_ts: NtpTimestamp::decode(&buf[24..32]),
            receive_ts: NtpTimestamp::decode(&buf[32..40]),
            transmit_ts: NtpTimestamp::decode(&buf[40..48]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let ts = NtpTimestamp::from_nanos(3_650_000_000_123_456_789);
        let req = NtpPacket::client_request(ts);
        let bytes = req.encode();
        assert_eq!(bytes.len(), NTP_PACKET_LEN);
        let dec = NtpPacket::decode(&bytes).unwrap();
        assert_eq!(dec, req);
        assert_eq!(dec.mode, NtpMode::Client);
    }

    #[test]
    fn server_response_echoes_origin() {
        let req = NtpPacket::client_request(NtpTimestamp::from_nanos(42_000_000_000));
        let rsp = NtpPacket::server_response(
            &req,
            2,
            *b"GPS\0",
            NtpTimestamp::from_nanos(42_000_500_000),
            NtpTimestamp::from_nanos(42_000_600_000),
        );
        assert!(rsp.answers(&req));
        assert_eq!(rsp.origin_ts, req.transmit_ts);
        let other_req = NtpPacket::client_request(NtpTimestamp::from_nanos(43_000_000_000));
        assert!(!rsp.answers(&other_req));
    }

    #[test]
    fn kod_is_detected_and_counts_as_answer() {
        let req = NtpPacket::client_request(NtpTimestamp::from_nanos(1_000_000_000));
        let kod = NtpPacket::kiss_of_death_rate(&req, NtpTimestamp::from_nanos(1_100_000_000));
        assert_eq!(kod.kod_code(), Some(b"RATE"));
        assert!(kod.answers(&req));
        let rsp = NtpPacket::server_response(
            &req,
            3,
            [10, 0, 0, 1],
            NtpTimestamp::ZERO,
            NtpTimestamp::ZERO,
        );
        assert_eq!(rsp.kod_code(), None);
    }

    #[test]
    fn timestamp_nanos_roundtrip_within_precision() {
        for nanos in [
            0u64,
            1,
            999_999_999,
            1_000_000_000,
            3_650_000_000_123_456_789,
        ] {
            let ts = NtpTimestamp::from_nanos(nanos);
            let back = ts.to_nanos();
            assert!(back.abs_diff(nanos) <= 1, "{nanos} -> {back}");
        }
    }

    #[test]
    fn rejects_bad_version_and_short_buffers() {
        let req = NtpPacket::client_request(NtpTimestamp::ZERO);
        let mut bytes = req.encode();
        bytes[0] = (bytes[0] & !0b0011_1000) | (7 << 3);
        assert!(matches!(
            NtpPacket::decode(&bytes),
            Err(WireError::InvalidField {
                field: "version",
                ..
            })
        ));
        assert!(matches!(
            NtpPacket::decode(&bytes[..40]),
            Err(WireError::Truncated { layer: "ntp", .. })
        ));
    }

    #[test]
    fn negative_poll_and_precision_roundtrip() {
        let mut req = NtpPacket::client_request(NtpTimestamp::ZERO);
        req.poll = -6;
        req.precision = -29;
        let dec = NtpPacket::decode(&req.encode()).unwrap();
        assert_eq!(dec.poll, -6);
        assert_eq!(dec.precision, -29);
    }

    #[test]
    fn trailing_extension_bytes_ignored() {
        let req = NtpPacket::client_request(NtpTimestamp::ZERO);
        let mut bytes = req.encode();
        bytes.extend_from_slice(&[0u8; 20]); // fake extension field
        assert_eq!(NtpPacket::decode(&bytes).unwrap(), req);
    }
}
