//! Reusable wire-encoding buffers.
//!
//! Every codec in this crate exposes an `encode_into(&mut Vec<u8>)` entry
//! point that appends to a caller-owned buffer; the owned-`Vec<u8>`
//! `encode()` signatures are thin convenience wrappers over it. [`WireBuf`]
//! is the companion scratch type: a byte buffer a hot loop clears and
//! refills instead of allocating per packet. It derefs to `Vec<u8>`, so it
//! plugs into any `encode_into` surface directly.

use std::ops::{Deref, DerefMut};

/// A reusable byte buffer for wire encoding.
///
/// Semantically a `Vec<u8>` whose capacity is meant to survive reuse:
/// [`WireBuf::start`] clears the contents but keeps the allocation, so a
/// probe loop that encodes the same packet shape every iteration settles
/// into a zero-allocation steady state after the first encode.
#[derive(Debug, Default, Clone)]
pub struct WireBuf {
    bytes: Vec<u8>,
}

impl WireBuf {
    /// An empty buffer.
    pub fn new() -> WireBuf {
        WireBuf::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> WireBuf {
        WireBuf {
            bytes: Vec::with_capacity(n),
        }
    }

    /// Begin a fresh encode: clear contents, keep capacity, hand out the
    /// underlying vector for `encode_into`-style writers.
    pub fn start(&mut self) -> &mut Vec<u8> {
        self.bytes.clear();
        &mut self.bytes
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

impl Deref for WireBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.bytes
    }
}

impl DerefMut for WireBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }
}

impl From<Vec<u8>> for WireBuf {
    fn from(bytes: Vec<u8>) -> WireBuf {
        WireBuf { bytes }
    }
}

impl From<WireBuf> for Vec<u8> {
    fn from(buf: WireBuf) -> Vec<u8> {
        buf.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_clears_but_keeps_capacity() {
        let mut b = WireBuf::with_capacity(64);
        b.start().extend_from_slice(&[1, 2, 3]);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        let cap = b.capacity();
        let out = b.start();
        assert!(out.is_empty());
        out.extend_from_slice(&[9]);
        assert_eq!(b.as_slice(), &[9]);
        assert_eq!(b.capacity(), cap);
    }
}
