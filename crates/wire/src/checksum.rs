//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// One's-complement sum of 16-bit words, as used by IPv4, ICMP, UDP and TCP.
///
/// Odd trailing bytes are padded with a zero octet, per RFC 1071. The
/// returned value is the final complemented checksum ready to be written
/// into the packet.
pub fn internet_checksum(data: &[u8]) -> u16 {
    finish(sum_words(data, 0))
}

/// Accumulate the one's-complement sum over `data`, starting from `acc`.
///
/// Exposed so multi-part checksums (pseudo-header + header + payload) can be
/// computed without concatenating buffers. **Note:** each call treats its
/// slice as starting on an even word boundary, so only the *final* slice of
/// a multi-part sum may have odd length.
pub fn sum_words(data: &[u8], acc: u32) -> u32 {
    // One's-complement addition is commutative and associative over the
    // 16-bit words, so the bulk of the buffer can be consumed eight bytes
    // at a time (four words per load) with the carries folded at the end
    // — ~4x fewer loop iterations than the word-at-a-time version on the
    // checksum-heavy simulator paths (every encode, every hop rewrite).
    let mut sum = u64::from(acc);
    let mut wide = data.chunks_exact(8);
    for chunk in &mut wide {
        let v = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        sum += (v >> 48) + ((v >> 32) & 0xffff) + ((v >> 16) & 0xffff) + (v & 0xffff);
    }
    let mut chunks = wide.remainder().chunks_exact(2);
    for chunk in &mut chunks {
        sum += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    // Fold back into the u32 accumulator domain (preserves the value
    // modulo 0xffff, which is all `finish` depends on).
    while sum > u64::from(u32::MAX) {
        sum = (sum & 0xffff_ffff) + (sum >> 32);
    }
    sum as u32
}

/// Fold carries and complement, producing the wire checksum.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// One's-complement sum of the TCP/UDP pseudo-header (RFC 768 / RFC 793):
/// source address, destination address, zero + protocol, transport length.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, transport_len: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum_words(&src.octets(), acc);
    acc = sum_words(&dst.octets(), acc);
    acc += u32::from(protocol);
    acc += u32::from(transport_len);
    acc
}

/// Verify a buffer whose checksum field is *included* in the sum: summing
/// the entire buffer (checksum in place) must yield zero after folding.
pub fn verify(data: &[u8]) -> bool {
    finish(sum_words(data, 0)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3: the words 0x0001, 0xf203,
        // 0xf4f5, 0xf6f7 sum to 0xddf2 before complementing.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = sum_words(&data, 0);
        let folded = {
            let mut acc = sum;
            while acc > 0xffff {
                acc = (acc & 0xffff) + (acc >> 16);
            }
            acc as u16
        };
        assert_eq!(folded, 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_in_place_verifies_to_zero() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00, 0x40, 0x11];
        let ck = internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        // Flip a bit anywhere and verification fails.
        data[3] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn all_zero_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn pseudo_header_includes_all_fields() {
        let a = pseudo_header_sum(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 2),
            17,
            8,
        );
        let b = pseudo_header_sum(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 2),
            6,
            8,
        );
        assert_ne!(finish(a), finish(b));
    }
}
