//! # ecn-wire — byte-accurate wire formats
//!
//! Packet codecs used throughout the ECN/UDP measurement study
//! (McQuistin & Perkins, *"Is Explicit Congestion Notification usable with
//! UDP?"*, IMC 2015). Every header that the measurement campaign touches is
//! encoded to and decoded from real wire bytes:
//!
//! * [`ipv4`] — IPv4 headers with explicit DSCP/ECN fields (RFC 791 + RFC 3168),
//! * [`udp`] — UDP with pseudo-header checksums (RFC 768),
//! * [`tcp`] — TCP with the ECE/CWR/NS flags and options (RFC 793 + RFC 3168),
//! * [`icmp`] — ICMPv4 including time-exceeded/destination-unreachable with
//!   quoted datagrams, the raw material of ECN-aware traceroute (RFC 792),
//! * [`ntp`] — the 48-byte NTP packet (RFC 5905) used for UDP reachability
//!   probes,
//! * [`dns`] — queries/responses for pool.ntp.org discovery (RFC 1035),
//! * [`http`] — the HTTP/1.1 subset used for TCP reachability probes.
//!
//! The simulator's routers and middleboxes operate on these bytes — an
//! ECN-bleaching hop really rewrites the two ECN bits and fixes up the IPv4
//! checksum — so the measurement application observes middlebox interference
//! exactly as it would on a live network, through the same parsing code.
//!
//! Checksums are always computed on encode and verified on decode; decode
//! errors are explicit ([`WireError`]), never panics.

pub mod buf;
pub mod checksum;
pub mod dns;
pub mod ecn;
pub mod error;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod ntp;
pub mod rtp;
pub mod tcp;
pub mod udp;

pub use buf::WireBuf;
pub use checksum::internet_checksum;
pub use dns::{DnsFlags, DnsMessage, DnsQuestion, DnsRecord, DnsRecordData, QClass, QType, Rcode};
pub use ecn::{Dscp, Ecn};
pub use error::WireError;
pub use http::{HttpRequest, HttpResponse};
pub use icmp::{DestUnreachCode, IcmpMessage, QUOTE_BYTES};
pub use ipv4::{IpProto, Ipv4Header, IPV4_HEADER_LEN};
pub use ntp::{NtpMode, NtpPacket, NtpTimestamp, LEAP_UNSYNC, NTP_PACKET_LEN};
pub use rtp::{EcnFeedback, RtpHeader, RTP_HEADER_LEN};
pub use tcp::{TcpFlags, TcpHeader, TcpOption};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// A fully-formed IPv4 datagram: header plus transport payload bytes.
///
/// This is the unit the simulator moves between hops. It is deliberately a
/// plain owned buffer — middleboxes mutate it in place, pcap taps copy it,
/// and the host stack parses it layer by layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    bytes: Vec<u8>,
}

impl Datagram {
    /// Assemble a datagram from a header and payload, computing the header
    /// checksum and patching `total_len` to match.
    pub fn new(mut header: Ipv4Header, payload: &[u8]) -> Self {
        header.total_len = (IPV4_HEADER_LEN + payload.len()) as u16;
        let mut bytes = Vec::with_capacity(IPV4_HEADER_LEN + payload.len());
        header.encode(&mut bytes);
        bytes.extend_from_slice(payload);
        Datagram { bytes }
    }

    /// Assemble a datagram *into* a recycled buffer: `bytes` is cleared
    /// (capacity kept), the header is written with `total_len`/checksum
    /// patched after `write_payload` has appended the transport bytes.
    ///
    /// This is the allocation-free construction path: a buffer checked out
    /// of a pool flows through here, around the simulator, and back to the
    /// pool via [`Datagram::into_bytes`].
    pub fn compose(
        mut bytes: Vec<u8>,
        mut header: Ipv4Header,
        write_payload: impl FnOnce(&mut Vec<u8>),
    ) -> Self {
        bytes.clear();
        bytes.resize(IPV4_HEADER_LEN, 0);
        write_payload(&mut bytes);
        header.total_len = bytes.len() as u16;
        header.encode_into(&mut bytes);
        Datagram { bytes }
    }

    /// Recover the owned byte buffer (for recycling into a pool).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Re-encode `header` over this datagram's first 20 bytes (checksum
    /// recomputed). The single write-back for a forwarding pipeline that
    /// decoded the header once, mutated fields (TTL, ECN) in the copy,
    /// and wants the wire bytes to match again. `total_len` is forced to
    /// the buffer's actual length, so a stale copy cannot corrupt it.
    pub fn write_header(&mut self, header: &Ipv4Header) {
        let mut h = *header;
        h.total_len = self.bytes.len() as u16;
        h.encode_into(&mut self.bytes);
    }

    /// Wrap raw bytes that are already a well-formed datagram.
    ///
    /// Fails if the IPv4 header does not parse or the buffer is shorter than
    /// the header's `total_len`.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, WireError> {
        let header = Ipv4Header::decode(&bytes)?;
        if bytes.len() < header.total_len as usize {
            return Err(WireError::Truncated {
                layer: "ipv4-datagram",
                needed: header.total_len as usize,
                got: bytes.len(),
            });
        }
        Ok(Datagram { bytes })
    }

    /// Parse the IPv4 header.
    ///
    /// The checksum is *not* re-verified: a `Datagram` is only ever
    /// constructed from a valid header, and every in-place mutation below
    /// re-encodes a valid one — re-summing 20 bytes on each of the many
    /// per-hop reads was pure overhead. Paths that receive untrusted
    /// bytes go through [`Datagram::from_bytes`], which verifies.
    pub fn header(&self) -> Ipv4Header {
        Ipv4Header::decode_trusted(&self.bytes).expect("datagram invariant: valid IPv4 header")
    }

    /// The transport payload (bytes after the IPv4 header).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[IPV4_HEADER_LEN..]
    }

    /// Raw wire bytes of the whole datagram.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total length on the wire.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the datagram carries no transport payload.
    pub fn is_empty(&self) -> bool {
        self.len() <= IPV4_HEADER_LEN
    }

    /// Rewrite the ECN codepoint in place, fixing up the IPv4 checksum.
    ///
    /// This is the exact operation an ECN-bleaching router performs.
    pub fn set_ecn(&mut self, ecn: Ecn) {
        let mut h = self.header();
        h.ecn = ecn;
        h.encode_into(&mut self.bytes);
    }

    /// Decrement TTL in place (checksum fixed up). Returns the new TTL.
    pub fn decrement_ttl(&mut self) -> u8 {
        let mut h = self.header();
        h.ttl = h.ttl.saturating_sub(1);
        h.encode_into(&mut self.bytes);
        h.ttl
    }

    /// Convenience accessors used pervasively by the simulator fast path.
    pub fn src(&self) -> std::net::Ipv4Addr {
        self.header().src
    }

    /// Destination address.
    pub fn dst(&self) -> std::net::Ipv4Addr {
        self.header().dst
    }

    /// Current ECN codepoint.
    pub fn ecn(&self) -> Ecn {
        self.header().ecn
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> IpProto {
        self.header().protocol
    }

    /// Current TTL.
    pub fn ttl(&self) -> u8 {
        self.header().ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_header() -> Ipv4Header {
        Ipv4Header {
            dscp: Dscp::default(),
            ecn: Ecn::Ect0,
            total_len: 0,
            identification: 0x1234,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol: IpProto::Udp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 0, 2, 7),
        }
    }

    #[test]
    fn datagram_roundtrip_preserves_payload() {
        let d = Datagram::new(sample_header(), b"hello ecn");
        assert_eq!(d.payload(), b"hello ecn");
        assert_eq!(d.header().total_len as usize, d.len());
        let d2 = Datagram::from_bytes(d.as_bytes().to_vec()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn set_ecn_rewrites_bits_and_checksum() {
        let mut d = Datagram::new(sample_header(), b"x");
        assert_eq!(d.ecn(), Ecn::Ect0);
        d.set_ecn(Ecn::NotEct);
        assert_eq!(d.ecn(), Ecn::NotEct);
        // Checksum must still verify (header() would panic otherwise).
        let reparsed = Ipv4Header::decode(d.as_bytes()).unwrap();
        assert_eq!(reparsed.ecn, Ecn::NotEct);
    }

    #[test]
    fn decrement_ttl_stops_at_zero() {
        let mut h = sample_header();
        h.ttl = 1;
        let mut d = Datagram::new(h, b"");
        assert_eq!(d.decrement_ttl(), 0);
        assert_eq!(d.decrement_ttl(), 0);
    }

    #[test]
    fn from_bytes_rejects_truncated() {
        let d = Datagram::new(sample_header(), b"payload");
        let mut raw = d.as_bytes().to_vec();
        raw.truncate(raw.len() - 3);
        assert!(Datagram::from_bytes(raw).is_err());
    }

    #[test]
    fn is_empty_reflects_payload() {
        assert!(Datagram::new(sample_header(), b"").is_empty());
        assert!(!Datagram::new(sample_header(), b"x").is_empty());
    }
}
