//! # ecn-wire — byte-accurate wire formats
//!
//! Packet codecs used throughout the ECN/UDP measurement study
//! (McQuistin & Perkins, *"Is Explicit Congestion Notification usable with
//! UDP?"*, IMC 2015). Every header that the measurement campaign touches is
//! encoded to and decoded from real wire bytes:
//!
//! * [`ipv4`] — IPv4 headers with explicit DSCP/ECN fields (RFC 791 + RFC 3168),
//! * [`udp`] — UDP with pseudo-header checksums (RFC 768),
//! * [`tcp`] — TCP with the ECE/CWR/NS flags and options (RFC 793 + RFC 3168),
//! * [`icmp`] — ICMPv4 including time-exceeded/destination-unreachable with
//!   quoted datagrams, the raw material of ECN-aware traceroute (RFC 792),
//! * [`ntp`] — the 48-byte NTP packet (RFC 5905) used for UDP reachability
//!   probes,
//! * [`dns`] — queries/responses for pool.ntp.org discovery (RFC 1035),
//! * [`http`] — the HTTP/1.1 subset used for TCP reachability probes.
//!
//! The simulator's routers and middleboxes operate on these bytes — an
//! ECN-bleaching hop really rewrites the two ECN bits and fixes up the IPv4
//! checksum — so the measurement application observes middlebox interference
//! exactly as it would on a live network, through the same parsing code.
//!
//! Checksums are always computed on encode and verified on decode; decode
//! errors are explicit ([`WireError`]), never panics.

pub mod buf;
pub mod checksum;
pub mod dns;
pub mod ecn;
pub mod error;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod ntp;
pub mod rtp;
pub mod tcp;
pub mod udp;

pub use buf::WireBuf;
pub use checksum::internet_checksum;
pub use dns::{DnsFlags, DnsMessage, DnsQuestion, DnsRecord, DnsRecordData, QClass, QType, Rcode};
pub use ecn::{Dscp, Ecn};
pub use error::WireError;
pub use http::{HttpRequest, HttpResponse};
pub use icmp::{DestUnreachCode, IcmpMessage, QUOTE_BYTES};
pub use ipv4::{IpProto, Ipv4Header, IPV4_HEADER_LEN};
pub use ntp::{NtpMode, NtpPacket, NtpTimestamp, LEAP_UNSYNC, NTP_PACKET_LEN};
pub use rtp::{EcnFeedback, RtpHeader, RTP_HEADER_LEN};
pub use tcp::{TcpFlags, TcpHeader, TcpOption};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// A fully-formed IPv4 datagram: header plus transport payload bytes.
///
/// This is the unit the simulator moves between hops. It is deliberately a
/// plain owned buffer — middleboxes mutate it in place, pcap taps copy it,
/// and the host stack parses it layer by layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    bytes: Vec<u8>,
}

impl Datagram {
    /// Assemble a datagram from a header and payload, computing the header
    /// checksum and patching `total_len` to match.
    pub fn new(mut header: Ipv4Header, payload: &[u8]) -> Self {
        header.total_len = (IPV4_HEADER_LEN + payload.len()) as u16;
        let mut bytes = Vec::with_capacity(IPV4_HEADER_LEN + payload.len());
        header.encode(&mut bytes);
        bytes.extend_from_slice(payload);
        Datagram { bytes }
    }

    /// Assemble a datagram *into* a recycled buffer: `bytes` is cleared
    /// (capacity kept), the header is written with `total_len`/checksum
    /// patched after `write_payload` has appended the transport bytes.
    ///
    /// This is the allocation-free construction path: a buffer checked out
    /// of a pool flows through here, around the simulator, and back to the
    /// pool via [`Datagram::into_bytes`].
    pub fn compose(
        mut bytes: Vec<u8>,
        mut header: Ipv4Header,
        write_payload: impl FnOnce(&mut Vec<u8>),
    ) -> Self {
        bytes.clear();
        bytes.resize(IPV4_HEADER_LEN, 0);
        write_payload(&mut bytes);
        header.total_len = bytes.len() as u16;
        header.encode_into(&mut bytes);
        Datagram { bytes }
    }

    /// Recover the owned byte buffer (for recycling into a pool).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Re-encode `header` over this datagram's first 20 bytes (checksum
    /// recomputed). The single write-back for a forwarding pipeline that
    /// decoded the header once, mutated fields (TTL, ECN) in the copy,
    /// and wants the wire bytes to match again. `total_len` is forced to
    /// the buffer's actual length, so a stale copy cannot corrupt it.
    pub fn write_header(&mut self, header: &Ipv4Header) {
        let mut h = *header;
        h.total_len = self.bytes.len() as u16;
        h.encode_into(&mut self.bytes);
    }

    /// Wrap raw bytes that are already a well-formed datagram.
    ///
    /// Fails if the IPv4 header does not parse or the buffer is shorter than
    /// the header's `total_len`.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, WireError> {
        let header = Ipv4Header::decode(&bytes)?;
        if bytes.len() < header.total_len as usize {
            return Err(WireError::Truncated {
                layer: "ipv4-datagram",
                needed: header.total_len as usize,
                got: bytes.len(),
            });
        }
        Ok(Datagram { bytes })
    }

    /// Parse the IPv4 header.
    ///
    /// The checksum is *not* re-verified: a `Datagram` is only ever
    /// constructed from a valid header, and every in-place mutation below
    /// re-encodes a valid one — re-summing 20 bytes on each of the many
    /// per-hop reads was pure overhead. Paths that receive untrusted
    /// bytes go through [`Datagram::from_bytes`], which verifies.
    pub fn header(&self) -> Ipv4Header {
        Ipv4Header::decode_trusted(&self.bytes).expect("datagram invariant: valid IPv4 header")
    }

    /// The transport payload (bytes after the IPv4 header).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[IPV4_HEADER_LEN..]
    }

    /// Raw wire bytes of the whole datagram.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total length on the wire.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the datagram carries no transport payload.
    pub fn is_empty(&self) -> bool {
        self.len() <= IPV4_HEADER_LEN
    }

    /// Rewrite the ECN codepoint in place, fixing up the IPv4 checksum.
    ///
    /// This is the exact operation an ECN-bleaching router performs.
    pub fn set_ecn(&mut self, ecn: Ecn) {
        self.set_ecn_raw(ecn);
        self.refresh_header_checksum();
    }

    /// Decrement TTL in place (checksum fixed up). Returns the new TTL.
    pub fn decrement_ttl(&mut self) -> u8 {
        let ttl = self.bytes[8].saturating_sub(1);
        self.bytes[8] = ttl;
        self.refresh_header_checksum();
        ttl
    }

    /// Write the TTL byte *without* fixing the checksum. For forwarding
    /// pipelines that batch several field mutations and call
    /// [`Datagram::refresh_header_checksum`] once before the bytes are
    /// observed again.
    pub fn set_ttl_raw(&mut self, ttl: u8) {
        self.bytes[8] = ttl;
    }

    /// Write the two ECN bits *without* fixing the checksum (DSCP bits
    /// preserved). Pair with [`Datagram::refresh_header_checksum`].
    pub fn set_ecn_raw(&mut self, ecn: Ecn) {
        self.bytes[1] = (self.bytes[1] & !0b11) | ecn.bits();
    }

    /// Recompute the IPv4 header checksum over the current header bytes —
    /// the identical calculation [`Ipv4Header::encode`] performs, so a
    /// raw-mutated header refreshed through here is byte-for-byte what a
    /// decode → mutate → re-encode cycle would have produced.
    pub fn refresh_header_checksum(&mut self) {
        self.bytes[10] = 0;
        self.bytes[11] = 0;
        let ck = crate::checksum::finish(crate::checksum::sum_words(
            &self.bytes[..IPV4_HEADER_LEN],
            0,
        ));
        self.bytes[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Convenience accessors used pervasively by the simulator fast path.
    /// These read the fixed-offset fields straight off the wire bytes —
    /// a `Datagram` always holds a valid options-free IPv4 header, so no
    /// decode pass is needed.
    pub fn src(&self) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::new(
            self.bytes[12],
            self.bytes[13],
            self.bytes[14],
            self.bytes[15],
        )
    }

    /// Destination address.
    pub fn dst(&self) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::new(
            self.bytes[16],
            self.bytes[17],
            self.bytes[18],
            self.bytes[19],
        )
    }

    /// Current ECN codepoint.
    pub fn ecn(&self) -> Ecn {
        Ecn::from_bits(self.bytes[1])
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> IpProto {
        IpProto::from_number(self.bytes[9])
    }

    /// Current TTL.
    pub fn ttl(&self) -> u8 {
        self.bytes[8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_header() -> Ipv4Header {
        Ipv4Header {
            dscp: Dscp::default(),
            ecn: Ecn::Ect0,
            total_len: 0,
            identification: 0x1234,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol: IpProto::Udp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 0, 2, 7),
        }
    }

    #[test]
    fn datagram_roundtrip_preserves_payload() {
        let d = Datagram::new(sample_header(), b"hello ecn");
        assert_eq!(d.payload(), b"hello ecn");
        assert_eq!(d.header().total_len as usize, d.len());
        let d2 = Datagram::from_bytes(d.as_bytes().to_vec()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn set_ecn_rewrites_bits_and_checksum() {
        let mut d = Datagram::new(sample_header(), b"x");
        assert_eq!(d.ecn(), Ecn::Ect0);
        d.set_ecn(Ecn::NotEct);
        assert_eq!(d.ecn(), Ecn::NotEct);
        // Checksum must still verify (header() would panic otherwise).
        let reparsed = Ipv4Header::decode(d.as_bytes()).unwrap();
        assert_eq!(reparsed.ecn, Ecn::NotEct);
    }

    #[test]
    fn decrement_ttl_stops_at_zero() {
        let mut h = sample_header();
        h.ttl = 1;
        let mut d = Datagram::new(h, b"");
        assert_eq!(d.decrement_ttl(), 0);
        assert_eq!(d.decrement_ttl(), 0);
    }

    #[test]
    fn from_bytes_rejects_truncated() {
        let d = Datagram::new(sample_header(), b"payload");
        let mut raw = d.as_bytes().to_vec();
        raw.truncate(raw.len() - 3);
        assert!(Datagram::from_bytes(raw).is_err());
    }

    #[test]
    fn is_empty_reflects_payload() {
        assert!(Datagram::new(sample_header(), b"").is_empty());
        assert!(!Datagram::new(sample_header(), b"x").is_empty());
    }

    #[test]
    fn direct_accessors_agree_with_decoded_header() {
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            let mut h = sample_header();
            h.ecn = ecn;
            h.ttl = 37;
            h.protocol = IpProto::Tcp;
            let d = Datagram::new(h, b"payload");
            let full = d.header();
            assert_eq!(d.src(), full.src);
            assert_eq!(d.dst(), full.dst);
            assert_eq!(d.ecn(), full.ecn);
            assert_eq!(d.protocol(), full.protocol);
            assert_eq!(d.ttl(), full.ttl);
        }
    }

    #[test]
    fn raw_mutation_plus_refresh_matches_reencode_bytes() {
        // The forwarding fast path (raw TTL/ECN writes + one checksum
        // refresh) must produce byte-identical wire output to the owned
        // decode → mutate → write_header cycle it replaces.
        for (ttl, ecn) in [(63u8, Ecn::NotEct), (1, Ecn::Ce), (0, Ecn::Ect1)] {
            let mut h = sample_header();
            h.dscp = Dscp::EF; // ensure DSCP bits survive the ECN write
            let mut fast = Datagram::new(h, b"some payload");
            let mut slow = fast.clone();

            fast.set_ttl_raw(ttl);
            fast.set_ecn_raw(ecn);
            fast.refresh_header_checksum();

            let mut hh = slow.header();
            hh.ttl = ttl;
            hh.ecn = ecn;
            slow.write_header(&hh);

            assert_eq!(fast.as_bytes(), slow.as_bytes());
            // and the result still passes a verifying decode
            assert!(Ipv4Header::decode(fast.as_bytes()).is_ok());
        }
    }
}
