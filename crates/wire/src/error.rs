//! Decode-side error type shared by all codecs.

use std::fmt;

/// Why a buffer failed to decode as a given wire format.
///
/// Decode errors are ordinary values: a measurement host receiving a mangled
/// packet logs and drops it, exactly as a production stack would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the fixed part of the header.
    Truncated {
        /// Which protocol layer was being decoded.
        layer: &'static str,
        /// Minimum number of bytes the decoder needed.
        needed: usize,
        /// Number of bytes actually available.
        got: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Which protocol layer carried the checksum.
        layer: &'static str,
        /// Checksum found in the packet.
        found: u16,
        /// Checksum the decoder computed.
        computed: u16,
    },
    /// A field held a value the decoder cannot represent.
    InvalidField {
        /// Which protocol layer was being decoded.
        layer: &'static str,
        /// Field name.
        field: &'static str,
        /// Offending value, widened.
        value: u64,
    },
    /// Free-form malformation (e.g. an HTTP request line with two spaces
    /// missing, or a DNS name with a looping compression pointer).
    Malformed {
        /// Which protocol layer was being decoded.
        layer: &'static str,
        /// Human-readable description.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (needed {needed} bytes, got {got})")
            }
            WireError::BadChecksum {
                layer,
                found,
                computed,
            } => write!(
                f,
                "{layer}: bad checksum (found {found:#06x}, computed {computed:#06x})"
            ),
            WireError::InvalidField {
                layer,
                field,
                value,
            } => {
                write!(f, "{layer}: invalid {field} value {value}")
            }
            WireError::Malformed { layer, what } => write!(f, "{layer}: malformed ({what})"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            layer: "udp",
            needed: 8,
            got: 3,
        };
        assert_eq!(e.to_string(), "udp: truncated (needed 8 bytes, got 3)");

        let e = WireError::BadChecksum {
            layer: "ipv4",
            found: 0xdead,
            computed: 0xbeef,
        };
        assert!(e.to_string().contains("0xdead"));
        assert!(e.to_string().contains("0xbeef"));

        let e = WireError::InvalidField {
            layer: "ipv4",
            field: "version",
            value: 6,
        };
        assert!(e.to_string().contains("version"));

        let e = WireError::Malformed {
            layer: "dns",
            what: "compression loop",
        };
        assert!(e.to_string().contains("compression loop"));
    }
}
