//! DNS message codec (RFC 1035) — the subset needed to scrape the NTP pool:
//! A-record queries against `pool.ntp.org` and its country/region
//! subdomains, with round-robin answers.

use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Query types used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QType {
    /// A host address (1).
    A,
    /// Any other type, preserved.
    Other(u16),
}

impl QType {
    fn value(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Other(v) => v,
        }
    }
    fn from_value(v: u16) -> QType {
        match v {
            1 => QType::A,
            other => QType::Other(other),
        }
    }
}

/// Query classes (IN is the only one in live use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QClass {
    /// The Internet (1).
    In,
    /// Anything else, preserved.
    Other(u16),
}

impl QClass {
    fn value(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Other(v) => v,
        }
    }
    fn from_value(v: u16) -> QClass {
        match v {
            1 => QClass::In,
            other => QClass::Other(other),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rcode {
    /// 0 — no error.
    NoError,
    /// 1 — format error.
    FormErr,
    /// 2 — server failure.
    ServFail,
    /// 3 — no such name.
    NxDomain,
    /// 4 — not implemented.
    NotImp,
    /// 5 — refused.
    Refused,
    /// Anything else.
    Other(u8),
}

impl Rcode {
    fn value(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }
    fn from_value(v: u8) -> Rcode {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag word, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsFlags {
    /// Response (true) or query (false).
    pub response: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncated.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl DnsFlags {
    /// Flags for a standard recursive query.
    pub fn query() -> DnsFlags {
        DnsFlags {
            response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// Flags for an authoritative answer to `q`.
    pub fn answer_to(q: DnsFlags, rcode: Rcode) -> DnsFlags {
        DnsFlags {
            response: true,
            opcode: q.opcode,
            authoritative: true,
            truncated: false,
            recursion_desired: q.recursion_desired,
            recursion_available: true,
            rcode,
        }
    }

    fn encode(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 0x8000;
        }
        v |= u16::from(self.opcode & 0x0f) << 11;
        if self.authoritative {
            v |= 0x0400;
        }
        if self.truncated {
            v |= 0x0200;
        }
        if self.recursion_desired {
            v |= 0x0100;
        }
        if self.recursion_available {
            v |= 0x0080;
        }
        v |= u16::from(self.rcode.value());
        v
    }

    fn decode(v: u16) -> DnsFlags {
        DnsFlags {
            response: v & 0x8000 != 0,
            opcode: ((v >> 11) & 0x0f) as u8,
            authoritative: v & 0x0400 != 0,
            truncated: v & 0x0200 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            rcode: Rcode::from_value(v as u8),
        }
    }
}

/// One question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsQuestion {
    /// Fully-qualified name, stored lowercase without the trailing dot.
    pub name: String,
    /// Query type.
    pub qtype: QType,
    /// Query class.
    pub qclass: QClass,
}

/// Resource-record payloads the codec understands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// Opaque rdata, preserved.
    Raw(Vec<u8>),
}

/// One answer/authority/additional record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// Owner name.
    pub name: String,
    /// Record type.
    pub rtype: QType,
    /// Record class.
    pub rclass: QClass,
    /// Time to live, seconds. The pool uses short TTLs (~150 s) so clients
    /// re-resolve and rotate through servers.
    pub ttl: u32,
    /// Payload.
    pub data: DnsRecordData,
}

/// A DNS message: header + sections. Authority/additional sections are
/// carried as answers-like records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: DnsFlags,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Build a standard A query for `name`.
    pub fn a_query(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            flags: DnsFlags::query(),
            questions: vec![DnsQuestion {
                name: name.trim_end_matches('.').to_ascii_lowercase(),
                qtype: QType::A,
                qclass: QClass::In,
            }],
            answers: Vec::new(),
        }
    }

    /// Build an authoritative response to `query` with the given A records.
    pub fn a_response(query: &DnsMessage, ttl: u32, addrs: &[Ipv4Addr]) -> DnsMessage {
        let rcode = if addrs.is_empty() {
            Rcode::NxDomain
        } else {
            Rcode::NoError
        };
        let name = query
            .questions
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_default();
        DnsMessage {
            id: query.id,
            flags: DnsFlags::answer_to(query.flags, rcode),
            questions: query.questions.clone(),
            answers: addrs
                .iter()
                .map(|&a| DnsRecord {
                    name: name.clone(),
                    rtype: QType::A,
                    rclass: QClass::In,
                    ttl,
                    data: DnsRecordData::A(a),
                })
                .collect(),
        }
    }

    /// All IPv4 addresses in the answer section.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                DnsRecordData::A(a) => Some(a),
                DnsRecordData::Raw(_) => None,
            })
            .collect()
    }

    /// Encode to wire bytes, no name compression (convenience wrapper;
    /// prefer [`DnsMessage::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Append the wire bytes (no name compression) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.encode().to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // nscount
        out.extend_from_slice(&0u16.to_be_bytes()); // arcount
        for q in &self.questions {
            encode_name(&q.name, out);
            out.extend_from_slice(&q.qtype.value().to_be_bytes());
            out.extend_from_slice(&q.qclass.value().to_be_bytes());
        }
        for r in &self.answers {
            encode_name(&r.name, out);
            out.extend_from_slice(&r.rtype.value().to_be_bytes());
            out.extend_from_slice(&r.rclass.value().to_be_bytes());
            out.extend_from_slice(&r.ttl.to_be_bytes());
            match &r.data {
                DnsRecordData::A(a) => {
                    out.extend_from_slice(&4u16.to_be_bytes());
                    out.extend_from_slice(&a.octets());
                }
                DnsRecordData::Raw(raw) => {
                    out.extend_from_slice(&(raw.len() as u16).to_be_bytes());
                    out.extend_from_slice(raw);
                }
            }
        }
    }

    /// Decode from wire bytes. Handles compression pointers in names.
    pub fn decode(buf: &[u8]) -> Result<DnsMessage, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: 12,
                got: buf.len(),
            });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = DnsFlags::decode(u16::from_be_bytes([buf[2], buf[3]]));
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        // NS/AR records are parsed and discarded.
        let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;

        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let (name, next) = decode_name(buf, pos)?;
            pos = next;
            if buf.len() < pos + 4 {
                return Err(WireError::Truncated {
                    layer: "dns",
                    needed: pos + 4,
                    got: buf.len(),
                });
            }
            questions.push(DnsQuestion {
                name,
                qtype: QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]])),
                qclass: QClass::from_value(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]])),
            });
            pos += 4;
        }
        let mut answers = Vec::with_capacity(ancount);
        for i in 0..(ancount + nscount + arcount) {
            let (record, next) = decode_record(buf, pos)?;
            pos = next;
            if i < ancount {
                answers.push(record);
            }
        }
        Ok(DnsMessage {
            id,
            flags,
            questions,
            answers,
        })
    }
}

fn encode_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
}

/// Walk a possibly-compressed name starting at `pos`, invoking `on_label`
/// for each raw label, and return the offset just past the name in the
/// *original* stream. The single validation path behind both the owned
/// decode and the allocation-free scans.
fn walk_name(
    buf: &[u8],
    mut pos: usize,
    mut on_label: impl FnMut(&[u8]),
) -> Result<usize, WireError> {
    let mut jumped = false;
    let mut after_jump = 0usize;
    let mut hops = 0u32;
    loop {
        if pos >= buf.len() {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 1,
                got: buf.len(),
            });
        }
        let len = buf[pos] as usize;
        if len & 0xc0 == 0xc0 {
            // compression pointer
            if pos + 1 >= buf.len() {
                return Err(WireError::Truncated {
                    layer: "dns",
                    needed: pos + 2,
                    got: buf.len(),
                });
            }
            let target = ((len & 0x3f) << 8) | buf[pos + 1] as usize;
            if !jumped {
                after_jump = pos + 2;
                jumped = true;
            }
            hops += 1;
            if hops > 16 {
                return Err(WireError::Malformed {
                    layer: "dns",
                    what: "compression loop",
                });
            }
            pos = target;
            continue;
        }
        if len == 0 {
            pos += 1;
            break;
        }
        if len > 63 {
            return Err(WireError::Malformed {
                layer: "dns",
                what: "label length > 63",
            });
        }
        if pos + 1 + len > buf.len() {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 1 + len,
                got: buf.len(),
            });
        }
        on_label(&buf[pos + 1..pos + 1 + len]);
        pos += 1 + len;
    }
    Ok(if jumped { after_jump } else { pos })
}

/// Append a name's labels (dot-separated, case-folded) to `out`.
fn decode_name_into(buf: &[u8], pos: usize, out: &mut String) -> Result<usize, WireError> {
    walk_name(buf, pos, |label| {
        if !out.is_empty() {
            out.push('.');
        }
        match std::str::from_utf8(label) {
            Ok(s) => out.extend(s.chars().map(|c| c.to_ascii_lowercase())),
            // rare: preserve the historical lossy replacement exactly
            Err(_) => out.push_str(&String::from_utf8_lossy(label).to_ascii_lowercase()),
        }
    })
}

/// Decode a possibly-compressed name starting at `pos`; returns the name and
/// the offset just past it in the *original* stream.
fn decode_name(buf: &[u8], pos: usize) -> Result<(String, usize), WireError> {
    let mut name = String::new();
    let next = decode_name_into(buf, pos, &mut name)?;
    Ok((name, next))
}

/// Append the wire bytes of a standard A query for `name` to `out` —
/// byte-identical to `DnsMessage::a_query(id, name).encode()` without
/// building the owned message. The discovery loop's per-query path.
pub fn encode_a_query_into(id: u16, name: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&DnsFlags::query().encode().to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    // encode_name with the a_query case fold applied per label
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        let n = bytes.len().min(63);
        out.push(n as u8);
        out.extend(bytes[..n].iter().map(|b| b.to_ascii_lowercase()));
    }
    out.push(0);
    out.extend_from_slice(&QType::A.value().to_be_bytes());
    out.extend_from_slice(&QClass::In.value().to_be_bytes());
}

/// Borrowed view of a query's header and first question, produced by
/// [`read_query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryView {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: DnsFlags,
    /// Question count (callers needing more than one question fall back
    /// to [`DnsMessage::decode`]).
    pub questions: u16,
    /// First question's type.
    pub qtype: QType,
    /// First question's class.
    pub qclass: QClass,
}

/// Parse a message's header and first question, folding the question name
/// into `name_out` (cleared first), while validating the *whole* message
/// exactly as [`DnsMessage::decode`] does. Returns `Ok(None)` for a valid
/// message with an empty question section.
pub fn read_query(buf: &[u8], name_out: &mut String) -> Result<Option<QueryView>, WireError> {
    name_out.clear();
    if buf.len() < 12 {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: 12,
            got: buf.len(),
        });
    }
    let id = u16::from_be_bytes([buf[0], buf[1]]);
    let flags = DnsFlags::decode(u16::from_be_bytes([buf[2], buf[3]]));
    let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
    let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
    let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
    let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;

    let mut pos = 12;
    let mut first: Option<(QType, QClass)> = None;
    for q in 0..qdcount {
        pos = if q == 0 {
            decode_name_into(buf, pos, name_out)?
        } else {
            walk_name(buf, pos, |_| {})?
        };
        if buf.len() < pos + 4 {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 4,
                got: buf.len(),
            });
        }
        if q == 0 {
            first = Some((
                QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]])),
                QClass::from_value(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]])),
            ));
        }
        pos += 4;
    }
    for _ in 0..(ancount + nscount + arcount) {
        pos = skip_record(buf, pos)?;
    }
    Ok(first.map(|(qtype, qclass)| QueryView {
        id,
        flags,
        questions: qdcount as u16,
        qtype,
        qclass,
    }))
}

/// Append an authoritative single-question A response to `out` —
/// byte-identical to `DnsMessage::a_response(&query, ttl, addrs).encode()`
/// when `query` has exactly one question matching `view`/`name`.
pub fn encode_a_response_into(
    view: &QueryView,
    name: &str,
    ttl: u32,
    addrs: &[Ipv4Addr],
    out: &mut Vec<u8>,
) {
    let rcode = if addrs.is_empty() {
        Rcode::NxDomain
    } else {
        Rcode::NoError
    };
    out.extend_from_slice(&view.id.to_be_bytes());
    out.extend_from_slice(
        &DnsFlags::answer_to(view.flags, rcode)
            .encode()
            .to_be_bytes(),
    );
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&(addrs.len() as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // nscount
    out.extend_from_slice(&0u16.to_be_bytes()); // arcount
    encode_name(name, out);
    out.extend_from_slice(&view.qtype.value().to_be_bytes());
    out.extend_from_slice(&view.qclass.value().to_be_bytes());
    for a in addrs {
        encode_name(name, out);
        out.extend_from_slice(&QType::A.value().to_be_bytes());
        out.extend_from_slice(&QClass::In.value().to_be_bytes());
        out.extend_from_slice(&ttl.to_be_bytes());
        out.extend_from_slice(&4u16.to_be_bytes());
        out.extend_from_slice(&a.octets());
    }
}

/// Walk a whole message exactly as [`DnsMessage::decode`] does — same
/// accept/reject behaviour — invoking `f` with each A record in the answer
/// section, without allocating. The discovery loop's per-response path.
pub fn for_each_a_record(buf: &[u8], mut f: impl FnMut(Ipv4Addr)) -> Result<(), WireError> {
    if buf.len() < 12 {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: 12,
            got: buf.len(),
        });
    }
    let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
    let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
    let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
    let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;
    let mut pos = 12;
    for _ in 0..qdcount {
        pos = walk_name(buf, pos, |_| {})?;
        if buf.len() < pos + 4 {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 4,
                got: buf.len(),
            });
        }
        pos += 4;
    }
    for i in 0..(ancount + nscount + arcount) {
        let (rtype, rdstart, rdlen, next) = record_fields(buf, pos)?;
        if i < ancount && rtype == QType::A && rdlen == 4 {
            f(Ipv4Addr::new(
                buf[rdstart],
                buf[rdstart + 1],
                buf[rdstart + 2],
                buf[rdstart + 3],
            ));
        }
        pos = next;
    }
    Ok(())
}

/// Validate one resource record without materialising it; returns
/// `(rtype, rdata offset, rdata length, offset past the record)`.
fn record_fields(buf: &[u8], pos: usize) -> Result<(QType, usize, usize, usize), WireError> {
    let mut pos = walk_name(buf, pos, |_| {})?;
    if buf.len() < pos + 10 {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + 10,
            got: buf.len(),
        });
    }
    let rtype = QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]]));
    let rdlen = u16::from_be_bytes([buf[pos + 8], buf[pos + 9]]) as usize;
    pos += 10;
    if buf.len() < pos + rdlen {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + rdlen,
            got: buf.len(),
        });
    }
    Ok((rtype, pos, rdlen, pos + rdlen))
}

/// Validate one resource record, returning the offset just past it.
fn skip_record(buf: &[u8], pos: usize) -> Result<usize, WireError> {
    record_fields(buf, pos).map(|(_, _, _, next)| next)
}

fn decode_record(buf: &[u8], pos: usize) -> Result<(DnsRecord, usize), WireError> {
    let (name, mut pos) = decode_name(buf, pos)?;
    if buf.len() < pos + 10 {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + 10,
            got: buf.len(),
        });
    }
    let rtype = QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]]));
    let rclass = QClass::from_value(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]]));
    let ttl = u32::from_be_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
    let rdlen = u16::from_be_bytes([buf[pos + 8], buf[pos + 9]]) as usize;
    pos += 10;
    if buf.len() < pos + rdlen {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + rdlen,
            got: buf.len(),
        });
    }
    let rdata = &buf[pos..pos + rdlen];
    pos += rdlen;
    let data = match (rtype, rdlen) {
        (QType::A, 4) => DnsRecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3])),
        _ => DnsRecordData::Raw(rdata.to_vec()),
    };
    Ok((
        DnsRecord {
            name,
            rtype,
            rclass,
            ttl,
            data,
        },
        pos,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::a_query(0x5151, "uk.pool.ntp.org");
        let bytes = q.encode();
        let d = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(d, q);
        assert_eq!(d.questions[0].name, "uk.pool.ntp.org");
        assert!(!d.flags.response);
    }

    #[test]
    fn response_roundtrip_with_multiple_answers() {
        let q = DnsMessage::a_query(7, "pool.ntp.org");
        let addrs = vec![
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(192, 0, 2, 2),
            Ipv4Addr::new(192, 0, 2, 3),
            Ipv4Addr::new(192, 0, 2, 4),
        ];
        let r = DnsMessage::a_response(&q, 150, &addrs);
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(d.a_records(), addrs);
        assert!(d.flags.response);
        assert!(d.flags.authoritative);
        assert_eq!(d.id, 7);
        assert_eq!(d.flags.rcode, Rcode::NoError);
        assert_eq!(d.answers[0].ttl, 150);
    }

    #[test]
    fn empty_response_is_nxdomain() {
        let q = DnsMessage::a_query(9, "zz.pool.ntp.org");
        let r = DnsMessage::a_response(&q, 150, &[]);
        assert_eq!(r.flags.rcode, Rcode::NxDomain);
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert!(d.a_records().is_empty());
        assert_eq!(d.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn names_are_case_folded() {
        let q = DnsMessage::a_query(1, "Pool.NTP.Org");
        assert_eq!(q.questions[0].name, "pool.ntp.org");
        let d = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(d.questions[0].name, "pool.ntp.org");
    }

    #[test]
    fn compression_pointers_decode() {
        // Hand-build a response whose answer name is a pointer to the
        // question name at offset 12 (how real servers compress).
        let q = DnsMessage::a_query(3, "pool.ntp.org");
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes()); // ancount = 1
        bytes[2..4].copy_from_slice(
            &DnsFlags::answer_to(q.flags, Rcode::NoError)
                .encode()
                .to_be_bytes(),
        );
        bytes.extend_from_slice(&[0xc0, 12]); // pointer to question name
        bytes.extend_from_slice(&1u16.to_be_bytes()); // type A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // class IN
        bytes.extend_from_slice(&60u32.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[203, 0, 113, 5]);
        let d = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(d.answers[0].name, "pool.ntp.org");
        assert_eq!(d.a_records(), vec![Ipv4Addr::new(203, 0, 113, 5)]);
    }

    #[test]
    fn compression_loop_rejected() {
        let q = DnsMessage::a_query(3, "pool.ntp.org");
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        let loop_at = bytes.len();
        // pointer to itself
        bytes.extend_from_slice(&[0xc0 | ((loop_at >> 8) as u8 & 0x3f), loop_at as u8]);
        bytes.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            DnsMessage::decode(&bytes),
            Err(WireError::Malformed {
                what: "compression loop",
                ..
            })
        ));
    }

    #[test]
    fn truncated_buffers_rejected() {
        let q = DnsMessage::a_query(1, "pool.ntp.org");
        let bytes = q.encode();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(DnsMessage::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn fast_query_encode_matches_owned_path() {
        for name in ["pool.ntp.org", "UK.Pool.NTP.Org.", "a..b", ""] {
            let owned = DnsMessage::a_query(7, name).encode();
            let mut fast = Vec::new();
            encode_a_query_into(7, name, &mut fast);
            assert_eq!(owned, fast, "{name:?}");
        }
    }

    #[test]
    fn read_query_and_fast_response_match_owned_path() {
        let q = DnsMessage::a_query(42, "de.pool.ntp.org");
        let qbytes = q.encode();
        let mut name = String::new();
        let view = read_query(&qbytes, &mut name).unwrap().unwrap();
        assert_eq!(view.id, 42);
        assert_eq!(view.questions, 1);
        assert_eq!(name, "de.pool.ntp.org");

        for addrs in [
            vec![],
            vec![Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(192, 0, 2, 9)],
        ] {
            let owned = DnsMessage::a_response(&q, 150, &addrs).encode();
            let mut fast = Vec::new();
            encode_a_response_into(&view, &name, 150, &addrs, &mut fast);
            assert_eq!(owned, fast, "{} answers", addrs.len());
        }
    }

    #[test]
    fn read_query_rejects_what_decode_rejects() {
        let good = DnsMessage::a_query(1, "pool.ntp.org").encode();
        let mut name = String::new();
        for cut in [0, 5, 11, good.len() - 1] {
            assert_eq!(
                DnsMessage::decode(&good[..cut]).is_ok(),
                read_query(&good[..cut], &mut name).is_ok(),
                "cut={cut}"
            );
        }
        assert!(read_query(b"\x00\x01", &mut name).is_err());
    }

    #[test]
    fn for_each_a_record_matches_a_records() {
        let q = DnsMessage::a_query(7, "pool.ntp.org");
        let addrs = vec![Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(192, 0, 2, 2)];
        let mut r = DnsMessage::a_response(&q, 150, &addrs);
        r.answers.push(DnsRecord {
            name: "pool.ntp.org".into(),
            rtype: QType::Other(16),
            rclass: QClass::In,
            ttl: 60,
            data: DnsRecordData::Raw(vec![1, 2, 3]),
        });
        let bytes = r.encode();
        let mut got = Vec::new();
        for_each_a_record(&bytes, |a| got.push(a)).unwrap();
        assert_eq!(got, DnsMessage::decode(&bytes).unwrap().a_records());
        // truncated buffers rejected identically
        for cut in [0, 11, bytes.len() - 1] {
            assert_eq!(
                DnsMessage::decode(&bytes[..cut]).is_ok(),
                for_each_a_record(&bytes[..cut], |_| {}).is_ok(),
                "cut={cut}"
            );
        }
        // compression pointers resolve the same way
        let mut compressed = DnsMessage::a_query(3, "pool.ntp.org").encode();
        compressed[6..8].copy_from_slice(&1u16.to_be_bytes());
        compressed.extend_from_slice(&[0xc0, 12]);
        compressed.extend_from_slice(&1u16.to_be_bytes());
        compressed.extend_from_slice(&1u16.to_be_bytes());
        compressed.extend_from_slice(&60u32.to_be_bytes());
        compressed.extend_from_slice(&4u16.to_be_bytes());
        compressed.extend_from_slice(&[203, 0, 113, 5]);
        let mut got = Vec::new();
        for_each_a_record(&compressed, |a| got.push(a)).unwrap();
        assert_eq!(got, vec![Ipv4Addr::new(203, 0, 113, 5)]);
    }

    #[test]
    fn non_a_rdata_preserved_raw() {
        let q = DnsMessage::a_query(4, "pool.ntp.org");
        let mut r = DnsMessage::a_response(&q, 60, &[Ipv4Addr::new(1, 2, 3, 4)]);
        r.answers.push(DnsRecord {
            name: "pool.ntp.org".into(),
            rtype: QType::Other(16), // TXT
            rclass: QClass::In,
            ttl: 60,
            data: DnsRecordData::Raw(vec![4, b't', b'e', b's', b't']),
        });
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(d.answers.len(), 2);
        assert_eq!(
            d.answers[1].data,
            DnsRecordData::Raw(vec![4, b't', b'e', b's', b't'])
        );
        // a_records skips the TXT record
        assert_eq!(d.a_records(), vec![Ipv4Addr::new(1, 2, 3, 4)]);
    }
}
