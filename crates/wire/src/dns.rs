//! DNS message codec (RFC 1035) — the subset needed to scrape the NTP pool:
//! A-record queries against `pool.ntp.org` and its country/region
//! subdomains, with round-robin answers.

use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Query types used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QType {
    /// A host address (1).
    A,
    /// Any other type, preserved.
    Other(u16),
}

impl QType {
    fn value(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Other(v) => v,
        }
    }
    fn from_value(v: u16) -> QType {
        match v {
            1 => QType::A,
            other => QType::Other(other),
        }
    }
}

/// Query classes (IN is the only one in live use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QClass {
    /// The Internet (1).
    In,
    /// Anything else, preserved.
    Other(u16),
}

impl QClass {
    fn value(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Other(v) => v,
        }
    }
    fn from_value(v: u16) -> QClass {
        match v {
            1 => QClass::In,
            other => QClass::Other(other),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rcode {
    /// 0 — no error.
    NoError,
    /// 1 — format error.
    FormErr,
    /// 2 — server failure.
    ServFail,
    /// 3 — no such name.
    NxDomain,
    /// 4 — not implemented.
    NotImp,
    /// 5 — refused.
    Refused,
    /// Anything else.
    Other(u8),
}

impl Rcode {
    fn value(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }
    fn from_value(v: u8) -> Rcode {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag word, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsFlags {
    /// Response (true) or query (false).
    pub response: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncated.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl DnsFlags {
    /// Flags for a standard recursive query.
    pub fn query() -> DnsFlags {
        DnsFlags {
            response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// Flags for an authoritative answer to `q`.
    pub fn answer_to(q: DnsFlags, rcode: Rcode) -> DnsFlags {
        DnsFlags {
            response: true,
            opcode: q.opcode,
            authoritative: true,
            truncated: false,
            recursion_desired: q.recursion_desired,
            recursion_available: true,
            rcode,
        }
    }

    fn encode(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 0x8000;
        }
        v |= u16::from(self.opcode & 0x0f) << 11;
        if self.authoritative {
            v |= 0x0400;
        }
        if self.truncated {
            v |= 0x0200;
        }
        if self.recursion_desired {
            v |= 0x0100;
        }
        if self.recursion_available {
            v |= 0x0080;
        }
        v |= u16::from(self.rcode.value());
        v
    }

    fn decode(v: u16) -> DnsFlags {
        DnsFlags {
            response: v & 0x8000 != 0,
            opcode: ((v >> 11) & 0x0f) as u8,
            authoritative: v & 0x0400 != 0,
            truncated: v & 0x0200 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            rcode: Rcode::from_value(v as u8),
        }
    }
}

/// One question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsQuestion {
    /// Fully-qualified name, stored lowercase without the trailing dot.
    pub name: String,
    /// Query type.
    pub qtype: QType,
    /// Query class.
    pub qclass: QClass,
}

/// Resource-record payloads the codec understands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// Opaque rdata, preserved.
    Raw(Vec<u8>),
}

/// One answer/authority/additional record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// Owner name.
    pub name: String,
    /// Record type.
    pub rtype: QType,
    /// Record class.
    pub rclass: QClass,
    /// Time to live, seconds. The pool uses short TTLs (~150 s) so clients
    /// re-resolve and rotate through servers.
    pub ttl: u32,
    /// Payload.
    pub data: DnsRecordData,
}

/// A DNS message: header + sections. Authority/additional sections are
/// carried as answers-like records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: DnsFlags,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Build a standard A query for `name`.
    pub fn a_query(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            flags: DnsFlags::query(),
            questions: vec![DnsQuestion {
                name: name.trim_end_matches('.').to_ascii_lowercase(),
                qtype: QType::A,
                qclass: QClass::In,
            }],
            answers: Vec::new(),
        }
    }

    /// Build an authoritative response to `query` with the given A records.
    pub fn a_response(query: &DnsMessage, ttl: u32, addrs: &[Ipv4Addr]) -> DnsMessage {
        let rcode = if addrs.is_empty() {
            Rcode::NxDomain
        } else {
            Rcode::NoError
        };
        let name = query
            .questions
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_default();
        DnsMessage {
            id: query.id,
            flags: DnsFlags::answer_to(query.flags, rcode),
            questions: query.questions.clone(),
            answers: addrs
                .iter()
                .map(|&a| DnsRecord {
                    name: name.clone(),
                    rtype: QType::A,
                    rclass: QClass::In,
                    ttl,
                    data: DnsRecordData::A(a),
                })
                .collect(),
        }
    }

    /// All IPv4 addresses in the answer section.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                DnsRecordData::A(a) => Some(a),
                DnsRecordData::Raw(_) => None,
            })
            .collect()
    }

    /// Encode to wire bytes, no name compression (convenience wrapper;
    /// prefer [`DnsMessage::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Append the wire bytes (no name compression) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.encode().to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // nscount
        out.extend_from_slice(&0u16.to_be_bytes()); // arcount
        for q in &self.questions {
            encode_name(&q.name, out);
            out.extend_from_slice(&q.qtype.value().to_be_bytes());
            out.extend_from_slice(&q.qclass.value().to_be_bytes());
        }
        for r in &self.answers {
            encode_name(&r.name, out);
            out.extend_from_slice(&r.rtype.value().to_be_bytes());
            out.extend_from_slice(&r.rclass.value().to_be_bytes());
            out.extend_from_slice(&r.ttl.to_be_bytes());
            match &r.data {
                DnsRecordData::A(a) => {
                    out.extend_from_slice(&4u16.to_be_bytes());
                    out.extend_from_slice(&a.octets());
                }
                DnsRecordData::Raw(raw) => {
                    out.extend_from_slice(&(raw.len() as u16).to_be_bytes());
                    out.extend_from_slice(raw);
                }
            }
        }
    }

    /// Decode from wire bytes. Handles compression pointers in names.
    pub fn decode(buf: &[u8]) -> Result<DnsMessage, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: 12,
                got: buf.len(),
            });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = DnsFlags::decode(u16::from_be_bytes([buf[2], buf[3]]));
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        // NS/AR records are parsed and discarded.
        let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;

        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let (name, next) = decode_name(buf, pos)?;
            pos = next;
            if buf.len() < pos + 4 {
                return Err(WireError::Truncated {
                    layer: "dns",
                    needed: pos + 4,
                    got: buf.len(),
                });
            }
            questions.push(DnsQuestion {
                name,
                qtype: QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]])),
                qclass: QClass::from_value(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]])),
            });
            pos += 4;
        }
        let mut answers = Vec::with_capacity(ancount);
        for i in 0..(ancount + nscount + arcount) {
            let (record, next) = decode_record(buf, pos)?;
            pos = next;
            if i < ancount {
                answers.push(record);
            }
        }
        Ok(DnsMessage {
            id,
            flags,
            questions,
            answers,
        })
    }
}

fn encode_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
}

/// Decode a possibly-compressed name starting at `pos`; returns the name and
/// the offset just past it in the *original* stream.
fn decode_name(buf: &[u8], mut pos: usize) -> Result<(String, usize), WireError> {
    let mut name = String::new();
    let mut jumped = false;
    let mut after_jump = 0usize;
    let mut hops = 0u32;
    loop {
        if pos >= buf.len() {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 1,
                got: buf.len(),
            });
        }
        let len = buf[pos] as usize;
        if len & 0xc0 == 0xc0 {
            // compression pointer
            if pos + 1 >= buf.len() {
                return Err(WireError::Truncated {
                    layer: "dns",
                    needed: pos + 2,
                    got: buf.len(),
                });
            }
            let target = ((len & 0x3f) << 8) | buf[pos + 1] as usize;
            if !jumped {
                after_jump = pos + 2;
                jumped = true;
            }
            hops += 1;
            if hops > 16 {
                return Err(WireError::Malformed {
                    layer: "dns",
                    what: "compression loop",
                });
            }
            pos = target;
            continue;
        }
        if len == 0 {
            pos += 1;
            break;
        }
        if len > 63 {
            return Err(WireError::Malformed {
                layer: "dns",
                what: "label length > 63",
            });
        }
        if pos + 1 + len > buf.len() {
            return Err(WireError::Truncated {
                layer: "dns",
                needed: pos + 1 + len,
                got: buf.len(),
            });
        }
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(&String::from_utf8_lossy(&buf[pos + 1..pos + 1 + len]).to_ascii_lowercase());
        pos += 1 + len;
    }
    Ok((name, if jumped { after_jump } else { pos }))
}

fn decode_record(buf: &[u8], pos: usize) -> Result<(DnsRecord, usize), WireError> {
    let (name, mut pos) = decode_name(buf, pos)?;
    if buf.len() < pos + 10 {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + 10,
            got: buf.len(),
        });
    }
    let rtype = QType::from_value(u16::from_be_bytes([buf[pos], buf[pos + 1]]));
    let rclass = QClass::from_value(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]]));
    let ttl = u32::from_be_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
    let rdlen = u16::from_be_bytes([buf[pos + 8], buf[pos + 9]]) as usize;
    pos += 10;
    if buf.len() < pos + rdlen {
        return Err(WireError::Truncated {
            layer: "dns",
            needed: pos + rdlen,
            got: buf.len(),
        });
    }
    let rdata = &buf[pos..pos + rdlen];
    pos += rdlen;
    let data = match (rtype, rdlen) {
        (QType::A, 4) => DnsRecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3])),
        _ => DnsRecordData::Raw(rdata.to_vec()),
    };
    Ok((
        DnsRecord {
            name,
            rtype,
            rclass,
            ttl,
            data,
        },
        pos,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::a_query(0x5151, "uk.pool.ntp.org");
        let bytes = q.encode();
        let d = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(d, q);
        assert_eq!(d.questions[0].name, "uk.pool.ntp.org");
        assert!(!d.flags.response);
    }

    #[test]
    fn response_roundtrip_with_multiple_answers() {
        let q = DnsMessage::a_query(7, "pool.ntp.org");
        let addrs = vec![
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(192, 0, 2, 2),
            Ipv4Addr::new(192, 0, 2, 3),
            Ipv4Addr::new(192, 0, 2, 4),
        ];
        let r = DnsMessage::a_response(&q, 150, &addrs);
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(d.a_records(), addrs);
        assert!(d.flags.response);
        assert!(d.flags.authoritative);
        assert_eq!(d.id, 7);
        assert_eq!(d.flags.rcode, Rcode::NoError);
        assert_eq!(d.answers[0].ttl, 150);
    }

    #[test]
    fn empty_response_is_nxdomain() {
        let q = DnsMessage::a_query(9, "zz.pool.ntp.org");
        let r = DnsMessage::a_response(&q, 150, &[]);
        assert_eq!(r.flags.rcode, Rcode::NxDomain);
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert!(d.a_records().is_empty());
        assert_eq!(d.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn names_are_case_folded() {
        let q = DnsMessage::a_query(1, "Pool.NTP.Org");
        assert_eq!(q.questions[0].name, "pool.ntp.org");
        let d = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(d.questions[0].name, "pool.ntp.org");
    }

    #[test]
    fn compression_pointers_decode() {
        // Hand-build a response whose answer name is a pointer to the
        // question name at offset 12 (how real servers compress).
        let q = DnsMessage::a_query(3, "pool.ntp.org");
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes()); // ancount = 1
        bytes[2..4].copy_from_slice(
            &DnsFlags::answer_to(q.flags, Rcode::NoError)
                .encode()
                .to_be_bytes(),
        );
        bytes.extend_from_slice(&[0xc0, 12]); // pointer to question name
        bytes.extend_from_slice(&1u16.to_be_bytes()); // type A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // class IN
        bytes.extend_from_slice(&60u32.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[203, 0, 113, 5]);
        let d = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(d.answers[0].name, "pool.ntp.org");
        assert_eq!(d.a_records(), vec![Ipv4Addr::new(203, 0, 113, 5)]);
    }

    #[test]
    fn compression_loop_rejected() {
        let q = DnsMessage::a_query(3, "pool.ntp.org");
        let mut bytes = q.encode();
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        let loop_at = bytes.len();
        // pointer to itself
        bytes.extend_from_slice(&[0xc0 | ((loop_at >> 8) as u8 & 0x3f), loop_at as u8]);
        bytes.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            DnsMessage::decode(&bytes),
            Err(WireError::Malformed {
                what: "compression loop",
                ..
            })
        ));
    }

    #[test]
    fn truncated_buffers_rejected() {
        let q = DnsMessage::a_query(1, "pool.ntp.org");
        let bytes = q.encode();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(DnsMessage::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn non_a_rdata_preserved_raw() {
        let q = DnsMessage::a_query(4, "pool.ntp.org");
        let mut r = DnsMessage::a_response(&q, 60, &[Ipv4Addr::new(1, 2, 3, 4)]);
        r.answers.push(DnsRecord {
            name: "pool.ntp.org".into(),
            rtype: QType::Other(16), // TXT
            rclass: QClass::In,
            ttl: 60,
            data: DnsRecordData::Raw(vec![4, b't', b'e', b's', b't']),
        });
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(d.answers.len(), 2);
        assert_eq!(
            d.answers[1].data,
            DnsRecordData::Raw(vec![4, b't', b'e', b's', b't'])
        );
        // a_records skips the TXT record
        assert_eq!(d.a_records(), vec![Ipv4Addr::new(1, 2, 3, 4)]);
    }
}
