//! The HTTP/1.1 subset used by the TCP reachability probe: a `GET` for the
//! root page, and the (typically `302 Found` redirect to
//! `www.pool.ntp.org`) response that pool web servers return.

use crate::error::WireError;
use serde::{Deserialize, Serialize};

/// An HTTP/1.1 request. Only what the prober sends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Request method (`GET`).
    pub method: String,
    /// Request target (`/`).
    pub path: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
}

impl HttpRequest {
    /// The probe request from paper §3: `GET /` with a `Host:` header.
    pub fn get_root(host: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: "/".into(),
            headers: vec![
                ("Host".into(), host.into()),
                ("User-Agent".into(), "ecn-udp-study/1.0".into()),
                ("Connection".into(), "close".into()),
            ],
        }
    }

    /// Serialise to wire form (convenience wrapper; prefer
    /// [`HttpRequest::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Append the wire form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        encode_headers(&self.headers, out);
    }

    /// Parse a request from a byte stream. Requires the full head
    /// (terminated by a blank line) to be present.
    pub fn decode(buf: &[u8]) -> Result<HttpRequest, WireError> {
        let head = head_of(buf)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && !p.is_empty() => (m, p, v),
            _ => {
                return Err(WireError::Malformed {
                    layer: "http",
                    what: "bad request line",
                })
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(WireError::Malformed {
                layer: "http",
                what: "unsupported HTTP version",
            });
        }
        Ok(HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            headers: parse_headers(lines)?,
        })
    }

    /// Value of a header, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Borrow-only request parse: validates the head exactly as
    /// [`HttpRequest::decode`] does (same accept/reject behaviour) and
    /// returns `(method, path)` without allocating. Servers that only
    /// need to route on the request line use this on the hot path.
    pub fn parse_meta(buf: &[u8]) -> Result<(&str, &str), WireError> {
        let head = head_of(buf)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && !p.is_empty() => (m, p, v),
            _ => {
                return Err(WireError::Malformed {
                    layer: "http",
                    what: "bad request line",
                })
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(WireError::Malformed {
                layer: "http",
                what: "unsupported HTTP version",
            });
        }
        validate_headers(lines)?;
        Ok((method, path))
    }
}

fn encode_headers(headers: &[(String, String)], out: &mut Vec<u8>) {
    for (k, v) in headers {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

/// Decimal-format `v` into `buf`, returning the digit count (no heap).
fn encode_u16(v: u16, buf: &mut [u8; 5]) -> usize {
    let mut tmp = [0u8; 5];
    let mut v = v;
    let mut i = 0;
    loop {
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        i += 1;
        if v == 0 {
            break;
        }
    }
    for (j, d) in tmp[..i].iter().rev().enumerate() {
        buf[j] = *d;
    }
    i
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code (e.g. 302).
    pub status: u16,
    /// Reason phrase (e.g. `Found`).
    pub reason: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The canonical pool-member response: a redirect to the pool website.
    pub fn pool_redirect() -> HttpResponse {
        let body: Vec<u8> = b"<html><head><title>302 Found</title></head>\
              <body>This is a member of the NTP pool. See \
              <a href=\"http://www.pool.ntp.org/\">www.pool.ntp.org</a>.</body></html>"
            .to_vec();
        HttpResponse {
            status: 302,
            reason: "Found".into(),
            headers: vec![
                ("Location".into(), "http://www.pool.ntp.org/".into()),
                ("Content-Type".into(), "text/html".into()),
                ("Content-Length".into(), body.len().to_string()),
                ("Connection".into(), "close".into()),
            ],
            body,
        }
    }

    /// A plain 200 response (a few pool hosts serve their own page).
    pub fn ok_with_body(body: &[u8]) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![
                ("Content-Type".into(), "text/html".into()),
                ("Content-Length".into(), body.len().to_string()),
                ("Connection".into(), "close".into()),
            ],
            body: body.to_vec(),
        }
    }

    /// Serialise to wire form (convenience wrapper; prefer
    /// [`HttpResponse::encode_into`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.encode_into(&mut out);
        out
    }

    /// Append the wire form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"HTTP/1.1 ");
        let mut status = [0u8; 5];
        let n = encode_u16(self.status, &mut status);
        out.extend_from_slice(&status[..n]);
        out.push(b' ');
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\n");
        encode_headers(&self.headers, out);
        out.extend_from_slice(&self.body);
    }

    /// Parse a response. The body is everything after the head, trimmed to
    /// `Content-Length` if present (a prefix is accepted when the stream was
    /// cut short, matching how the prober treats half-closed connections).
    pub fn decode(buf: &[u8]) -> Result<HttpResponse, WireError> {
        let head = head_of(buf)?;
        let head_len = head.len() + 4;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(WireError::Malformed {
                layer: "http",
                what: "bad status line version",
            });
        }
        let status: u16 =
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(WireError::Malformed {
                    layer: "http",
                    what: "bad status code",
                })?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let mut body = buf[head_len.min(buf.len())..].to_vec();
        if let Some(cl) =
            header_lookup(&headers, "Content-Length").and_then(|v| v.parse::<usize>().ok())
        {
            body.truncate(cl);
        }
        Ok(HttpResponse {
            status,
            reason,
            headers,
            body,
        })
    }

    /// Value of a header, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Status code alone, validated exactly as [`HttpResponse::decode`]
    /// validates the head — succeeds iff `decode` would — without
    /// allocating. The prober's verdict only needs the status.
    pub fn status_of(buf: &[u8]) -> Result<u16, WireError> {
        let head = head_of(buf)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(WireError::Malformed {
                layer: "http",
                what: "bad status line version",
            });
        }
        let status: u16 =
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(WireError::Malformed {
                    layer: "http",
                    what: "bad status code",
                })?;
        validate_headers(lines)?;
        Ok(status)
    }

    /// Is the whole head plus declared body present in `buf`? The prober
    /// uses this to decide when a response is complete.
    pub fn is_complete(buf: &[u8]) -> bool {
        match head_of(buf) {
            Err(_) => false,
            Ok(head) => {
                let head_len = head.len() + 4;
                let declared = head
                    .split("\r\n")
                    .skip(1)
                    .filter_map(|l| l.split_once(':'))
                    .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
                    .and_then(|(_, v)| v.trim().parse::<usize>().ok())
                    .unwrap_or(0);
                buf.len() >= head_len + declared
            }
        }
    }
}

fn head_of(buf: &[u8]) -> Result<&str, WireError> {
    let end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(WireError::Truncated {
            layer: "http",
            needed: buf.len() + 1,
            got: buf.len(),
        })?;
    std::str::from_utf8(&buf[..end]).map_err(|_| WireError::Malformed {
        layer: "http",
        what: "non-utf8 head",
    })
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, WireError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or(WireError::Malformed {
            layer: "http",
            what: "header missing colon",
        })?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(headers)
}

/// The validation half of [`parse_headers`], without building the pairs.
fn validate_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<(), WireError> {
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if !line.contains(':') {
            return Err(WireError::Malformed {
                layer: "http",
                what: "header missing colon",
            });
        }
    }
    Ok(())
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = HttpRequest::get_root("192.0.2.80");
        let bytes = r.encode();
        let d = HttpRequest::decode(&bytes).unwrap();
        assert_eq!(d, r);
        assert_eq!(d.header("host"), Some("192.0.2.80"));
    }

    #[test]
    fn response_roundtrip() {
        let r = HttpResponse::pool_redirect();
        let bytes = r.encode();
        assert!(HttpResponse::is_complete(&bytes));
        let d = HttpResponse::decode(&bytes).unwrap();
        assert_eq!(d.status, 302);
        assert_eq!(d.header("location"), Some("http://www.pool.ntp.org/"));
        assert_eq!(d.body, r.body);
    }

    #[test]
    fn incomplete_head_is_truncated() {
        let r = HttpResponse::ok_with_body(b"hello");
        let bytes = r.encode();
        assert!(!HttpResponse::is_complete(&bytes[..10]));
        assert!(matches!(
            HttpResponse::decode(&bytes[..10]),
            Err(WireError::Truncated { layer: "http", .. })
        ));
    }

    #[test]
    fn body_respects_content_length() {
        let r = HttpResponse::ok_with_body(b"12345");
        let mut bytes = r.encode();
        bytes.extend_from_slice(b"TRAILING GARBAGE");
        let d = HttpResponse::decode(&bytes).unwrap();
        assert_eq!(d.body, b"12345");
    }

    #[test]
    fn partial_body_accepted() {
        let r = HttpResponse::ok_with_body(b"1234567890");
        let bytes = r.encode();
        let cut = bytes.len() - 4;
        assert!(!HttpResponse::is_complete(&bytes[..cut]));
        let d = HttpResponse::decode(&bytes[..cut]).unwrap();
        assert_eq!(d.body, b"123456");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(HttpRequest::decode(b"GARBAGE\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET /\r\n\r\n").is_err());
        assert!(HttpResponse::decode(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").is_err());
    }

    #[test]
    fn parse_meta_agrees_with_decode() {
        let cases: &[&[u8]] = &[
            b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
            b"POST /p HTTP/1.0\r\n\r\n",
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nHost: x\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ];
        for case in cases {
            let full = HttpRequest::decode(case);
            let meta = HttpRequest::parse_meta(case);
            assert_eq!(
                full.is_ok(),
                meta.is_ok(),
                "{:?}",
                String::from_utf8_lossy(case)
            );
            if let (Ok(full), Ok((method, path))) = (full, meta) {
                assert_eq!(full.method, method);
                assert_eq!(full.path, path);
            }
        }
    }

    #[test]
    fn status_of_agrees_with_decode() {
        let cases: &[&[u8]] = &[
            b"HTTP/1.1 302 Found\r\nContent-Length: 0\r\n\r\n",
            b"HTTP/1.1 200 OK\r\n\r\nbody",
            b"HTTP/1.1 abc OK\r\n\r\n",
            b"SPDY/3 200 OK\r\n\r\n",
            b"HTTP/1.1 301 Moved Permanently\r\nNoColon\r\n\r\n",
            b"HTTP/1.1 200",
        ];
        for case in cases {
            let full = HttpResponse::decode(case);
            let status = HttpResponse::status_of(case);
            assert_eq!(
                full.is_ok(),
                status.is_ok(),
                "{:?}",
                String::from_utf8_lossy(case)
            );
            if let (Ok(full), Ok(status)) = (full, status) {
                assert_eq!(full.status, status);
            }
        }
        let canned = HttpResponse::pool_redirect().encode();
        assert_eq!(HttpResponse::status_of(&canned).unwrap(), 302);
    }

    #[test]
    fn reason_phrases_with_spaces() {
        let bytes = b"HTTP/1.1 301 Moved Permanently\r\nContent-Length: 0\r\n\r\n";
        let d = HttpResponse::decode(bytes).unwrap();
        assert_eq!(d.status, 301);
        assert_eq!(d.reason, "Moved Permanently");
    }
}
