//! UDP header codec (RFC 768) with pseudo-header checksums.

use crate::checksum::{finish, pseudo_header_sum, sum_words};
use crate::error::WireError;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// UDP header length, bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length.
    pub length: u16,
}

impl UdpHeader {
    /// Encode header and payload, computing the checksum over the
    /// pseudo-header (which is why the IP addresses are required).
    ///
    /// The `length` field is derived from the payload; the stored value is
    /// ignored.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) -> u16 {
        let length = (UDP_HEADER_LEN + payload.len()) as u16;
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut acc = pseudo_header_sum(src, dst, 17, length);
        acc = sum_words(&out[start..], acc);
        let mut ck = finish(acc);
        // RFC 768: a computed checksum of zero is transmitted as all-ones.
        if ck == 0 {
            ck = 0xffff;
        }
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
        length
    }

    /// Decode a UDP header and return it with the payload slice.
    ///
    /// Verifies the pseudo-header checksum unless the checksum field is zero
    /// (RFC 768 permits uncomputed checksums over IPv4).
    pub fn decode(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        buf: &[u8],
    ) -> Result<(UdpHeader, &[u8]), WireError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                got: buf.len(),
            });
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if length < UDP_HEADER_LEN || length > buf.len() {
            return Err(WireError::InvalidField {
                layer: "udp",
                field: "length",
                value: length as u64,
            });
        }
        let found = u16::from_be_bytes([buf[6], buf[7]]);
        if found != 0 {
            let mut acc = pseudo_header_sum(src, dst, 17, length as u16);
            acc = sum_words(&buf[..length], acc);
            let computed = finish(acc);
            if computed != 0 {
                return Err(WireError::BadChecksum {
                    layer: "udp",
                    found,
                    computed,
                });
            }
        }
        let header = UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: length as u16,
        };
        Ok((header, &buf[UDP_HEADER_LEN..length]))
    }

    /// Decode only the port/length fields without checksum verification.
    ///
    /// This is what ICMP quoted-header analysis does: a time-exceeded
    /// message quotes just the IP header plus the first 8 bytes of the
    /// transport header, so the full payload needed for checksum
    /// verification is not available.
    pub fn decode_unverified(buf: &[u8]) -> Result<UdpHeader, WireError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                got: buf.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

/// Build a UDP segment (header + payload) ready to drop into a [`crate::Datagram`].
pub fn udp_segment(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
    udp_segment_into(src, dst, src_port, dst_port, payload, &mut out);
    out
}

/// Append a UDP segment (header + payload) to `out` — the allocation-free
/// companion of [`udp_segment`], for composing straight into a pooled
/// datagram buffer.
pub fn udp_segment_into(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let header = UdpHeader {
        src_port,
        dst_port,
        length: 0,
    };
    header.encode(src, dst, payload, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);

    #[test]
    fn roundtrip_with_checksum() {
        let seg = udp_segment(SRC, DST, 40000, 123, b"ntp request bytes");
        let (h, payload) = UdpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(h.src_port, 40000);
        assert_eq!(h.dst_port, 123);
        assert_eq!(payload, b"ntp request bytes");
        assert_eq!(h.length as usize, seg.len());
    }

    #[test]
    fn checksum_binds_addresses() {
        // The pseudo-header makes the checksum depend on the IP addresses:
        // decoding with the wrong destination must fail.
        let seg = udp_segment(SRC, DST, 1, 2, b"x");
        let wrong = Ipv4Addr::new(192, 0, 2, 54);
        assert!(matches!(
            UdpHeader::decode(SRC, wrong, &seg),
            Err(WireError::BadChecksum { layer: "udp", .. })
        ));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut seg = udp_segment(SRC, DST, 1, 2, b"hello");
        let last = seg.len() - 1;
        seg[last] ^= 0x40;
        assert!(UdpHeader::decode(SRC, DST, &seg).is_err());
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let mut seg = udp_segment(SRC, DST, 1, 2, b"hello");
        seg[6] = 0;
        seg[7] = 0;
        let (h, payload) = UdpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(h.dst_port, 2);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_is_legal() {
        let seg = udp_segment(SRC, DST, 5, 6, b"");
        let (h, payload) = UdpHeader::decode(SRC, DST, &seg).unwrap();
        assert_eq!(h.length as usize, UDP_HEADER_LEN);
        assert!(payload.is_empty());
    }

    #[test]
    fn length_field_bounds_are_enforced() {
        let mut seg = udp_segment(SRC, DST, 5, 6, b"abc");
        seg[4] = 0xff;
        seg[5] = 0xff; // length far beyond buffer
        assert!(matches!(
            UdpHeader::decode(SRC, DST, &seg),
            Err(WireError::InvalidField {
                field: "length",
                ..
            })
        ));
        let short = [0u8; 4];
        assert!(matches!(
            UdpHeader::decode(SRC, DST, &short),
            Err(WireError::Truncated { layer: "udp", .. })
        ));
    }

    #[test]
    fn unverified_decode_reads_first_eight_bytes() {
        let seg = udp_segment(SRC, DST, 40001, 33434, b"traceroute probe");
        let h = UdpHeader::decode_unverified(&seg[..8]).unwrap();
        assert_eq!(h.src_port, 40001);
        assert_eq!(h.dst_port, 33434);
    }
}
