//! The two ECN bits of the IPv4 traffic-class octet (RFC 3168) and the
//! six DSCP bits that share it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The ECN codepoint carried in the low two bits of the IPv4 TOS octet.
///
/// RFC 3168 §5 defines the four codepoints. `Ect0` and `Ect1` are equivalent
/// declarations that the transport is ECN-capable; routers experiencing
/// congestion may rewrite either to `Ce`. The measurement study marks probe
/// packets `Ect0` "to match the typical marking used with ECN for TCP"
/// (paper §3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Ecn {
    /// `00` — not ECN-capable transport.
    #[default]
    NotEct,
    /// `01` — ECN-capable transport, codepoint 1.
    Ect1,
    /// `10` — ECN-capable transport, codepoint 0.
    Ect0,
    /// `11` — congestion experienced.
    Ce,
}

impl Ecn {
    /// Decode from the low two bits of a TOS octet.
    pub fn from_bits(bits: u8) -> Ecn {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// The two-bit wire encoding.
    pub fn bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// True for `Ect0`, `Ect1` and `Ce`: the packet declares (or declared,
    /// before a router marked it) an ECN-capable transport.
    pub fn is_ecn_capable(self) -> bool {
        self != Ecn::NotEct
    }

    /// True for the two ECT codepoints (excludes `Ce`).
    pub fn is_ect(self) -> bool {
        matches!(self, Ecn::Ect0 | Ecn::Ect1)
    }

    /// True if a congested ECN router may mark this packet `Ce` instead of
    /// dropping it (RFC 3168 §5: only ECT packets are markable).
    pub fn is_markable(self) -> bool {
        self.is_ect()
    }

    /// What an ECN-marking router turns this codepoint into when it signals
    /// congestion: ECT packets become `Ce`; everything else is unchanged
    /// (a not-ECT packet must be dropped, not marked).
    pub fn marked(self) -> Ecn {
        if self.is_ect() {
            Ecn::Ce
        } else {
            self
        }
    }
}

impl fmt::Display for Ecn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ecn::NotEct => "not-ECT",
            Ecn::Ect1 => "ECT(1)",
            Ecn::Ect0 => "ECT(0)",
            Ecn::Ce => "ECN-CE",
        };
        f.write_str(s)
    }
}

/// The six DSCP bits (RFC 2474) that share the TOS octet with ECN.
///
/// The study sends best-effort traffic (DSCP 0) but the codec keeps the
/// field explicit because one observed middlebox failure mode is routers
/// treating the whole TOS octet — ECN bits included — as a legacy
/// type-of-service value (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Dscp(u8);

impl Dscp {
    /// Best effort / default forwarding.
    pub const DEFAULT: Dscp = Dscp(0);
    /// Expedited forwarding (RFC 3246), used in tests of TOS-sensitive hops.
    pub const EF: Dscp = Dscp(46);

    /// Construct from a 6-bit value; values above 63 are masked.
    pub fn new(value: u8) -> Dscp {
        Dscp(value & 0x3f)
    }

    /// The 6-bit value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Combine with an ECN codepoint into the full TOS octet.
    pub fn to_tos(self, ecn: Ecn) -> u8 {
        (self.0 << 2) | ecn.bits()
    }

    /// Split a TOS octet into DSCP and ECN parts.
    pub fn from_tos(tos: u8) -> (Dscp, Ecn) {
        (Dscp(tos >> 2), Ecn::from_bits(tos))
    }
}

impl fmt::Display for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_bits_roundtrip() {
        for bits in 0..=3u8 {
            assert_eq!(Ecn::from_bits(bits).bits(), bits);
        }
        // Upper bits are ignored on decode.
        assert_eq!(Ecn::from_bits(0b1110), Ecn::Ect0);
    }

    #[test]
    fn capability_predicates() {
        assert!(!Ecn::NotEct.is_ecn_capable());
        assert!(Ecn::Ect0.is_ecn_capable());
        assert!(Ecn::Ect1.is_ecn_capable());
        assert!(Ecn::Ce.is_ecn_capable());
        assert!(Ecn::Ect0.is_ect());
        assert!(Ecn::Ect1.is_ect());
        assert!(!Ecn::Ce.is_ect());
        assert!(!Ecn::NotEct.is_ect());
    }

    #[test]
    fn marking_follows_rfc3168() {
        assert_eq!(Ecn::Ect0.marked(), Ecn::Ce);
        assert_eq!(Ecn::Ect1.marked(), Ecn::Ce);
        assert_eq!(Ecn::Ce.marked(), Ecn::Ce);
        // A not-ECT packet is never *marked*; congestion drops it instead.
        assert_eq!(Ecn::NotEct.marked(), Ecn::NotEct);
        assert!(!Ecn::NotEct.is_markable());
        // Markability is exactly the two ECT codepoints: ECT(1) is as
        // markable as ECT(0), and an already-CE packet is NOT markable —
        // AQM call sites rely on this to draw no randomness (and count
        // no new mark) for packets that already carry the signal.
        assert!(Ecn::Ect0.is_markable());
        assert!(Ecn::Ect1.is_markable());
        assert!(!Ecn::Ce.is_markable());
    }

    #[test]
    fn tos_octet_packing() {
        let tos = Dscp::EF.to_tos(Ecn::Ce);
        assert_eq!(tos, (46 << 2) | 0b11);
        let (dscp, ecn) = Dscp::from_tos(tos);
        assert_eq!(dscp, Dscp::EF);
        assert_eq!(ecn, Ecn::Ce);
    }

    #[test]
    fn dscp_masks_to_six_bits() {
        assert_eq!(Dscp::new(0xff).value(), 0x3f);
        assert_eq!(Dscp::new(46).value(), 46);
    }

    #[test]
    fn display_matches_paper_terminology() {
        assert_eq!(Ecn::Ect0.to_string(), "ECT(0)");
        assert_eq!(Ecn::NotEct.to_string(), "not-ECT");
        assert_eq!(Ecn::Ce.to_string(), "ECN-CE");
    }
}
