//! Property-based tests for the wire codecs: encode/decode roundtrips,
//! checksum soundness, and mutation detection across randomised inputs.

use ecn_wire::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

fn arb_ipv4_header() -> impl Strategy<Value = Ipv4Header> {
    (
        0u8..64,
        arb_ecn(),
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        0u16..0x2000,
        any::<u8>(),
        any::<u8>(),
        arb_ipv4(),
        arb_ipv4(),
    )
        .prop_map(
            |(dscp, ecn, identification, df, mf, frag, ttl, proto, src, dst)| Ipv4Header {
                dscp: Dscp::new(dscp),
                ecn,
                total_len: 20,
                identification,
                dont_fragment: df,
                more_fragments: mf,
                fragment_offset: frag,
                ttl,
                protocol: IpProto::from_number(proto),
                src,
                dst,
            },
        )
}

proptest! {
    #[test]
    fn ipv4_header_roundtrips(h in arb_ipv4_header()) {
        let mut out = Vec::new();
        h.encode(&mut out);
        let d = Ipv4Header::decode(&out).unwrap();
        prop_assert_eq!(h, d);
    }

    #[test]
    fn ipv4_single_byte_corruption_never_passes_silently(
        h in arb_ipv4_header(),
        idx in 0usize..20,
        bit in 0u8..8,
    ) {
        let mut out = Vec::new();
        h.encode(&mut out);
        out[idx] ^= 1 << bit;
        match Ipv4Header::decode(&out) {
            // Either the checksum catches it...
            Err(_) => {}
            // ...or the corruption canceled out is impossible for a single
            // bit flip in a one's-complement sum: a flip always changes the
            // sum. So decode must fail.
            Ok(d) => prop_assert!(false, "corruption undetected: {:?} -> {:?}", h, d),
        }
    }

    #[test]
    fn datagram_payload_roundtrips(h in arb_ipv4_header(), payload in proptest::collection::vec(any::<u8>(), 0..1200)) {
        let d = Datagram::new(h, &payload);
        prop_assert_eq!(d.payload(), &payload[..]);
        let d2 = Datagram::from_bytes(d.as_bytes().to_vec()).unwrap();
        prop_assert_eq!(d, d2);
    }

    #[test]
    fn datagram_set_ecn_is_idempotent_and_checksum_safe(
        h in arb_ipv4_header(),
        e1 in arb_ecn(),
        e2 in arb_ecn(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut d = Datagram::new(h, &payload);
        d.set_ecn(e1);
        prop_assert_eq!(d.ecn(), e1);
        d.set_ecn(e2);
        d.set_ecn(e2);
        prop_assert_eq!(d.ecn(), e2);
        // All other fields unchanged.
        let hh = d.header();
        prop_assert_eq!(hh.src, h.src);
        prop_assert_eq!(hh.dst, h.dst);
        prop_assert_eq!(hh.ttl, h.ttl);
        prop_assert_eq!(hh.identification, h.identification);
    }

    #[test]
    fn udp_roundtrips(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let seg = udp::udp_segment(src, dst, sp, dp, &payload);
        let (h, got) = UdpHeader::decode(src, dst, &seg).unwrap();
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn udp_detects_any_single_bit_flip(
        src in arb_ipv4(), dst in arb_ipv4(),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut seg = udp::udp_segment(src, dst, 1000, 123, &payload);
        let idx = flip.index(seg.len());
        seg[idx] ^= 1 << bit;
        // A flip in the length field can also surface as InvalidField; a
        // flip of the checksum-field to zero disables checking per RFC 768,
        // but then the packet decodes with intact payload, which is fine —
        // unless the flip WAS in the checksum field itself.
        match UdpHeader::decode(src, dst, &seg) {
            Err(_) => {}
            Ok((h, p)) => {
                // only acceptable if checksum became 0 (disabled)
                prop_assert_eq!(seg[6], 0);
                prop_assert_eq!(seg[7], 0);
                prop_assert_eq!(h.src_port, 1000);
                prop_assert_eq!(p, &payload[..]);
            }
        }
    }

    #[test]
    fn tcp_roundtrips(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u16..0x200,
        window in any::<u16>(),
        mss in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let h = TcpHeader {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags(flags),
            window,
            urgent: 0,
            options: vec![TcpOption::Mss(mss), TcpOption::SackPermitted],
        };
        let seg = tcp::tcp_segment(src, dst, &h, &payload);
        let (d, got) = TcpHeader::decode(src, dst, &seg).unwrap();
        prop_assert_eq!(d, h);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn ntp_roundtrips(
        nanos in any::<u64>(),
        stratum in any::<u8>(),
        poll in any::<i8>(),
    ) {
        let mut p = NtpPacket::client_request(NtpTimestamp::from_nanos(nanos % (u64::from(u32::MAX) * 1_000_000_000)));
        p.stratum = stratum;
        p.poll = poll;
        let d = NtpPacket::decode(&p.encode()).unwrap();
        prop_assert_eq!(d, p);
    }

    #[test]
    fn ntp_timestamp_monotone(nanos1 in any::<u64>(), nanos2 in any::<u64>()) {
        let cap = u64::from(u32::MAX) * 1_000_000_000;
        let (a, b) = (nanos1 % cap, nanos2 % cap);
        let (ta, tb) = (NtpTimestamp::from_nanos(a), NtpTimestamp::from_nanos(b));
        if a <= b {
            prop_assert!(ta <= tb);
        } else {
            prop_assert!(ta >= tb);
        }
    }

    #[test]
    fn dns_roundtrips(
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z][a-z0-9-]{0,10}", 1..5),
        addrs in proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr::from), 0..8),
        ttl in any::<u32>(),
    ) {
        let name = labels.join(".");
        let q = DnsMessage::a_query(id, &name);
        let dq = DnsMessage::decode(&q.encode()).unwrap();
        prop_assert_eq!(&dq, &q);
        let r = DnsMessage::a_response(&q, ttl, &addrs);
        let dr = DnsMessage::decode(&r.encode()).unwrap();
        prop_assert_eq!(dr.a_records(), addrs);
    }

    #[test]
    fn dns_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DnsMessage::decode(&noise);
    }

    #[test]
    fn icmp_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = IcmpMessage::decode(&noise);
    }

    #[test]
    fn tcp_decoder_never_panics_on_noise(
        src in arb_ipv4(), dst in arb_ipv4(),
        noise in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = TcpHeader::decode(src, dst, &noise);
        let _ = TcpHeader::decode_fields(&noise);
    }

    #[test]
    fn http_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = HttpRequest::decode(&noise);
        let _ = HttpResponse::decode(&noise);
        let _ = HttpResponse::is_complete(&noise);
    }

    /// `encode_into` is the primary codec surface; the owned-`Vec` legacy
    /// `encode()` wrappers must stay byte-identical for every wire type —
    /// the contract that lets the simulator swap to pooled buffers without
    /// changing a single output byte.
    #[test]
    fn encode_into_matches_legacy_encode_for_all_wire_types(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in any::<u16>(), dp in any::<u16>(),
        nanos in any::<u64>(),
        id in any::<u16>(),
        labels in proptest::collection::vec("[a-z][a-z0-9-]{0,10}", 1..4),
        addrs in proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr::from), 0..4),
        status in any::<u16>(),
        seq16 in any::<u16>(),
        c0 in any::<u32>(), c1 in any::<u32>(), c2 in any::<u32>(),
        c3 in any::<u32>(), c4 in any::<u32>(), c5 in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        prefill in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        // every encode_into must be append-only: pre-existing bytes survive
        let check = |legacy: Vec<u8>, into: &dyn Fn(&mut Vec<u8>)| {
            let mut out = prefill.clone();
            into(&mut out);
            prop_assert_eq!(&out[..prefill.len()], &prefill[..], "prefix clobbered");
            prop_assert_eq!(&out[prefill.len()..], &legacy[..]);
            Ok(())
        };

        let ntp = NtpPacket::client_request(
            NtpTimestamp::from_nanos(nanos % (u64::from(u32::MAX) * 1_000_000_000)));
        check(ntp.encode(), &|o| ntp.encode_into(o))?;

        let name = labels.join(".");
        let q = DnsMessage::a_query(id, &name);
        check(q.encode(), &|o| q.encode_into(o))?;
        let r = DnsMessage::a_response(&q, u32::from(id), &addrs);
        check(r.encode(), &|o| r.encode_into(o))?;

        let echo = IcmpMessage::EchoRequest { id, seq: sp, payload: payload.clone() };
        check(echo.encode(), &|o| echo.encode_into(o))?;
        let te = IcmpMessage::time_exceeded_for(&payload);
        check(te.encode(), &|o| te.encode_into(o))?;
        check(te.encode(), &|o| IcmpMessage::encode_time_exceeded_into(&payload, o))?;
        let du = IcmpMessage::dest_unreachable_for(DestUnreachCode::Port, &payload);
        check(du.encode(), &|o| du.encode_into(o))?;
        check(du.encode(), &|o| {
            IcmpMessage::encode_dest_unreachable_into(DestUnreachCode::Port, &payload, o)
        })?;

        let req = HttpRequest::get_root(&dst.to_string());
        check(req.encode(), &|o| req.encode_into(o))?;
        let mut rsp = HttpResponse::pool_redirect();
        rsp.status = status.max(1);
        check(rsp.encode(), &|o| rsp.encode_into(o))?;

        let rtp = RtpHeader {
            payload_type: (id % 128) as u8,
            marker: id.is_multiple_of(2),
            sequence: seq16,
            timestamp: c0,
            ssrc: c1,
        };
        check(rtp.encode(&payload), &|o| rtp.encode_into(&payload, o))?;
        let fb = EcnFeedback {
            ext_highest_seq: c0, received: c1, ce_count: c2,
            ect0_count: c3, not_ect_count: c4, lost: c5,
        };
        check(fb.encode(), &|o| fb.encode_into(o))?;

        check(udp::udp_segment(src, dst, sp, dp, &payload),
              &|o| udp::udp_segment_into(src, dst, sp, dp, &payload, o))?;
        let th = TcpHeader {
            src_port: sp, dst_port: dp, seq: c0, ack: c1,
            flags: TcpFlags(seq16 & 0x1ff), window: id, urgent: 0,
            options: vec![TcpOption::Mss(seq16), TcpOption::SackPermitted],
        };
        check(tcp::tcp_segment(src, dst, &th, &payload),
              &|o| tcp::tcp_segment_into(src, dst, &th, &payload, o))?;
    }

    /// `Datagram::compose` into a dirty recycled buffer produces the same
    /// wire bytes as `Datagram::new`, and `into_bytes` hands the buffer
    /// back intact.
    #[test]
    fn datagram_compose_matches_new(
        h in arb_ipv4_header(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let fresh = Datagram::new(h, &payload);
        let composed = Datagram::compose(garbage, h, |out| out.extend_from_slice(&payload));
        prop_assert_eq!(fresh.as_bytes(), composed.as_bytes());
        let recycled = composed.into_bytes();
        prop_assert_eq!(&recycled[..], fresh.as_bytes());
    }

    #[test]
    fn icmp_quote_roundtrip_preserves_ecn(
        h in arb_ipv4_header(),
        ecn in arb_ecn(),
        payload in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        let mut d = Datagram::new(h, &payload);
        d.set_ecn(ecn);
        let msg = IcmpMessage::time_exceeded_for(d.as_bytes());
        let wire = msg.encode();
        let decoded = IcmpMessage::decode(&wire).unwrap();
        let quoted = decoded.quoted().unwrap();
        let qh = Ipv4Header::decode(quoted).unwrap();
        prop_assert_eq!(qh.ecn, ecn);
        prop_assert_eq!(qh.src, h.src);
        prop_assert_eq!(qh.dst, h.dst);
    }
}
