//! The pool.ntp.org authoritative DNS: round-robin A records over the pool
//! membership, with country/region subdomains — the discovery mechanism of
//! paper §3 ("a DNS query for pool.ntp.org and each of its country- and
//! region-specific sub-domains in turn").

use ecn_netsim::Nanos;
use ecn_stack::UdpService;
use ecn_wire::{DnsMessage, Ecn};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How many A records one answer carries (the real pool returns 4).
pub const ANSWERS_PER_QUERY: usize = 4;
/// Answer TTL in seconds (the real pool uses ~150 s so clients re-resolve).
pub const POOL_TTL: u32 = 150;

/// The authoritative zone: name → member addresses, served round-robin.
/// The zone itself is immutable and shareable (`Arc`), so stamping out
/// many simulated worlds from one blueprint costs no zone copies; only
/// the per-world rotation cursor is owned.
pub struct PoolDnsService {
    zone: Arc<HashMap<String, Vec<Ipv4Addr>>>,
    cursor: HashMap<String, usize>,
    /// Reusable question-name buffer (capacity survives queries).
    name_scratch: String,
    /// Reusable answer buffer.
    addr_scratch: Vec<Ipv4Addr>,
}

impl PoolDnsService {
    /// Build from (name, members) pairs. Names are stored lowercase
    /// without a trailing dot.
    pub fn new(zone: impl IntoIterator<Item = (String, Vec<Ipv4Addr>)>) -> PoolDnsService {
        PoolDnsService::new_shared(Arc::new(
            zone.into_iter()
                .map(|(n, v)| (n.trim_end_matches('.').to_ascii_lowercase(), v))
                .collect(),
        ))
    }

    /// Share an already-normalised zone (lowercase names, no trailing
    /// dots) without copying it. Blueprint-backed world instantiation
    /// uses this to give every world the same zone for free.
    pub fn new_shared(zone: Arc<HashMap<String, Vec<Ipv4Addr>>>) -> PoolDnsService {
        PoolDnsService {
            zone,
            cursor: HashMap::new(),
            name_scratch: String::new(),
            addr_scratch: Vec::with_capacity(ANSWERS_PER_QUERY),
        }
    }

    /// Names served by this zone.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.zone.keys().map(String::as_str)
    }

    /// Fill `out` with the next `ANSWERS_PER_QUERY` members for `name`,
    /// advancing the rotation — this is what makes repeated queries
    /// enumerate the pool.
    fn rotate_into(&mut self, name: &str, out: &mut Vec<Ipv4Addr>) {
        out.clear();
        let Some(members) = self.zone.get(name) else {
            return;
        };
        if members.is_empty() {
            return;
        }
        // avoid re-allocating the key String once the cursor exists
        if !self.cursor.contains_key(name) {
            self.cursor.insert(name.to_string(), 0);
        }
        let cur = self.cursor.get_mut(name).expect("just inserted");
        let n = ANSWERS_PER_QUERY.min(members.len());
        for i in 0..n {
            out.push(members[(*cur + i) % members.len()]);
        }
        *cur = (*cur + n) % members.len();
    }
}

impl UdpService for PoolDnsService {
    fn handle(
        &mut self,
        _now: Nanos,
        _src: (Ipv4Addr, u16),
        _ecn: Ecn,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        let mut name = std::mem::take(&mut self.name_scratch);
        let view = match ecn_wire::dns::read_query(payload, &mut name) {
            Ok(Some(v)) => v,
            other => {
                self.name_scratch = name;
                // `Ok(None)`: valid message, no question — same silence
                // as the owned path's `questions.first()?`
                let _ = other.ok()?;
                return None;
            }
        };
        if view.questions != 1 {
            // Multi-question queries take the owned path so the echoed
            // question section stays byte-identical (never sent in-sim).
            self.name_scratch = name;
            let query = DnsMessage::decode(payload).ok()?;
            let qname = query.questions.first()?.name.clone();
            let mut addrs = std::mem::take(&mut self.addr_scratch);
            self.rotate_into(&qname, &mut addrs);
            let rsp = DnsMessage::a_response(&query, POOL_TTL, &addrs).encode();
            self.addr_scratch = addrs;
            return Some(rsp);
        }
        let mut addrs = std::mem::take(&mut self.addr_scratch);
        self.rotate_into(&name, &mut addrs);
        let mut out = Vec::with_capacity(64);
        ecn_wire::dns::encode_a_response_into(&view, &name, POOL_TTL, &addrs, &mut out);
        self.addr_scratch = addrs;
        self.name_scratch = name;
        Some(out)
    }
}

/// Build the standard pool query names: the bare zone plus `0.`–`3.`
/// prefixes and the given country/region subdomains, mirroring the paper's
/// discovery script.
pub fn pool_query_names(subdomains: &[&str]) -> Vec<String> {
    let mut names = vec!["pool.ntp.org".to_string()];
    for i in 0..4 {
        names.push(format!("{i}.pool.ntp.org"));
    }
    for sub in subdomains {
        names.push(format!("{sub}.pool.ntp.org"));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect()
    }

    fn query_bytes(id: u16, name: &str) -> Vec<u8> {
        DnsMessage::a_query(id, name).encode()
    }

    fn srv() -> PoolDnsService {
        PoolDnsService::new([
            ("pool.ntp.org".to_string(), addrs(10)),
            ("uk.pool.ntp.org".to_string(), addrs(3)),
            ("empty.pool.ntp.org".to_string(), vec![]),
        ])
    }

    const SRC: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 53053);

    #[test]
    fn serves_four_answers_and_rotates() {
        let mut s = srv();
        let r1 = s
            .handle(
                Nanos::ZERO,
                SRC,
                Ecn::NotEct,
                &query_bytes(1, "pool.ntp.org"),
            )
            .unwrap();
        let m1 = DnsMessage::decode(&r1).unwrap();
        assert_eq!(m1.a_records().len(), ANSWERS_PER_QUERY);
        assert_eq!(m1.answers[0].ttl, POOL_TTL);
        let r2 = s
            .handle(
                Nanos::ZERO,
                SRC,
                Ecn::NotEct,
                &query_bytes(2, "pool.ntp.org"),
            )
            .unwrap();
        let m2 = DnsMessage::decode(&r2).unwrap();
        assert_ne!(m1.a_records(), m2.a_records(), "rotation advances");
    }

    #[test]
    fn repeated_queries_enumerate_the_whole_pool() {
        let mut s = srv();
        let mut seen = std::collections::HashSet::new();
        for id in 0..10u16 {
            let r = s
                .handle(
                    Nanos::ZERO,
                    SRC,
                    Ecn::NotEct,
                    &query_bytes(id, "pool.ntp.org"),
                )
                .unwrap();
            for a in DnsMessage::decode(&r).unwrap().a_records() {
                seen.insert(a);
            }
        }
        assert_eq!(seen.len(), 10, "all 10 members discovered");
    }

    #[test]
    fn small_zones_return_each_member_once() {
        let mut s = srv();
        let r = s
            .handle(
                Nanos::ZERO,
                SRC,
                Ecn::NotEct,
                &query_bytes(1, "uk.pool.ntp.org"),
            )
            .unwrap();
        let m = DnsMessage::decode(&r).unwrap();
        assert_eq!(m.a_records().len(), 3);
        let unique: std::collections::HashSet<_> = m.a_records().into_iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let mut s = srv();
        let r = s
            .handle(
                Nanos::ZERO,
                SRC,
                Ecn::NotEct,
                &query_bytes(1, "nosuch.example"),
            )
            .unwrap();
        let m = DnsMessage::decode(&r).unwrap();
        assert!(m.a_records().is_empty());
        assert_eq!(m.flags.rcode, ecn_wire::Rcode::NxDomain);
    }

    #[test]
    fn empty_zone_is_nxdomain_too() {
        let mut s = srv();
        let r = s
            .handle(
                Nanos::ZERO,
                SRC,
                Ecn::NotEct,
                &query_bytes(1, "empty.pool.ntp.org"),
            )
            .unwrap();
        assert!(DnsMessage::decode(&r).unwrap().a_records().is_empty());
    }

    #[test]
    fn garbage_is_ignored() {
        let mut s = srv();
        assert!(s
            .handle(Nanos::ZERO, SRC, Ecn::NotEct, b"\x00\x01")
            .is_none());
    }

    #[test]
    fn query_name_list_matches_methodology() {
        let names = pool_query_names(&["uk", "de", "north-america"]);
        assert!(names.contains(&"pool.ntp.org".to_string()));
        assert!(names.contains(&"0.pool.ntp.org".to_string()));
        assert!(names.contains(&"3.pool.ntp.org".to_string()));
        assert!(names.contains(&"uk.pool.ntp.org".to_string()));
        assert!(names.contains(&"north-america.pool.ntp.org".to_string()));
        assert_eq!(names.len(), 1 + 4 + 3);
    }
}
