//! The web server pool members are encouraged to run: answers `GET /` with
//! a redirect to `www.pool.ntp.org` (paper §3). Served over the stack's
//! TCP as a [`TcpService`].

use ecn_netsim::Nanos;
use ecn_stack::{TcpService, TcpServiceAction};
use ecn_wire::{HttpRequest, HttpResponse};

/// Behaviour of a pool member's web server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpServerKind {
    /// The standard pool redirect to `www.pool.ntp.org`.
    PoolRedirect,
    /// A host serving its own page with 200 OK.
    PlainOk,
}

/// The HTTP service: waits for a complete request head, answers once,
/// closes the connection (pool servers send `Connection: close`).
///
/// The `GET` response never varies, so it is encoded once at construction;
/// each request clones the canned bytes instead of re-building and
/// re-encoding the response (the dominant allocation cost of serving the
/// probe workload).
pub struct PoolHttpService {
    canned: Vec<u8>,
}

impl PoolHttpService {
    /// Build a service of the given kind.
    pub fn new(kind: HttpServerKind) -> PoolHttpService {
        let canned = match kind {
            HttpServerKind::PoolRedirect => HttpResponse::pool_redirect(),
            HttpServerKind::PlainOk => HttpResponse::ok_with_body(
                b"<html><body>NTP pool member &mdash; time service on UDP 123</body></html>",
            ),
        }
        .encode();
        PoolHttpService { canned }
    }
}

impl TcpService for PoolHttpService {
    fn on_data(&mut self, _now: Nanos, received: &[u8]) -> TcpServiceAction {
        // Wait for the complete head.
        if !received.windows(4).any(|w| w == b"\r\n\r\n") {
            if received.len() > 16 * 1024 {
                return TcpServiceAction::Abort; // oversized request head
            }
            return TcpServiceAction::Wait;
        }
        match HttpRequest::parse_meta(received) {
            Ok(("GET", _)) => TcpServiceAction::Respond {
                bytes: self.canned.clone(),
                close: true,
            },
            Ok(_) => {
                let mut r = HttpResponse::ok_with_body(b"method not allowed");
                r.status = 405;
                r.reason = "Method Not Allowed".into();
                TcpServiceAction::Respond {
                    bytes: r.encode(),
                    close: true,
                }
            }
            Err(_) => TcpServiceAction::Abort,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_service_answers_get_root() {
        let mut s = PoolHttpService::new(HttpServerKind::PoolRedirect);
        let req = HttpRequest::get_root("192.0.2.80").encode();
        // partial head: wait
        assert_eq!(s.on_data(Nanos::ZERO, &req[..10]), TcpServiceAction::Wait);
        match s.on_data(Nanos::ZERO, &req) {
            TcpServiceAction::Respond { bytes, close } => {
                assert!(close);
                let rsp = HttpResponse::decode(&bytes).unwrap();
                assert_eq!(rsp.status, 302);
                assert_eq!(rsp.header("Location"), Some("http://www.pool.ntp.org/"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_ok_variant() {
        let mut s = PoolHttpService::new(HttpServerKind::PlainOk);
        let req = HttpRequest::get_root("x").encode();
        match s.on_data(Nanos::ZERO, &req) {
            TcpServiceAction::Respond { bytes, .. } => {
                let rsp = HttpResponse::decode(&bytes).unwrap();
                assert_eq!(rsp.status, 200);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_get_is_405() {
        let mut s = PoolHttpService::new(HttpServerKind::PoolRedirect);
        let req = b"POST / HTTP/1.1\r\nHost: x\r\n\r\n";
        match s.on_data(Nanos::ZERO, req) {
            TcpServiceAction::Respond { bytes, .. } => {
                assert_eq!(HttpResponse::decode(&bytes).unwrap().status, 405);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_request_aborts() {
        let mut s = PoolHttpService::new(HttpServerKind::PoolRedirect);
        assert_eq!(
            s.on_data(Nanos::ZERO, b"NOT HTTP AT ALL\r\n\r\n"),
            TcpServiceAction::Abort
        );
    }

    #[test]
    fn oversized_head_aborts() {
        let mut s = PoolHttpService::new(HttpServerKind::PoolRedirect);
        let big = vec![b'a'; 20 * 1024];
        assert_eq!(s.on_data(Nanos::ZERO, &big), TcpServiceAction::Abort);
    }
}
