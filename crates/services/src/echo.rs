//! The ECN-validation echo responder.
//!
//! Modern transports validate ECN by comparing the codepoint they *sent*
//! against the codepoint the peer *saw* (QUIC carries this back in
//! ACK-ECN counts). The simulated pool servers expose the same feedback
//! through a tiny UDP echo service: a request `["EV", seq]` is answered
//! with `["EV", seq, arrived_ecn_bits]`, reporting the codepoint the
//! probe arrived with after whatever the path's middleboxes did to it.
//! The reply itself rides not-ECT (the stack marks service replies
//! not-ECT), so a mangled reply path cannot corrupt the report.

use ecn_netsim::Nanos;
use ecn_stack::UdpService;
use ecn_wire::Ecn;
use std::net::Ipv4Addr;

/// The well-known port the validation echo service listens on.
pub const ECN_ECHO_PORT: u16 = 3168;

/// Request/response magic prefix.
pub const ECN_ECHO_MAGIC: [u8; 2] = *b"EV";

/// Build a validation probe payload for sequence number `seq`.
pub fn echo_request(seq: u8) -> Vec<u8> {
    vec![ECN_ECHO_MAGIC[0], ECN_ECHO_MAGIC[1], seq]
}

/// Parse an echo reply: returns `(seq, arrived_ecn)` for well-formed
/// replies, `None` otherwise.
pub fn parse_echo_reply(payload: &[u8]) -> Option<(u8, Ecn)> {
    match payload {
        [m0, m1, seq, bits] if [*m0, *m1] == ECN_ECHO_MAGIC && *bits <= 0b11 => {
            Some((*seq, Ecn::from_bits(*bits)))
        }
        _ => None,
    }
}

/// The responder side, run as a [`UdpService`] on [`ECN_ECHO_PORT`].
#[derive(Debug, Default)]
pub struct EcnEchoService;

impl UdpService for EcnEchoService {
    fn handle(
        &mut self,
        _now: Nanos,
        _src: (Ipv4Addr, u16),
        ecn: Ecn,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        match payload {
            [m0, m1, seq] if [*m0, *m1] == ECN_ECHO_MAGIC => Some(vec![*m0, *m1, *seq, ecn.bits()]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40001);

    #[test]
    fn echoes_arrived_codepoint() {
        let mut s = EcnEchoService;
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            let reply = s.handle(Nanos::ZERO, SRC, ecn, &echo_request(7)).unwrap();
            assert_eq!(parse_echo_reply(&reply), Some((7, ecn)));
        }
    }

    #[test]
    fn ignores_malformed_requests() {
        let mut s = EcnEchoService;
        assert!(s.handle(Nanos::ZERO, SRC, Ecn::Ect0, b"EV").is_none());
        assert!(s.handle(Nanos::ZERO, SRC, Ecn::Ect0, b"XX\x01").is_none());
        assert!(s
            .handle(Nanos::ZERO, SRC, Ecn::Ect0, b"EV\x01\x02")
            .is_none());
        assert!(parse_echo_reply(b"EV\x01").is_none());
        assert!(parse_echo_reply(b"EV\x01\x09").is_none());
    }
}
