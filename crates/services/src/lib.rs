//! # ecn-services — application services over the stack
//!
//! The three protocols the measurement study touches at the application
//! layer, implemented as in-sim services and client helpers:
//!
//! * [`ntp`] — the RFC 5905 responder every pool member runs (with
//!   kiss-o'-death rate limiting), plus the custom NTP client of paper §3,
//! * [`dns`] — the pool.ntp.org authoritative zone with round-robin
//!   answers, the discovery mechanism for the 2500 measurement targets,
//! * [`http`] — the co-located web server answering `GET /` with a
//!   redirect to `www.pool.ntp.org`, probed over TCP ± ECN.

pub mod dns;
pub mod echo;
pub mod http;
pub mod ntp;

pub use dns::{pool_query_names, PoolDnsService, ANSWERS_PER_QUERY, POOL_TTL};
pub use echo::{echo_request, parse_echo_reply, EcnEchoService, ECN_ECHO_MAGIC, ECN_ECHO_PORT};
pub use http::{HttpServerKind, PoolHttpService};
pub use ntp::{ntp_now, NtpClient, NtpServerConfig, NtpServerService, NTP_EPOCH_OFFSET_SECS};
