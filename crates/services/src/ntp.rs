//! The NTP server service run by every pool member, and the custom NTP
//! client used by the measurement application (paper §3).

use ecn_netsim::Nanos;
use ecn_stack::UdpService;
use ecn_wire::{Ecn, NtpPacket, NtpTimestamp};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Offset between the simulation epoch and the NTP epoch, so simulated
/// clocks read like plausible 2015 wall-clock times. 3_639_600_000 s after
/// 1900-01-01 ≈ April 2015.
pub const NTP_EPOCH_OFFSET_SECS: u64 = 3_639_600_000;

/// Convert virtual time to an NTP timestamp.
pub fn ntp_now(now: Nanos) -> NtpTimestamp {
    NtpTimestamp::from_nanos(NTP_EPOCH_OFFSET_SECS * 1_000_000_000 + now.0)
}

/// Configuration of a pool member's NTP daemon.
#[derive(Debug, Clone, Copy)]
pub struct NtpServerConfig {
    /// Stratum advertised (pool servers are mostly 2–3).
    pub stratum: u8,
    /// Reference identifier.
    pub reference_id: [u8; 4],
    /// Rate limit: if a single client sends more than `limit` requests in
    /// `window`, answer with kiss-o'-death `RATE` instead. `None` disables.
    pub kod: Option<(u32, Nanos)>,
}

impl Default for NtpServerConfig {
    fn default() -> Self {
        NtpServerConfig {
            stratum: 2,
            reference_id: *b"GPS\0",
            kod: None,
        }
    }
}

/// An RFC 5905 mode-3→mode-4 responder, run as a [`UdpService`] on port 123.
pub struct NtpServerService {
    config: NtpServerConfig,
    /// Per-client request timestamps within the KoD window.
    history: HashMap<Ipv4Addr, Vec<Nanos>>,
}

impl NtpServerService {
    /// Build a responder.
    pub fn new(config: NtpServerConfig) -> NtpServerService {
        NtpServerService {
            config,
            history: HashMap::new(),
        }
    }

    fn rate_limited(&mut self, now: Nanos, src: Ipv4Addr) -> bool {
        let Some((limit, window)) = self.config.kod else {
            return false;
        };
        let hist = self.history.entry(src).or_default();
        hist.retain(|t| now.saturating_sub(*t) < window);
        hist.push(now);
        hist.len() as u32 > limit
    }
}

impl UdpService for NtpServerService {
    fn handle(
        &mut self,
        now: Nanos,
        src: (Ipv4Addr, u16),
        _ecn: Ecn,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        let req = NtpPacket::decode(payload).ok()?;
        // Only answer client-mode requests (mode 3).
        if req.mode != ecn_wire::NtpMode::Client {
            return None;
        }
        let ts = ntp_now(now);
        if self.rate_limited(now, src.0) {
            return Some(NtpPacket::kiss_of_death_rate(&req, ts).encode());
        }
        Some(
            NtpPacket::server_response(&req, self.config.stratum, self.config.reference_id, ts, ts)
                .encode(),
        )
    }
}

/// Client-side helpers for the measurement application's custom NTP client.
pub struct NtpClient;

impl NtpClient {
    /// Build a request stamped with the current virtual time. The transmit
    /// timestamp doubles as a nonce: responses echo it in `origin_ts`,
    /// which is how [`NtpClient::matches`] pairs responses to requests.
    pub fn request(now: Nanos) -> NtpPacket {
        NtpPacket::client_request(ntp_now(now))
    }

    /// Does `payload` decode as a server response to `req`?
    pub fn matches(req: &NtpPacket, payload: &[u8]) -> bool {
        NtpPacket::decode(payload)
            .map(|rsp| rsp.answers(req))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40001);

    #[test]
    fn responds_to_client_mode_requests() {
        let mut s = NtpServerService::new(NtpServerConfig::default());
        let req = NtpClient::request(Nanos::from_secs(100));
        let rsp = s
            .handle(Nanos::from_secs(100), SRC, Ecn::Ect0, &req.encode())
            .expect("response");
        assert!(NtpClient::matches(&req, &rsp));
        let parsed = NtpPacket::decode(&rsp).unwrap();
        assert_eq!(parsed.stratum, 2);
        assert!(parsed.receive_ts.seconds > 3_000_000_000, "2015-era time");
    }

    #[test]
    fn ignores_non_client_modes_and_garbage() {
        let mut s = NtpServerService::new(NtpServerConfig::default());
        let mut req = NtpClient::request(Nanos::ZERO);
        req.mode = ecn_wire::NtpMode::Server;
        assert!(s
            .handle(Nanos::ZERO, SRC, Ecn::NotEct, &req.encode())
            .is_none());
        assert!(s
            .handle(Nanos::ZERO, SRC, Ecn::NotEct, b"not ntp")
            .is_none());
    }

    #[test]
    fn response_does_not_match_wrong_request() {
        let mut s = NtpServerService::new(NtpServerConfig::default());
        let req1 = NtpClient::request(Nanos::from_secs(1));
        let req2 = NtpClient::request(Nanos::from_secs(2));
        let rsp = s
            .handle(Nanos::from_secs(1), SRC, Ecn::NotEct, &req1.encode())
            .unwrap();
        assert!(NtpClient::matches(&req1, &rsp));
        assert!(!NtpClient::matches(&req2, &rsp));
    }

    #[test]
    fn kod_fires_after_limit_and_still_answers() {
        let mut s = NtpServerService::new(NtpServerConfig {
            kod: Some((3, Nanos::from_secs(10))),
            ..NtpServerConfig::default()
        });
        let req = NtpClient::request(Nanos::ZERO);
        let mut kods = 0;
        for i in 0..5u64 {
            let rsp = s
                .handle(Nanos::from_secs(i), SRC, Ecn::NotEct, &req.encode())
                .unwrap();
            let parsed = NtpPacket::decode(&rsp).unwrap();
            if parsed.kod_code() == Some(b"RATE") {
                kods += 1;
            }
            // Either way the server responded — the reachability probe
            // counts it (paper: "if an NTP response is received after any
            // request, we mark the server as reachable").
            assert!(NtpClient::matches(&req, &rsp));
        }
        assert_eq!(kods, 2, "requests 4 and 5 exceed limit 3 in window");
    }

    #[test]
    fn kod_window_slides() {
        let mut s = NtpServerService::new(NtpServerConfig {
            kod: Some((1, Nanos::from_secs(5))),
            ..NtpServerConfig::default()
        });
        let req = NtpClient::request(Nanos::ZERO);
        let r1 = s
            .handle(Nanos::ZERO, SRC, Ecn::NotEct, &req.encode())
            .unwrap();
        assert_eq!(NtpPacket::decode(&r1).unwrap().kod_code(), None);
        // far outside the window: no KoD again
        let r2 = s
            .handle(Nanos::from_secs(60), SRC, Ecn::NotEct, &req.encode())
            .unwrap();
        assert_eq!(NtpPacket::decode(&r2).unwrap().kod_code(), None);
    }

    #[test]
    fn distinct_clients_rate_limited_independently() {
        let mut s = NtpServerService::new(NtpServerConfig {
            kod: Some((1, Nanos::from_secs(10))),
            ..NtpServerConfig::default()
        });
        let req = NtpClient::request(Nanos::ZERO);
        let a = (Ipv4Addr::new(1, 1, 1, 1), 1000);
        let b = (Ipv4Addr::new(2, 2, 2, 2), 1000);
        let _ = s.handle(Nanos::ZERO, a, Ecn::NotEct, &req.encode());
        let rb = s
            .handle(Nanos::from_millis(1), b, Ecn::NotEct, &req.encode())
            .unwrap();
        assert_eq!(NtpPacket::decode(&rb).unwrap().kod_code(), None);
    }
}
