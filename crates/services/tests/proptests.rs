//! Property-based tests of the application services: the pool DNS rotation
//! must eventually serve every member and never fabricate addresses; the
//! NTP responder must answer every well-formed client request and survive
//! arbitrary payload fuzz.

use ecn_netsim::Nanos;
use ecn_services::{NtpClient, NtpServerConfig, NtpServerService, PoolDnsService};
use ecn_stack::UdpService;
use ecn_wire::{DnsMessage, Ecn, NtpPacket};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

const SRC: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);

proptest! {
    #[test]
    fn dns_rotation_covers_the_zone_and_invents_nothing(
        members in proptest::collection::hash_set(any::<u32>().prop_map(Ipv4Addr::from), 1..40),
    ) {
        let members: Vec<Ipv4Addr> = members.into_iter().collect();
        let mut svc = PoolDnsService::new([("pool.ntp.org".to_string(), members.clone())]);
        let mut seen: HashSet<Ipv4Addr> = HashSet::new();
        // ceil(n/4) queries guarantee full coverage; do a few extra rounds
        let queries = members.len() + 4;
        for qid in 0..queries as u16 {
            let q = DnsMessage::a_query(qid, "pool.ntp.org");
            let rsp = svc
                .handle(Nanos::ZERO, SRC, Ecn::NotEct, &q.encode())
                .expect("always answers");
            let m = DnsMessage::decode(&rsp).expect("valid response");
            prop_assert_eq!(m.id, qid);
            for a in m.a_records() {
                prop_assert!(members.contains(&a), "served address must be a member");
                seen.insert(a);
            }
            prop_assert!(m.a_records().len() <= 4);
            prop_assert!(!m.a_records().is_empty());
        }
        prop_assert_eq!(seen.len(), members.len(), "rotation covers the zone");
    }

    #[test]
    fn ntp_responder_answers_every_client_request(
        nanos in 0u64..4_000_000_000_000_000_000,
        stratum in 1u8..16,
    ) {
        let mut svc = NtpServerService::new(NtpServerConfig {
            stratum,
            ..NtpServerConfig::default()
        });
        let req = NtpClient::request(Nanos(nanos % 1_000_000_000_000));
        let rsp = svc
            .handle(Nanos(nanos % 1_000_000_000_000), SRC, Ecn::Ect0, &req.encode())
            .expect("mode-3 requests are always answered");
        prop_assert!(NtpClient::matches(&req, &rsp));
        let parsed = NtpPacket::decode(&rsp).unwrap();
        prop_assert_eq!(parsed.stratum, stratum);
        prop_assert_eq!(parsed.origin_ts, req.transmit_ts, "origin echoes the nonce");
    }

    #[test]
    fn services_never_panic_on_fuzzed_payloads(
        noise in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut dns = PoolDnsService::new([(
            "pool.ntp.org".to_string(),
            vec![Ipv4Addr::new(192, 0, 2, 1)],
        )]);
        let mut ntp = NtpServerService::new(NtpServerConfig::default());
        let _ = dns.handle(Nanos::ZERO, SRC, Ecn::NotEct, &noise);
        let _ = ntp.handle(Nanos::ZERO, SRC, Ecn::NotEct, &noise);
    }

    #[test]
    fn responses_to_distinct_requests_are_distinguishable(
        t1 in 1u64..1_000_000_000_000,
        t2 in 1u64..1_000_000_000_000,
    ) {
        prop_assume!(t1 != t2);
        let mut svc = NtpServerService::new(NtpServerConfig::default());
        let r1 = NtpClient::request(Nanos(t1));
        let r2 = NtpClient::request(Nanos(t2));
        let rsp1 = svc.handle(Nanos(t1), SRC, Ecn::NotEct, &r1.encode()).unwrap();
        // the response to r1 must never be mistaken for a response to r2
        prop_assert!(NtpClient::matches(&r1, &rsp1));
        prop_assert!(!NtpClient::matches(&r2, &rsp1));
    }
}
