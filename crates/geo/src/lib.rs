//! # ecn-geo — synthetic geolocation database
//!
//! Substitutes for the MaxMind GeoLite2 City snapshot (25 April 2015) the
//! paper used to place the 2500 NTP pool servers on a map (Figure 1) and
//! into the regional breakdown of Table 1. The regional *marginals* are
//! taken from the paper verbatim; the per-server coordinates are sampled
//! from per-region bounding boxes, weighted towards a few population
//! centres so the Figure 1 scatter has realistic clumping.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Continental regions as reported in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Africa.
    Africa,
    /// Asia.
    Asia,
    /// Australia/Oceania.
    Australia,
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Address not present in the geolocation database.
    Unknown,
}

impl Region {
    /// All regions in Table 1 order.
    pub const ALL: [Region; 7] = [
        Region::Africa,
        Region::Asia,
        Region::Australia,
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Unknown,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Africa => "Africa",
            Region::Asia => "Asia",
            Region::Australia => "Australia",
            Region::Europe => "Europe",
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// The paper's Table 1: NTP pool servers discovered per region.
pub const TABLE1_DISTRIBUTION: [(Region, usize); 7] = [
    (Region::Africa, 22),
    (Region::Asia, 190),
    (Region::Australia, 68),
    (Region::Europe, 1664),
    (Region::NorthAmerica, 522),
    (Region::SouthAmerica, 32),
    (Region::Unknown, 2),
];

/// Total servers in Table 1.
pub const TABLE1_TOTAL: usize = 2500;

/// Country codes used for pool subdomains, per region (subset of the real
/// pool's country zones, enough to exercise the discovery loop).
pub fn region_countries(region: Region) -> &'static [&'static str] {
    match region {
        Region::Africa => &["za", "ke", "eg"],
        Region::Asia => &["jp", "cn", "in", "kr", "sg", "tw", "hk", "id"],
        Region::Australia => &["au", "nz"],
        Region::Europe => &[
            "uk", "de", "fr", "nl", "se", "pl", "it", "es", "ch", "at", "fi", "cz", "ru", "dk",
            "no",
        ],
        Region::NorthAmerica => &["us", "ca", "mx"],
        Region::SouthAmerica => &["br", "ar", "cl"],
        Region::Unknown => &[],
    }
}

/// The pool's continental zone names (subdomains like
/// `europe.pool.ntp.org`).
pub fn region_zone(region: Region) -> Option<&'static str> {
    match region {
        Region::Africa => Some("africa"),
        Region::Asia => Some("asia"),
        Region::Australia => Some("oceania"),
        Region::Europe => Some("europe"),
        Region::NorthAmerica => Some("north-america"),
        Region::SouthAmerica => Some("south-america"),
        Region::Unknown => None,
    }
}

/// (lat, lon) bounding boxes plus a few population-centre anchors.
fn region_box(region: Region) -> ((f64, f64), (f64, f64)) {
    match region {
        Region::Africa => ((-34.0, 35.0), (-17.0, 47.0)),
        Region::Asia => ((1.0, 55.0), (68.0, 145.0)),
        Region::Australia => ((-45.0, -10.0), (113.0, 178.0)),
        Region::Europe => ((36.0, 68.0), (-10.0, 40.0)),
        Region::NorthAmerica => ((18.0, 60.0), (-125.0, -60.0)),
        Region::SouthAmerica => ((-40.0, 10.0), (-80.0, -35.0)),
        Region::Unknown => ((0.0, 0.0), (0.0, 0.0)),
    }
}

fn region_anchors(region: Region) -> &'static [(f64, f64)] {
    match region {
        Region::Europe => &[
            (51.5, -0.1), // London
            (52.5, 13.4), // Berlin
            (48.9, 2.4),  // Paris
            (52.4, 4.9),  // Amsterdam
            (59.3, 18.1), // Stockholm
            (50.1, 14.4), // Prague
        ],
        Region::NorthAmerica => &[
            (40.7, -74.0),  // New York
            (37.8, -122.4), // San Francisco
            (41.9, -87.6),  // Chicago
            (45.5, -73.6),  // Montreal
        ],
        Region::Asia => &[
            (35.7, 139.7), // Tokyo
            (1.3, 103.8),  // Singapore
            (37.6, 127.0), // Seoul
        ],
        Region::Australia => &[(-33.9, 151.2), (-37.8, 145.0)],
        Region::SouthAmerica => &[(-23.5, -46.6)],
        Region::Africa => &[(-33.9, 18.4)],
        Region::Unknown => &[],
    }
}

/// One geolocated address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoRecord {
    /// Continental region.
    pub region: Region,
    /// Two-letter country code (empty for Unknown).
    pub country: String,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

/// The database: address → record.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct GeoDb {
    records: HashMap<Ipv4Addr, GeoRecord>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> GeoDb {
        GeoDb::default()
    }

    /// Insert a record.
    pub fn insert(&mut self, addr: Ipv4Addr, record: GeoRecord) {
        self.records.insert(addr, record);
    }

    /// Look up an address (None ≙ the paper's "Unknown" row).
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&GeoRecord> {
        self.records.get(&addr)
    }

    /// Region of an address, mapping misses to [`Region::Unknown`].
    pub fn region_of(&self, addr: Ipv4Addr) -> Region {
        self.lookup(addr)
            .map(|r| r.region)
            .unwrap_or(Region::Unknown)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count addresses per region (the Table 1 aggregation), over a target
    /// list: addresses not in the DB count as Unknown.
    pub fn distribution(&self, addrs: &[Ipv4Addr]) -> Vec<(Region, usize)> {
        let mut counts: HashMap<Region, usize> = HashMap::new();
        for a in addrs {
            *counts.entry(self.region_of(*a)).or_insert(0) += 1;
        }
        Region::ALL
            .iter()
            .map(|r| (*r, counts.get(r).copied().unwrap_or(0)))
            .collect()
    }

    /// Figure 1 scatter data: `(lat, lon, region)` rows for plotting.
    pub fn scatter(&self, addrs: &[Ipv4Addr]) -> Vec<(f64, f64, Region)> {
        addrs
            .iter()
            .filter_map(|a| self.lookup(*a))
            .map(|r| (r.lat, r.lon, r.region))
            .collect()
    }

    /// Figure 1 scatter as CSV (`lat,lon,region` with header).
    pub fn scatter_csv(&self, addrs: &[Ipv4Addr]) -> String {
        let mut s = String::from("lat,lon,region\n");
        for (lat, lon, region) in self.scatter(addrs) {
            s.push_str(&format!("{lat:.3},{lon:.3},{region}\n"));
        }
        s
    }
}

/// Sample a plausible location for a server in `region`: 70% clustered
/// near an anchor city, 30% uniform in the region's bounding box.
pub fn sample_location(region: Region, rng: &mut SmallRng) -> (f64, f64) {
    let ((lat_lo, lat_hi), (lon_lo, lon_hi)) = region_box(region);
    let anchors = region_anchors(region);
    if !anchors.is_empty() && rng.gen_bool(0.7) {
        let (alat, alon) = anchors[rng.gen_range(0..anchors.len())];
        let lat = (alat + rng.gen_range(-2.0..2.0)).clamp(lat_lo, lat_hi);
        let lon = (alon + rng.gen_range(-2.0..2.0)).clamp(lon_lo, lon_hi);
        (lat, lon)
    } else {
        (
            rng.gen_range(lat_lo..=lat_hi),
            rng.gen_range(lon_lo..=lon_hi),
        )
    }
}

/// Pick a country code for a server in `region`.
pub fn sample_country(region: Region, rng: &mut SmallRng) -> String {
    let countries = region_countries(region);
    if countries.is_empty() {
        String::new()
    } else {
        countries[rng.gen_range(0..countries.len())].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table1_totals() {
        let sum: usize = TABLE1_DISTRIBUTION.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, TABLE1_TOTAL);
        assert_eq!(TABLE1_DISTRIBUTION[3], (Region::Europe, 1664));
    }

    #[test]
    fn lookup_and_distribution() {
        let mut db = GeoDb::new();
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(192, 0, 2, 2);
        let c = Ipv4Addr::new(192, 0, 2, 3);
        db.insert(
            a,
            GeoRecord {
                region: Region::Europe,
                country: "uk".into(),
                lat: 51.5,
                lon: -0.1,
            },
        );
        db.insert(
            b,
            GeoRecord {
                region: Region::Asia,
                country: "jp".into(),
                lat: 35.7,
                lon: 139.7,
            },
        );
        let dist = db.distribution(&[a, b, c]);
        let get = |r: Region| dist.iter().find(|(x, _)| *x == r).unwrap().1;
        assert_eq!(get(Region::Europe), 1);
        assert_eq!(get(Region::Asia), 1);
        assert_eq!(get(Region::Unknown), 1, "unmapped address is Unknown");
        assert_eq!(db.region_of(c), Region::Unknown);
    }

    #[test]
    fn sampled_locations_fall_inside_region_boxes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for region in Region::ALL.iter().take(6) {
            let ((lat_lo, lat_hi), (lon_lo, lon_hi)) = region_box(*region);
            for _ in 0..200 {
                let (lat, lon) = sample_location(*region, &mut rng);
                assert!(lat >= lat_lo && lat <= lat_hi, "{region} lat {lat}");
                assert!(lon >= lon_lo && lon <= lon_hi, "{region} lon {lon}");
            }
        }
    }

    #[test]
    fn scatter_csv_has_header_and_rows() {
        let mut db = GeoDb::new();
        db.insert(
            Ipv4Addr::new(1, 1, 1, 1),
            GeoRecord {
                region: Region::Europe,
                country: "de".into(),
                lat: 52.5,
                lon: 13.4,
            },
        );
        let csv = db.scatter_csv(&[Ipv4Addr::new(1, 1, 1, 1)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("lat,lon,region"));
        assert_eq!(lines.next(), Some("52.500,13.400,Europe"));
    }

    #[test]
    fn countries_belong_to_their_region() {
        for r in Region::ALL {
            let mut rng = SmallRng::seed_from_u64(7);
            let c = sample_country(r, &mut rng);
            if r == Region::Unknown {
                assert!(c.is_empty());
            } else {
                assert!(region_countries(r).contains(&c.as_str()));
            }
        }
    }

    #[test]
    fn every_populated_region_has_a_zone_name() {
        for (r, n) in TABLE1_DISTRIBUTION {
            if r != Region::Unknown && n > 0 {
                assert!(region_zone(r).is_some(), "{r}");
            }
        }
        assert_eq!(region_zone(Region::Unknown), None);
    }
}
