//! Deterministic RNG derivation.
//!
//! Every stochastic component (loss model, server availability, topology
//! generation, probe jitter) gets its own RNG derived from the experiment
//! seed and a stable label, so adding a new random consumer never perturbs
//! the random streams of existing ones — the property that keeps experiment
//! outputs stable across code changes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from `seed` and a label, via FNV-1a over the label.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // one round of splitmix64 finalisation to decorrelate similar labels
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A `SmallRng` for the component identified by `label`.
pub fn derive_rng(seed: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, label))
}

/// A `SmallRng` for a numbered instance of a component (e.g. per-link loss).
pub fn derive_rng_indexed(seed: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(derive_seed(seed, label), &index.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, "loss");
        let mut b = derive_rng(42, "loss");
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = derive_rng(42, "loss");
        let mut b = derive_rng(42, "churn");
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_different_streams() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn indexed_instances_are_independent() {
        let a = derive_seed(derive_seed(7, "link"), "0");
        let b = derive_seed(derive_seed(7, "link"), "1");
        assert_ne!(a, b);
        let mut r0 = derive_rng_indexed(7, "link", 0);
        let mut r1 = derive_rng_indexed(7, "link", 1);
        assert_ne!(r0.gen::<u64>(), r1.gen::<u64>());
    }

    #[test]
    fn similar_labels_decorrelate() {
        // FNV alone correlates "a1"/"a2"; the splitmix finaliser must not.
        let s1 = derive_seed(0, "router-1");
        let s2 = derive_seed(0, "router-2");
        assert!(s1.abs_diff(s2) > 1 << 32);
    }
}
