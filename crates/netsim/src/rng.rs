//! Deterministic RNG derivation.
//!
//! Every stochastic component (loss model, server availability, topology
//! generation, probe jitter) gets its own RNG derived from the experiment
//! seed and a stable label, so adding a new random consumer never perturbs
//! the random streams of existing ones — the property that keeps experiment
//! outputs stable across code changes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a child seed from `seed` and a label, via FNV-1a over the label.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    derive_seed_bytes(seed, label.as_bytes())
}

fn derive_seed_bytes(seed: u64, label: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.rotate_left(17);
    for b in label {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // one round of splitmix64 finalisation to decorrelate similar labels
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a child seed for a numbered instance of `label` without heap
/// allocation. Produces exactly the same seed as
/// `derive_seed(derive_seed(seed, label), &index.to_string())` — the
/// historical path — so existing random streams are unperturbed; the
/// decimal digits are formatted on the stack instead.
pub fn derive_seed_indexed(seed: u64, label: &str, index: u64) -> u64 {
    let mut digits = [0u8; 20];
    let n = write_decimal(index, &mut digits);
    derive_seed_bytes(derive_seed(seed, label), &digits[..n])
}

/// Decimal-format `v` into `buf`, returning the digit count.
fn write_decimal(mut v: u64, buf: &mut [u8; 20]) -> usize {
    let mut tmp = [0u8; 20];
    let mut i = 0;
    loop {
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        i += 1;
        if v == 0 {
            break;
        }
    }
    for (j, d) in tmp[..i].iter().rev().enumerate() {
        buf[j] = *d;
    }
    i
}

/// A `SmallRng` for the component identified by `label`.
pub fn derive_rng(seed: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, label))
}

/// A `SmallRng` for a numbered instance of a component (e.g. per-link loss).
pub fn derive_rng_indexed(seed: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed_indexed(seed, label, index))
}

/// A fixed-capacity, stack-allocated label formatter: lets hot paths build
/// RNG-domain labels (`engine/unit/v3/c1`, `avail-192.0.2.7`) through
/// `core::fmt` without touching the heap, then hash them with
/// [`derive_seed`]. Labels longer than the capacity are a programming
/// error (formatting fails; [`LabelBuf::format`] panics) rather than a
/// silent truncation that would fork a random stream.
#[derive(Debug, Clone, Copy)]
pub struct LabelBuf {
    buf: [u8; 96],
    len: usize,
}

impl LabelBuf {
    /// Format `args` into a fresh stack label.
    ///
    /// ```
    /// use ecn_netsim::{derive_seed, LabelBuf};
    /// let label = LabelBuf::format(format_args!("engine/unit/v{}/c{}", 3, 1));
    /// assert_eq!(label.as_str(), "engine/unit/v3/c1");
    /// assert_eq!(
    ///     derive_seed(7, label.as_str()),
    ///     derive_seed(7, "engine/unit/v3/c1"),
    /// );
    /// ```
    pub fn format(args: std::fmt::Arguments<'_>) -> LabelBuf {
        let mut lb = LabelBuf {
            buf: [0; 96],
            len: 0,
        };
        std::fmt::Write::write_fmt(&mut lb, args).expect("label exceeds LabelBuf capacity");
        lb
    }

    /// The formatted label.
    pub fn as_str(&self) -> &str {
        // Only &str fragments are ever written, always at UTF-8 boundaries.
        std::str::from_utf8(&self.buf[..self.len]).expect("LabelBuf holds UTF-8")
    }
}

impl std::fmt::Write for LabelBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let bytes = s.as_bytes();
        if self.len + bytes.len() > self.buf.len() {
            return Err(std::fmt::Error);
        }
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, "loss");
        let mut b = derive_rng(42, "loss");
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = derive_rng(42, "loss");
        let mut b = derive_rng(42, "churn");
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_different_streams() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn indexed_instances_are_independent() {
        let a = derive_seed(derive_seed(7, "link"), "0");
        let b = derive_seed(derive_seed(7, "link"), "1");
        assert_ne!(a, b);
        let mut r0 = derive_rng_indexed(7, "link", 0);
        let mut r1 = derive_rng_indexed(7, "link", 1);
        assert_ne!(r0.gen::<u64>(), r1.gen::<u64>());
    }

    #[test]
    fn indexed_seed_matches_historical_string_path() {
        // The non-allocating digit formatter must reproduce the exact
        // seeds the to_string() path produced, or every per-link loss
        // stream in every committed golden report would fork.
        for seed in [0u64, 7, u64::MAX] {
            for index in [0u64, 1, 9, 10, 123, 1_000_000, u64::MAX] {
                assert_eq!(
                    derive_seed_indexed(seed, "link", index),
                    derive_seed(derive_seed(seed, "link"), &index.to_string()),
                    "seed {seed} index {index}"
                );
            }
        }
    }

    #[test]
    fn label_buf_formats_without_truncation() {
        let lb = LabelBuf::format(format_args!("engine/unit/v{}/c{}", 12, 3));
        assert_eq!(lb.as_str(), "engine/unit/v12/c3");
        assert_eq!(
            derive_seed(42, lb.as_str()),
            derive_seed(42, &format!("engine/unit/v{}/c{}", 12, 3))
        );
    }

    #[test]
    fn similar_labels_decorrelate() {
        // FNV alone correlates "a1"/"a2"; the splitmix finaliser must not.
        let s1 = derive_seed(0, "router-1");
        let s2 = derive_seed(0, "router-2");
        assert!(s1.abs_diff(s2) > 1 << 32);
    }
}
