//! Per-simulation event counters for the engine's typed event stream.
//!
//! The simulator itself stays observer-agnostic: when a tap is installed
//! ([`crate::sim::Sim::install_event_tap`]), the deliver/drop/ECN-rewrite
//! sites of the forwarding pipeline count into a [`SimCounters`], which
//! the campaign engine drains once per work unit and converts into typed
//! subscriber events (`ecn-core::events`). With no tap installed every
//! site is a single `Option` test — no allocation, no label cloning —
//! which is what keeps the disabled path inside the
//! `probe_hot_loop`/`alloc_regression` budgets.
//!
//! Counters use `BTreeMap` keys (stable iteration order) so draining them
//! into an exported stream is deterministic by construction, mirroring
//! the reducer discipline of `ecn-core::reducers`.

use crate::queue::QueueDropCause;
use crate::stats::DropCause;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Stable, schema-facing label for a drop cause (the JSON-lines metrics
/// export keys its `dropped` object with these).
pub fn drop_cause_label(cause: DropCause) -> &'static str {
    match cause {
        DropCause::Loss => "loss",
        DropCause::Queue(QueueDropCause::Overflow) => "queue-overflow",
        DropCause::Queue(QueueDropCause::RedEarly) => "queue-red-early",
        DropCause::Queue(QueueDropCause::RedForced) => "queue-red-forced",
        DropCause::Firewall => "firewall",
        DropCause::TtlExpired => "ttl-expired",
        DropCause::NoRoute => "no-route",
        DropCause::PolicyTos => "policy-tos",
        DropCause::HostMismatch => "host-mismatch",
    }
}

/// What one simulator observed while a tap was installed: datagram
/// delivery/drop totals, CE marks, and per-router ECN rewrites keyed by
/// the router's human-readable label (the "named hop").
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimCounters {
    /// Datagrams delivered to a matching host agent.
    pub delivered: u64,
    /// Datagrams discarded, by stable cause label.
    pub dropped: BTreeMap<&'static str, u64>,
    /// Datagrams CE-marked by a RED+ECN queue.
    pub ce_marked: u64,
    /// ECN codepoint rewrites (bleaching / legacy-TOS mangling), per
    /// named router hop.
    pub ecn_rewritten: BTreeMap<Arc<str>, u64>,
}

impl SimCounters {
    /// Count one drop.
    pub fn note_drop(&mut self, cause: DropCause) {
        *self.dropped.entry(drop_cause_label(cause)).or_insert(0) += 1;
    }

    /// Count one ECN rewrite at the named hop.
    pub fn note_ecn_rewrite(&mut self, hop: Arc<str>) {
        *self.ecn_rewritten.entry(hop).or_insert(0) += 1;
    }

    /// Total drops across causes.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Total ECN rewrites across hops.
    pub fn total_ecn_rewritten(&self) -> u64 {
        self.ecn_rewritten.values().sum()
    }

    /// Fold `other` into `self` (commutative, like reducer merges).
    pub fn merge(&mut self, other: &SimCounters) {
        self.delivered += other.delivered;
        self.ce_marked += other.ce_marked;
        for (k, v) in &other.dropped {
            *self.dropped.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.ecn_rewritten {
            *self.ecn_rewritten.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_stable() {
        let causes = [
            DropCause::Loss,
            DropCause::Queue(QueueDropCause::Overflow),
            DropCause::Queue(QueueDropCause::RedEarly),
            DropCause::Queue(QueueDropCause::RedForced),
            DropCause::Firewall,
            DropCause::TtlExpired,
            DropCause::NoRoute,
            DropCause::PolicyTos,
            DropCause::HostMismatch,
        ];
        let labels: std::collections::BTreeSet<_> =
            causes.iter().map(|&c| drop_cause_label(c)).collect();
        assert_eq!(labels.len(), causes.len(), "labels must be unique");
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = SimCounters {
            delivered: 3,
            ..SimCounters::default()
        };
        a.note_drop(DropCause::Loss);
        a.note_ecn_rewrite("pe-1".into());
        let mut b = SimCounters {
            delivered: 2,
            ..SimCounters::default()
        };
        b.note_drop(DropCause::Loss);
        b.note_drop(DropCause::Firewall);
        b.note_ecn_rewrite("pe-1".into());
        b.note_ecn_rewrite("core-2".into());

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.delivered, 5);
        assert_eq!(ab.total_dropped(), 3);
        assert_eq!(ab.total_ecn_rewritten(), 3);
        assert_eq!(ab.ecn_rewritten[&Arc::<str>::from("pe-1")], 2);
    }
}
