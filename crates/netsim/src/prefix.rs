//! IPv4 prefixes and a longest-prefix-match trie.
//!
//! Used twice in the system: as the forwarding table of every simulated
//! router, and as the IP→AS database (`ecn-asdb`). The trie is a plain
//! binary trie over address bits — small, predictable, and easy to verify.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix: address plus mask length, canonicalised so host bits are
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct, zeroing any host bits. `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Prefix {
        let len = len.min(32);
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (!0u32 << (32 - len))
        };
        Ipv4Prefix { addr: masked, len }
    }

    /// A host route.
    pub fn host(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix::new(addr, 32)
    }

    /// The base address.
    pub fn addr(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Mask length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(self) -> u8 {
        self.len
    }

    /// Does this prefix contain `ip`?
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (u32::from(ip) & (!0u32 << (32 - self.len))) == self.addr
    }

    /// Number of addresses covered.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address inside the prefix (wraps if out of range —
    /// callers allocate within bounds).
    pub fn nth(self, i: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.addr.wrapping_add(i % (self.size() as u32).max(1)))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or_else(|| format!("no '/' in {s}"))?;
        let addr: Ipv4Addr = a.parse().map_err(|e| format!("{e}"))?;
        let len: u8 = l.parse().map_err(|e| format!("{e}"))?;
        if len > 32 {
            return Err(format!("mask length {len} > 32"));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// Longest-prefix-match map from [`Ipv4Prefix`] to `T`.
#[derive(Debug, Clone)]
pub struct PrefixMap<T> {
    nodes: Vec<TrieNode<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> TrieNode<T> {
    fn empty() -> TrieNode<T> {
        TrieNode {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> Default for PrefixMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixMap<T> {
    /// An empty map.
    pub fn new() -> PrefixMap<T> {
        PrefixMap {
            nodes: vec![TrieNode::empty()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or replace; returns the previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        let addr = u32::from(prefix.addr());
        for i in 0..prefix.len() {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(next) => next as usize,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(TrieNode::empty());
                    self.nodes[node].children[bit] = Some(next as u32);
                    next
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&T> {
        let addr = u32::from(ip);
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let addr = u32::from(prefix.addr());
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix-match, also returning the matched prefix.
    pub fn lookup_prefix(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let addr = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Ipv4Prefix::new(ip, len), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_canonicalises_host_bits() {
        let pre = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(pre.to_string(), "10.1.0.0/16");
        assert!(pre.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!pre.contains(Ipv4Addr::new(10, 2, 0, 0)));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "203.0.113.7/32"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let d = p("0.0.0.0/0");
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(d.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert_eq!(d.size(), 1 << 32);
    }

    #[test]
    fn longest_match_wins() {
        let mut m = PrefixMap::new();
        m.insert(p("0.0.0.0/0"), "default");
        m.insert(p("10.0.0.0/8"), "ten");
        m.insert(p("10.1.0.0/16"), "ten-one");
        m.insert(p("10.1.2.3/32"), "host");
        assert_eq!(m.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&"host"));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 1, 9, 9)), Some(&"ten-one"));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 200, 0, 1)), Some(&"ten"));
        assert_eq!(m.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(&"default"));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn lookup_without_default_can_miss() {
        let mut m = PrefixMap::new();
        m.insert(p("192.0.2.0/24"), 1);
        assert_eq!(m.lookup(Ipv4Addr::new(192, 0, 3, 1)), None);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut m = PrefixMap::new();
        assert_eq!(m.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(m.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(m.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn lookup_prefix_reports_match_length() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), "a");
        m.insert(p("10.128.0.0/9"), "b");
        let (matched, v) = m.lookup_prefix(Ipv4Addr::new(10, 200, 1, 1)).unwrap();
        assert_eq!(v, &"b");
        assert_eq!(matched, p("10.128.0.0/9"));
    }

    #[test]
    fn nth_allocates_within_prefix() {
        let pre = p("192.0.2.0/24");
        assert_eq!(pre.nth(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(pre.nth(7), Ipv4Addr::new(192, 0, 2, 7));
        assert!(pre.contains(pre.nth(255)));
    }
}
