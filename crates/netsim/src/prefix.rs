//! IPv4 prefixes and a longest-prefix-match trie.
//!
//! Used twice in the system: as the forwarding table of every simulated
//! router, and as the IP→AS database (`ecn-asdb`). The trie is a plain
//! binary trie over address bits — small, predictable, and easy to verify.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix: address plus mask length, canonicalised so host bits are
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct, zeroing any host bits. `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Prefix {
        let len = len.min(32);
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (!0u32 << (32 - len))
        };
        Ipv4Prefix { addr: masked, len }
    }

    /// A host route.
    pub fn host(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix::new(addr, 32)
    }

    /// The base address.
    pub fn addr(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Mask length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(self) -> u8 {
        self.len
    }

    /// Does this prefix contain `ip`?
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (u32::from(ip) & (!0u32 << (32 - self.len))) == self.addr
    }

    /// Number of addresses covered.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address inside the prefix (wraps if out of range —
    /// callers allocate within bounds).
    pub fn nth(self, i: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.addr.wrapping_add(i % (self.size() as u32).max(1)))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or_else(|| format!("no '/' in {s}"))?;
        let addr: Ipv4Addr = a.parse().map_err(|e| format!("{e}"))?;
        let len: u8 = l.parse().map_err(|e| format!("{e}"))?;
        if len > 32 {
            return Err(format!("mask length {len} > 32"));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// Longest-prefix-match map from [`Ipv4Prefix`] to `T`.
///
/// A path-compressed binary radix trie: each node carries the full prefix
/// it sits at, so a chain of single-child bit steps collapses into one
/// node. A host route costs one leaf (plus at most one branch node)
/// instead of 32 bit-level nodes — the difference between per-router
/// forwarding tables dominating a 10⁵-server world's memory and being
/// negligible. Lookup semantics are identical to the uncompressed trie.
#[derive(Debug, Clone)]
pub struct PrefixMap<T> {
    /// Node 0 is the root (the `0.0.0.0/0` position); children always
    /// strictly extend their parent's prefix.
    nodes: Vec<TrieNode<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    /// The prefix this node sits at (host bits zero).
    addr: u32,
    plen: u8,
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> TrieNode<T> {
    fn at(addr: u32, plen: u8) -> TrieNode<T> {
        TrieNode {
            addr,
            plen,
            children: [None, None],
            value: None,
        }
    }
}

/// Bit `i` of `addr`, counting from the most significant (`i < 32`).
#[inline]
fn bit_at(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

/// Does the prefix `(addr, plen)` cover `ip`?
#[inline]
fn covers(addr: u32, plen: u8, ip: u32) -> bool {
    plen == 0 || (addr ^ ip) >> (32 - plen) == 0
}

impl<T> Default for PrefixMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixMap<T> {
    /// An empty map.
    pub fn new() -> PrefixMap<T> {
        PrefixMap {
            nodes: vec![TrieNode::at(0, 0)],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or replace; returns the previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let qaddr = u32::from(prefix.addr());
        let qlen = prefix.len();
        let mut node = 0usize;
        loop {
            // invariant: nodes[node] covers the query prefix
            if self.nodes[node].plen == qlen {
                let old = self.nodes[node].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let bit = bit_at(qaddr, self.nodes[node].plen);
            let Some(child) = self.nodes[node].children[bit] else {
                let leaf = self.nodes.len() as u32;
                let mut n = TrieNode::at(qaddr, qlen);
                n.value = Some(value);
                self.nodes.push(n);
                self.nodes[node].children[bit] = Some(leaf);
                self.len += 1;
                return None;
            };
            let child = child as usize;
            let (caddr, clen) = (self.nodes[child].addr, self.nodes[child].plen);
            // longest prefix the query shares with the child's position
            let shared = (((qaddr ^ caddr).leading_zeros() as u8).min(qlen)).min(clen);
            if shared == clen {
                // child's prefix covers the query: descend
                node = child;
            } else if shared == qlen {
                // the query sits between node and child: splice it in
                let mid = self.nodes.len() as u32;
                let mut n = TrieNode::at(qaddr, qlen);
                n.value = Some(value);
                n.children[bit_at(caddr, qlen)] = Some(child as u32);
                self.nodes.push(n);
                self.nodes[node].children[bit] = Some(mid);
                self.len += 1;
                return None;
            } else {
                // diverge below `shared`: branch node forks child and query
                let fork_addr = if shared == 0 {
                    0
                } else {
                    qaddr & (!0u32 << (32 - shared))
                };
                let fork = self.nodes.len() as u32;
                self.nodes.push(TrieNode::at(fork_addr, shared));
                let leaf = self.nodes.len() as u32;
                let mut n = TrieNode::at(qaddr, qlen);
                n.value = Some(value);
                self.nodes.push(n);
                let f = fork as usize;
                self.nodes[f].children[bit_at(caddr, shared)] = Some(child as u32);
                self.nodes[f].children[bit_at(qaddr, shared)] = Some(leaf);
                self.nodes[node].children[bit] = Some(fork);
                self.len += 1;
                return None;
            }
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&T> {
        self.lookup_node(u32::from(ip))
            .and_then(|n| self.nodes[n].value.as_ref())
    }

    /// Deepest valued node covering `addr`.
    fn lookup_node(&self, addr: u32) -> Option<usize> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref().map(|_| 0usize);
        loop {
            let n = &self.nodes[node];
            if n.plen == 32 {
                return best;
            }
            let Some(child) = n.children[bit_at(addr, n.plen)] else {
                return best;
            };
            let child = child as usize;
            let c = &self.nodes[child];
            if !covers(c.addr, c.plen, addr) {
                return best;
            }
            if c.value.is_some() {
                best = Some(child);
            }
            node = child;
        }
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let qaddr = u32::from(prefix.addr());
        let qlen = prefix.len();
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.plen == qlen {
                return n.value.as_ref();
            }
            let child = n.children[bit_at(qaddr, n.plen)]? as usize;
            let c = &self.nodes[child];
            if c.plen > qlen || !covers(c.addr, c.plen, qaddr) {
                return None;
            }
            node = child;
        }
    }

    /// Longest-prefix-match, also returning the matched prefix.
    pub fn lookup_prefix(&self, ip: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let node = self.lookup_node(u32::from(ip))?;
        let n = &self.nodes[node];
        Some((Ipv4Prefix::new(ip, n.plen), n.value.as_ref()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_canonicalises_host_bits() {
        let pre = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(pre.to_string(), "10.1.0.0/16");
        assert!(pre.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!pre.contains(Ipv4Addr::new(10, 2, 0, 0)));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "203.0.113.7/32"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let d = p("0.0.0.0/0");
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(d.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert_eq!(d.size(), 1 << 32);
    }

    #[test]
    fn longest_match_wins() {
        let mut m = PrefixMap::new();
        m.insert(p("0.0.0.0/0"), "default");
        m.insert(p("10.0.0.0/8"), "ten");
        m.insert(p("10.1.0.0/16"), "ten-one");
        m.insert(p("10.1.2.3/32"), "host");
        assert_eq!(m.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&"host"));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 1, 9, 9)), Some(&"ten-one"));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 200, 0, 1)), Some(&"ten"));
        assert_eq!(m.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(&"default"));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn lookup_without_default_can_miss() {
        let mut m = PrefixMap::new();
        m.insert(p("192.0.2.0/24"), 1);
        assert_eq!(m.lookup(Ipv4Addr::new(192, 0, 3, 1)), None);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut m = PrefixMap::new();
        assert_eq!(m.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(m.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(m.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn lookup_prefix_reports_match_length() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), "a");
        m.insert(p("10.128.0.0/9"), "b");
        let (matched, v) = m.lookup_prefix(Ipv4Addr::new(10, 200, 1, 1)).unwrap();
        assert_eq!(v, &"b");
        assert_eq!(matched, p("10.128.0.0/9"));
    }

    /// Dense sibling host routes under one branch node — the forwarding
    /// shape every dest-AS router table has (many /32s, one default).
    #[test]
    fn sibling_host_routes_fork_correctly() {
        let mut m = PrefixMap::new();
        m.insert(p("0.0.0.0/0"), 0u32);
        for last in 0..64u32 {
            m.insert(
                Ipv4Prefix::host(Ipv4Addr::from(0xc000_0200 + last)),
                last + 1,
            );
        }
        for last in 0..64u32 {
            let ip = Ipv4Addr::from(0xc000_0200 + last);
            assert_eq!(m.lookup(ip), Some(&(last + 1)), "{ip}");
            assert_eq!(m.get(Ipv4Prefix::host(ip)), Some(&(last + 1)));
        }
        assert_eq!(m.lookup(Ipv4Addr::new(192, 0, 3, 0)), Some(&0));
        assert_eq!(m.len(), 65);
    }

    #[test]
    fn radix_matches_naive_reference_on_random_tables() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // naive reference: scan all stored prefixes for the longest match
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = PrefixMap::new();
            let mut reference: Vec<(Ipv4Prefix, u32)> = Vec::new();
            for i in 0..200u32 {
                // cluster addresses so prefixes actually nest and collide
                let addr = Ipv4Addr::from(rng.gen_range(0..1u32 << 12) << 8);
                let len = rng.gen_range(0..=32u32) as u8;
                let pre = Ipv4Prefix::new(addr, len);
                let old = m.insert(pre, i);
                match reference.iter_mut().find(|(q, _)| *q == pre) {
                    Some((_, v)) => {
                        assert_eq!(old, Some(*v), "seed {seed}: stale replace at {pre}");
                        *v = i;
                    }
                    None => {
                        assert_eq!(old, None, "seed {seed}: phantom value at {pre}");
                        reference.push((pre, i));
                    }
                }
            }
            assert_eq!(m.len(), reference.len());
            for _ in 0..400 {
                let ip = Ipv4Addr::from(rng.gen_range(0..1u32 << 12) << 8);
                let want = reference
                    .iter()
                    .filter(|(q, _)| q.contains(ip))
                    .max_by_key(|(q, _)| q.len())
                    .map(|(q, v)| (*q, v));
                assert_eq!(
                    m.lookup_prefix(ip),
                    want,
                    "seed {seed}: lookup_prefix({ip}) diverged from reference"
                );
                assert_eq!(m.lookup(ip), want.map(|(_, v)| v), "seed {seed}");
            }
        }
    }

    #[test]
    fn nth_allocates_within_prefix() {
        let pre = p("192.0.2.0/24");
        assert_eq!(pre.nth(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(pre.nth(7), Ipv4Addr::new(192, 0, 2, 7));
        assert!(pre.contains(pre.nth(255)));
    }
}
