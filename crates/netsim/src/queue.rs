//! Queue disciplines for bottleneck links: DropTail and RED with ECN
//! marking (RFC 2309 / RFC 3168 §5), plus two CE-*marking* AQM models for
//! the modern-ECN scenario family.
//!
//! On the measurement paths the paper probes, queues are uncongested and no
//! CE marks were observed (§4.2). The RED implementation exists so the same
//! substrate can demonstrate *why* ECN matters for UDP media traffic (the
//! paper's §1 motivation): the `rtp_media` example pushes a media flow
//! through a RED bottleneck and adapts to the CE marks it gets back.
//!
//! [`QueueDisc::MarkProb`] and [`QueueDisc::CodelMark`] exist for the
//! endpoint-validation scenarios: deployed AQMs that CE-mark ECT traffic a
//! validator must accept as *capability-confirming* congestion signal, not
//! mangling. Both only ever mark markable codepoints and never touch
//! not-ECT traffic (RFC 3168 §5).

use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Discipline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueueDisc {
    /// Tail-drop with a byte limit.
    DropTail {
        /// Maximum backlog in bytes before arriving packets are dropped.
        limit_bytes: u64,
    },
    /// Random Early Detection with ECN marking.
    Red {
        /// Average-queue threshold where early marking/dropping begins.
        min_th_bytes: u64,
        /// Average-queue threshold where everything is marked/dropped.
        max_th_bytes: u64,
        /// Marking probability at `max_th`.
        max_p: f64,
        /// EWMA weight for the average queue estimate.
        weight: f64,
        /// If true, ECT packets are CE-marked instead of dropped.
        ecn: bool,
        /// Hard byte limit (physical buffer).
        limit_bytes: u64,
    },
    /// RED-style probabilistic CE marker: every markable packet is CE-marked
    /// with fixed probability `prob`, independent of the instantaneous
    /// backlog — the steady-state behaviour of a congested AQM as seen by
    /// sparse probe traffic. Not-ECT packets pass untouched (subject only to
    /// the hard byte limit); the marker never drops in place of marking.
    MarkProb {
        /// Per-packet marking probability for markable (ECT) packets.
        prob: f64,
        /// Hard byte limit (physical buffer).
        limit_bytes: u64,
    },
    /// CoDel-style sojourn-threshold CE marker (L4S-style immediate
    /// marking): a markable packet whose standing-queue sojourn exceeds
    /// `target` is CE-marked, deterministically and without randomness.
    /// Not-ECT packets pass untouched below the hard byte limit.
    CodelMark {
        /// Sojourn threshold above which markable packets are CE-marked.
        target: Nanos,
        /// Hard byte limit (physical buffer).
        limit_bytes: u64,
    },
}

impl QueueDisc {
    /// A deep FIFO for core links that should never drop in this study.
    pub fn deep_fifo() -> QueueDisc {
        QueueDisc::DropTail {
            limit_bytes: 64 * 1024 * 1024,
        }
    }

    /// A RED+ECN bottleneck of roughly `bdp_bytes` buffering.
    pub fn red_ecn(bdp_bytes: u64) -> QueueDisc {
        QueueDisc::Red {
            min_th_bytes: bdp_bytes / 4,
            max_th_bytes: (bdp_bytes * 3) / 4,
            max_p: 0.1,
            weight: 0.02,
            ecn: true,
            limit_bytes: bdp_bytes * 2,
        }
    }

    /// A steady-state probabilistic AQM marker with a deep buffer.
    pub fn aqm_mark(prob: f64) -> QueueDisc {
        QueueDisc::MarkProb {
            prob,
            limit_bytes: 64 * 1024 * 1024,
        }
    }

    /// An L4S-style sojourn-threshold marker with a deep buffer.
    pub fn l4s_mark(target: Nanos) -> QueueDisc {
        QueueDisc::CodelMark {
            target,
            limit_bytes: 64 * 1024 * 1024,
        }
    }

    /// True for the disciplines that can CE-mark traffic: RED with `ecn`
    /// on, and both AQM markers. A link carrying one of these is an
    /// active middlebox the multi-hop tunnelling fast path must not
    /// collapse away (see `Link::is_passive`).
    pub fn can_mark(&self) -> bool {
        matches!(
            self,
            QueueDisc::Red { ecn: true, .. }
                | QueueDisc::MarkProb { .. }
                | QueueDisc::CodelMark { .. }
        )
    }
}

/// What the queue decided for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueVerdict {
    /// Enqueue unchanged.
    Enqueue,
    /// Enqueue and CE-mark (RED + ECT packet).
    EnqueueMarked,
    /// Drop (overflow, or RED early drop of a not-ECT packet).
    Drop(QueueDropCause),
}

/// Why the queue dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueDropCause {
    /// Hard buffer overflow.
    Overflow,
    /// RED early drop.
    RedEarly,
    /// RED forced drop above max threshold.
    RedForced,
}

/// Runtime queue state for one link.
#[derive(Debug, Clone)]
pub struct QueueState {
    disc: QueueDisc,
    /// EWMA of the queue size in bytes (RED only).
    avg_bytes: f64,
    /// Packets since the last RED mark/drop (RED's uniformisation counter).
    count_since_mark: u64,
}

impl QueueState {
    /// Fresh state for a discipline.
    pub fn new(disc: QueueDisc) -> QueueState {
        QueueState {
            disc,
            avg_bytes: 0.0,
            count_since_mark: 0,
        }
    }

    /// The configured discipline.
    pub fn disc(&self) -> &QueueDisc {
        &self.disc
    }

    /// Current average queue estimate (test/diagnostic hook).
    pub fn avg_bytes(&self) -> f64 {
        self.avg_bytes
    }

    /// Decide the fate of a packet arriving to a backlog of
    /// `backlog_bytes`. `sojourn` is the queueing delay the packet will
    /// experience before transmission begins (zero on unlimited-rate
    /// links); `ect` says whether the packet is CE-markable.
    pub fn on_arrival(
        &mut self,
        backlog_bytes: u64,
        packet_bytes: u64,
        sojourn: Nanos,
        ect: bool,
        rng: &mut SmallRng,
    ) -> QueueVerdict {
        match self.disc {
            QueueDisc::DropTail { limit_bytes } => {
                if backlog_bytes + packet_bytes > limit_bytes {
                    QueueVerdict::Drop(QueueDropCause::Overflow)
                } else {
                    QueueVerdict::Enqueue
                }
            }
            QueueDisc::MarkProb { prob, limit_bytes } => {
                if backlog_bytes + packet_bytes > limit_bytes {
                    return QueueVerdict::Drop(QueueDropCause::Overflow);
                }
                // Only markable packets consume randomness: not-ECT
                // traffic through an AQM draws nothing, so a zero-AQM
                // world and a not-ECT flow see identical RNG streams.
                if ect && rng.gen_bool(prob) {
                    QueueVerdict::EnqueueMarked
                } else {
                    QueueVerdict::Enqueue
                }
            }
            QueueDisc::CodelMark {
                target,
                limit_bytes,
            } => {
                if backlog_bytes + packet_bytes > limit_bytes {
                    return QueueVerdict::Drop(QueueDropCause::Overflow);
                }
                if ect && sojourn > target {
                    QueueVerdict::EnqueueMarked
                } else {
                    QueueVerdict::Enqueue
                }
            }
            QueueDisc::Red {
                min_th_bytes,
                max_th_bytes,
                max_p,
                weight,
                ecn,
                limit_bytes,
            } => {
                if backlog_bytes + packet_bytes > limit_bytes {
                    return QueueVerdict::Drop(QueueDropCause::Overflow);
                }
                self.avg_bytes = (1.0 - weight) * self.avg_bytes + weight * backlog_bytes as f64;
                let avg = self.avg_bytes;
                if avg < min_th_bytes as f64 {
                    self.count_since_mark += 1;
                    return QueueVerdict::Enqueue;
                }
                if avg >= max_th_bytes as f64 {
                    self.count_since_mark = 0;
                    return if ecn && ect {
                        QueueVerdict::EnqueueMarked
                    } else {
                        QueueVerdict::Drop(QueueDropCause::RedForced)
                    };
                }
                // Between thresholds: geometric inter-mark spacing (Floyd's
                // count correction).
                let base_p =
                    max_p * (avg - min_th_bytes as f64) / (max_th_bytes - min_th_bytes) as f64;
                let p = (base_p / (1.0 - base_p * self.count_since_mark as f64)).clamp(0.0, 1.0);
                self.count_since_mark += 1;
                if rng.gen_bool(p) {
                    self.count_since_mark = 0;
                    if ecn && ect {
                        QueueVerdict::EnqueueMarked
                    } else {
                        QueueVerdict::Drop(QueueDropCause::RedEarly)
                    }
                } else {
                    QueueVerdict::Enqueue
                }
            }
        }
    }
}

/// Drain timing helper: given a link `rate` in bits/s, how long does a
/// packet of `bytes` take to serialise? `None` rate = infinitely fast.
pub fn serialisation_delay(rate_bps: Option<u64>, bytes: u64) -> Nanos {
    match rate_bps {
        None => Nanos::ZERO,
        Some(0) => Nanos::ZERO,
        Some(rate) => Nanos((bytes * 8).saturating_mul(1_000_000_000) / rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn droptail_accepts_under_limit() {
        let mut q = QueueState::new(QueueDisc::DropTail { limit_bytes: 3000 });
        let mut rng = derive_rng(1, "q");
        assert_eq!(
            q.on_arrival(0, 1500, Nanos::ZERO, false, &mut rng),
            QueueVerdict::Enqueue
        );
        assert_eq!(
            q.on_arrival(1500, 1500, Nanos::ZERO, false, &mut rng),
            QueueVerdict::Enqueue
        );
        assert_eq!(
            q.on_arrival(3000, 1500, Nanos::ZERO, false, &mut rng),
            QueueVerdict::Drop(QueueDropCause::Overflow)
        );
    }

    #[test]
    fn red_idle_queue_never_marks() {
        let mut q = QueueState::new(QueueDisc::red_ecn(100_000));
        let mut rng = derive_rng(2, "q");
        for _ in 0..1000 {
            assert_eq!(
                q.on_arrival(0, 100, Nanos::ZERO, true, &mut rng),
                QueueVerdict::Enqueue
            );
        }
    }

    #[test]
    fn red_marks_ect_and_drops_not_ect_when_congested() {
        let disc = QueueDisc::Red {
            min_th_bytes: 10_000,
            max_th_bytes: 30_000,
            max_p: 0.1,
            weight: 0.2,
            ecn: true,
            limit_bytes: 1_000_000,
        };
        let mut rng = derive_rng(3, "q");

        let mut marks = 0;
        let mut drops = 0;
        let mut q = QueueState::new(disc);
        for _ in 0..5000 {
            match q.on_arrival(25_000, 1000, Nanos::ZERO, true, &mut rng) {
                QueueVerdict::EnqueueMarked => marks += 1,
                QueueVerdict::Drop(_) => drops += 1,
                QueueVerdict::Enqueue => {}
            }
        }
        assert!(marks > 100, "ECT packets should be CE-marked, got {marks}");
        assert_eq!(drops, 0, "ECT packets must not be early-dropped");

        let mut q = QueueState::new(disc);
        let mut marks_ne = 0;
        let mut drops_ne = 0;
        for _ in 0..5000 {
            match q.on_arrival(25_000, 1000, Nanos::ZERO, false, &mut rng) {
                QueueVerdict::EnqueueMarked => marks_ne += 1,
                QueueVerdict::Drop(_) => drops_ne += 1,
                QueueVerdict::Enqueue => {}
            }
        }
        assert_eq!(marks_ne, 0, "not-ECT packets can never be marked");
        assert!(
            drops_ne > 100,
            "not-ECT packets should be dropped, got {drops_ne}"
        );
    }

    #[test]
    fn red_forces_above_max_threshold() {
        let disc = QueueDisc::Red {
            min_th_bytes: 1_000,
            max_th_bytes: 2_000,
            max_p: 0.1,
            weight: 1.0, // avg == instantaneous
            ecn: true,
            limit_bytes: 1_000_000,
        };
        let mut q = QueueState::new(disc);
        let mut rng = derive_rng(4, "q");
        assert_eq!(
            q.on_arrival(50_000, 100, Nanos::ZERO, true, &mut rng),
            QueueVerdict::EnqueueMarked
        );
        assert_eq!(
            q.on_arrival(50_000, 100, Nanos::ZERO, false, &mut rng),
            QueueVerdict::Drop(QueueDropCause::RedForced)
        );
    }

    #[test]
    fn red_hard_limit_still_applies() {
        let mut q = QueueState::new(QueueDisc::red_ecn(10_000));
        let mut rng = derive_rng(5, "q");
        assert_eq!(
            q.on_arrival(25_000, 1500, Nanos::ZERO, true, &mut rng),
            QueueVerdict::Drop(QueueDropCause::Overflow)
        );
    }

    #[test]
    fn mark_prob_marks_only_markable() {
        let mut q = QueueState::new(QueueDisc::aqm_mark(0.5));
        let mut rng = derive_rng(6, "q");
        let mut marks = 0;
        for _ in 0..2000 {
            match q.on_arrival(0, 100, Nanos::ZERO, true, &mut rng) {
                QueueVerdict::EnqueueMarked => marks += 1,
                QueueVerdict::Enqueue => {}
                other => panic!("{other:?}"),
            }
        }
        assert!((800..1200).contains(&marks), "marks {marks}");
        // not-ECT traffic is never marked, never dropped, and draws no RNG
        for _ in 0..2000 {
            assert_eq!(
                q.on_arrival(0, 100, Nanos::ZERO, false, &mut rng),
                QueueVerdict::Enqueue
            );
        }
    }

    #[test]
    fn mark_prob_not_ect_draws_no_randomness() {
        let disc = QueueDisc::aqm_mark(0.5);
        let mut a = derive_rng(7, "q");
        let mut b = derive_rng(7, "q");
        let mut qa = QueueState::new(disc);
        // stream a: 100 not-ECT packets through the marker, then one draw
        for _ in 0..100 {
            qa.on_arrival(0, 100, Nanos::ZERO, false, &mut a);
        }
        // stream b: no packets at all
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn codel_mark_thresholds_on_sojourn() {
        let mut q = QueueState::new(QueueDisc::l4s_mark(Nanos::from_millis(1)));
        let mut rng = derive_rng(8, "q");
        // below target: untouched
        assert_eq!(
            q.on_arrival(0, 100, Nanos::from_micros(900), true, &mut rng),
            QueueVerdict::Enqueue
        );
        // above target, markable: marked
        assert_eq!(
            q.on_arrival(0, 100, Nanos::from_millis(2), true, &mut rng),
            QueueVerdict::EnqueueMarked
        );
        // above target, not-ECT: passes unmarked (marker never drops)
        assert_eq!(
            q.on_arrival(0, 100, Nanos::from_millis(2), false, &mut rng),
            QueueVerdict::Enqueue
        );
    }

    #[test]
    fn markers_respect_hard_limit() {
        let mut rng = derive_rng(9, "q");
        let mut q = QueueState::new(QueueDisc::MarkProb {
            prob: 1.0,
            limit_bytes: 1000,
        });
        assert_eq!(
            q.on_arrival(900, 200, Nanos::ZERO, true, &mut rng),
            QueueVerdict::Drop(QueueDropCause::Overflow)
        );
        let mut q = QueueState::new(QueueDisc::CodelMark {
            target: Nanos::ZERO,
            limit_bytes: 1000,
        });
        assert_eq!(
            q.on_arrival(900, 200, Nanos::from_secs(1), true, &mut rng),
            QueueVerdict::Drop(QueueDropCause::Overflow)
        );
    }

    #[test]
    fn can_mark_identifies_active_disciplines() {
        assert!(!QueueDisc::deep_fifo().can_mark());
        assert!(QueueDisc::red_ecn(10_000).can_mark());
        assert!(QueueDisc::aqm_mark(0.1).can_mark());
        assert!(QueueDisc::l4s_mark(Nanos::from_millis(1)).can_mark());
        let red_drop = QueueDisc::Red {
            min_th_bytes: 1,
            max_th_bytes: 2,
            max_p: 0.1,
            weight: 0.5,
            ecn: false,
            limit_bytes: 100,
        };
        assert!(!red_drop.can_mark());
    }

    #[test]
    fn serialisation_delay_math() {
        // 1500 bytes at 12 kbit/s = 1 s
        assert_eq!(serialisation_delay(Some(12_000), 1500), Nanos::from_secs(1));
        assert_eq!(serialisation_delay(None, 1500), Nanos::ZERO);
        assert_eq!(serialisation_delay(Some(0), 1500), Nanos::ZERO);
    }
}
