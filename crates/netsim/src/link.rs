//! Directed links: propagation delay, serialisation rate, a queue
//! discipline, and a loss process.
//!
//! The link model is the standard fluid one: a link tracks the time until
//! which its transmitter is busy; an offered packet either joins the
//! (virtual) queue — extending `busy_until` — or is dropped by the
//! discipline/loss process. One event per hop keeps the 210-trace campaign
//! (hundreds of millions of hop traversals) tractable.

use crate::loss::{LossModel, LossProcess};
use crate::queue::{serialisation_delay, QueueDisc, QueueDropCause, QueueState, QueueVerdict};
use crate::time::Nanos;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Index of a directed link in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Index of a node in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Static link properties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProps {
    /// One-way propagation delay.
    pub delay: Nanos,
    /// Serialisation rate in bits/s. `None` = infinitely fast (no queueing),
    /// the right model for uncongested core links under probe traffic.
    pub rate_bps: Option<u64>,
    /// Queue discipline (only meaningful with a finite rate).
    pub queue: QueueDisc,
    /// Loss process on the wire.
    pub loss: LossModel,
}

impl LinkProps {
    /// A clean link: fixed delay, no rate limit, no loss.
    pub fn clean(delay: Nanos) -> LinkProps {
        LinkProps {
            delay,
            rate_bps: None,
            queue: QueueDisc::deep_fifo(),
            loss: LossModel::None,
        }
    }

    /// A lossy link with independent loss.
    pub fn lossy(delay: Nanos, p: f64) -> LinkProps {
        LinkProps {
            loss: LossModel::Bernoulli { p },
            ..LinkProps::clean(delay)
        }
    }

    /// A link with bursty (Gilbert–Elliott) loss at the given mean rate.
    pub fn bursty(delay: Nanos, mean_loss: f64) -> LinkProps {
        LinkProps {
            loss: LossModel::congested_access(mean_loss),
            ..LinkProps::clean(delay)
        }
    }

    /// A rate-limited bottleneck with the given queue.
    pub fn bottleneck(delay: Nanos, rate_bps: u64, queue: QueueDisc) -> LinkProps {
        LinkProps {
            delay,
            rate_bps: Some(rate_bps),
            queue,
            loss: LossModel::None,
        }
    }
}

/// What happened when a packet was offered to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end at `at`; `ce_mark` means the
    /// queue asked for it to be CE-marked (RED + ECT).
    Deliver {
        /// Arrival time at the far end.
        at: Nanos,
        /// CE-mark the packet before delivery.
        ce_mark: bool,
    },
    /// Dropped by the loss process.
    Lost,
    /// Dropped by the queue.
    Dropped(QueueDropCause),
}

/// A directed link plus its runtime state.
#[derive(Debug, Clone)]
pub struct Link {
    /// Own id.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Static properties.
    pub props: LinkProps,
    queue: QueueState,
    loss: LossProcess,
    busy_until: Nanos,
}

impl Link {
    /// Build a link with fresh state.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, props: LinkProps) -> Link {
        Link {
            id,
            from,
            to,
            props,
            queue: QueueState::new(props.queue),
            loss: LossProcess::new(props.loss),
            busy_until: Nanos::ZERO,
        }
    }

    /// Current backlog in bytes, inferred from the busy horizon.
    pub fn backlog_bytes(&self, now: Nanos) -> u64 {
        match self.props.rate_bps {
            None | Some(0) => 0,
            Some(rate) => {
                let busy = self.busy_until.saturating_sub(now);
                busy.0.saturating_mul(rate) / 8 / 1_000_000_000
            }
        }
    }

    /// True when [`Self::offer`] is a pure function of the packet for any
    /// realistic datagram: no rate limit (so no queueing and no
    /// `busy_until` mutation), no loss process, and a drop-tail queue too
    /// deep to overflow an IPv4-sized packet. Traversing such a link
    /// draws no randomness and mutates no link state — the property the
    /// simulator's multi-hop tunnelling fast path relies on.
    pub fn is_passive(&self) -> bool {
        self.props.rate_bps.is_none()
            && matches!(self.props.loss, LossModel::None)
            && matches!(
                self.props.queue,
                QueueDisc::DropTail { limit_bytes } if limit_bytes >= 65_535
            )
    }

    /// Offer a packet of `bytes` bytes at `now`; `ect` marks CE-markability.
    pub fn offer(&mut self, now: Nanos, bytes: u64, ect: bool, rng: &mut SmallRng) -> LinkOutcome {
        if self.loss.should_drop(now, ect, rng) {
            return LinkOutcome::Lost;
        }
        let backlog = self.backlog_bytes(now);
        let sojourn = self.busy_until.saturating_sub(now);
        let verdict = self.queue.on_arrival(backlog, bytes, sojourn, ect, rng);
        let ce_mark = match verdict {
            QueueVerdict::Drop(cause) => return LinkOutcome::Dropped(cause),
            QueueVerdict::EnqueueMarked => true,
            QueueVerdict::Enqueue => false,
        };
        let start = self.busy_until.max(now);
        let tx = serialisation_delay(self.props.rate_bps, bytes);
        self.busy_until = start + tx;
        LinkOutcome::Deliver {
            at: self.busy_until + self.props.delay,
            ce_mark,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    fn mk(props: LinkProps) -> Link {
        Link::new(LinkId(0), NodeId(0), NodeId(1), props)
    }

    #[test]
    fn clean_link_delivers_after_delay() {
        let mut l = mk(LinkProps::clean(Nanos::from_millis(10)));
        let mut rng = derive_rng(1, "l");
        match l.offer(Nanos::from_secs(1), 100, false, &mut rng) {
            LinkOutcome::Deliver { at, ce_mark } => {
                assert_eq!(at, Nanos::from_secs(1) + Nanos::from_millis(10));
                assert!(!ce_mark);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rate_limited_link_serialises_back_to_back() {
        // 8 kbit/s, 1000-byte packets => 1 s each.
        let mut l = mk(LinkProps::bottleneck(
            Nanos::ZERO,
            8_000,
            QueueDisc::deep_fifo(),
        ));
        let mut rng = derive_rng(2, "l");
        let a = l.offer(Nanos::ZERO, 1000, false, &mut rng);
        let b = l.offer(Nanos::ZERO, 1000, false, &mut rng);
        match (a, b) {
            (LinkOutcome::Deliver { at: t1, .. }, LinkOutcome::Deliver { at: t2, .. }) => {
                assert_eq!(t1, Nanos::from_secs(1));
                assert_eq!(t2, Nanos::from_secs(2));
            }
            other => panic!("{other:?}"),
        }
        // backlog reflects the queued second packet
        assert!(l.backlog_bytes(Nanos::ZERO) > 0);
        // after the queue drains, backlog is zero again
        assert_eq!(l.backlog_bytes(Nanos::from_secs(5)), 0);
    }

    #[test]
    fn droptail_overflow_on_small_buffer() {
        // The backlog includes the packet in transmission, so a 2500-byte
        // limit fits two 1000-byte packets but not a third.
        let props = LinkProps::bottleneck(
            Nanos::ZERO,
            8_000,
            QueueDisc::DropTail { limit_bytes: 2500 },
        );
        let mut l = mk(props);
        let mut rng = derive_rng(3, "l");
        assert!(matches!(
            l.offer(Nanos::ZERO, 1000, false, &mut rng),
            LinkOutcome::Deliver { .. }
        ));
        assert!(matches!(
            l.offer(Nanos::ZERO, 1000, false, &mut rng),
            LinkOutcome::Deliver { .. }
        ));
        // third packet sees 2000 bytes of backlog: 2000 + 1000 > 2500
        assert!(matches!(
            l.offer(Nanos::ZERO, 1000, false, &mut rng),
            LinkOutcome::Dropped(QueueDropCause::Overflow)
        ));
    }

    #[test]
    fn lossy_link_loses_roughly_p() {
        let mut l = mk(LinkProps::lossy(Nanos::ZERO, 0.2));
        let mut rng = derive_rng(4, "l");
        let lost = (0..10_000)
            .filter(|i| matches!(l.offer(Nanos(*i), 100, false, &mut rng), LinkOutcome::Lost))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn aqm_links_are_never_passive() {
        let passive = mk(LinkProps::clean(Nanos::from_millis(1)));
        assert!(passive.is_passive());
        let mark = mk(LinkProps {
            queue: QueueDisc::aqm_mark(0.25),
            ..LinkProps::clean(Nanos::from_millis(1))
        });
        assert!(!mark.is_passive(), "MarkProb must defeat tunnel collapse");
        let codel = mk(LinkProps {
            queue: QueueDisc::l4s_mark(Nanos::from_millis(1)),
            ..LinkProps::clean(Nanos::from_millis(1))
        });
        assert!(!codel.is_passive(), "CodelMark must defeat tunnel collapse");
    }

    #[test]
    fn codel_bottleneck_marks_backlogged_train() {
        // 1 Mbit/s, 1000-byte packets => 8 ms serialisation each; a
        // back-to-back train exceeds the 1 ms sojourn target from the
        // second packet on.
        let mut l = mk(LinkProps::bottleneck(
            Nanos::ZERO,
            1_000_000,
            QueueDisc::l4s_mark(Nanos::from_millis(1)),
        ));
        let mut rng = derive_rng(6, "l");
        let mut marks = 0;
        for _ in 0..5 {
            match l.offer(Nanos::ZERO, 1000, true, &mut rng) {
                LinkOutcome::Deliver { ce_mark, .. } => marks += usize::from(ce_mark),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(marks, 4, "all but the head-of-line packet are marked");
        // the same train sent not-ECT passes unmarked
        let mut l = mk(LinkProps::bottleneck(
            Nanos::ZERO,
            1_000_000,
            QueueDisc::l4s_mark(Nanos::from_millis(1)),
        ));
        for _ in 0..5 {
            match l.offer(Nanos::ZERO, 1000, false, &mut rng) {
                LinkOutcome::Deliver { ce_mark, .. } => assert!(!ce_mark),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn red_bottleneck_marks_ect_under_load() {
        // Responsive RED (weight 1.0 = instantaneous average) over a wide
        // band: every packet past min_th has a marking chance, and none are
        // dropped because they are ECT.
        let disc = QueueDisc::Red {
            min_th_bytes: 2_000,
            max_th_bytes: 150_000,
            max_p: 0.5,
            weight: 1.0,
            ecn: true,
            limit_bytes: 10_000_000,
        };
        let mut l = mk(LinkProps::bottleneck(Nanos::ZERO, 80_000, disc));
        let mut rng = derive_rng(5, "l");
        let mut marks = 0;
        let mut drops = 0;
        for _ in 0..200 {
            match l.offer(Nanos::ZERO, 1000, true, &mut rng) {
                LinkOutcome::Deliver { ce_mark: true, .. } => marks += 1,
                LinkOutcome::Dropped(_) | LinkOutcome::Lost => drops += 1,
                LinkOutcome::Deliver { .. } => {}
            }
        }
        assert!(marks > 10, "expected CE marks under load, got {marks}");
        assert_eq!(drops, 0, "ECT traffic must be marked, not dropped");
    }
}
