//! The flat event queue: a hierarchical timer wheel with a sorted
//! ready-run, replacing the old `BinaryHeap<Scheduled>`.
//!
//! # Why not a heap
//!
//! A binary heap pays `O(log n)` pointer-chasing comparisons on every
//! push *and* pop, and its sift paths touch scattered cache lines. The
//! simulator's schedule is overwhelmingly near-term (link delays of
//! microseconds to milliseconds, socket timeouts of a second), which is
//! exactly the access pattern timer wheels exploit: an insert is a
//! bucket push at an array offset computed with a shift, and a pop is a
//! `Vec::pop` from the currently armed bucket.
//!
//! # Structure
//!
//! Virtual time is quantised into *ticks* of `2^17` ns (~131 µs). Two
//! wheel levels of 256 slots each cover the near future:
//!
//! - level 0: one slot per tick — covers an aligned block of 256 ticks
//!   (~33.5 ms),
//! - level 1: one slot per 256 ticks — covers an aligned block of 256
//!   level-0 blocks (~8.6 s, enough for every socket timeout the stack
//!   arms),
//! - overflow: a small binary heap for anything beyond the level-1
//!   horizon (rare: scenario-scale timers only).
//!
//! Each level keeps an occupancy bitmap (`[u64; 4]`), so finding the
//! next non-empty slot is a couple of trailing-zero counts, not a scan.
//! When level 0 is exhausted the next occupied level-1 slot is
//! *cascaded*: its entries are redistributed into level 0 under a new
//! aligned base (and level 1 itself refills from the overflow heap the
//! same way).
//!
//! # The tie-break contract
//!
//! The simulator's determinism rests on dispatch in exact `(at, seq)`
//! order — `seq` is the global schedule counter, so ties at one
//! timestamp dispatch in insertion order. A wheel slot alone does not
//! give that (entries land in push order, and a tick spans many
//! distinct `at` values), so the wheel never dispatches straight from a
//! slot. Instead [`EventWheel::pop`] *arms* the minimum occupied tick:
//! the slot's entries are moved into the `ready` run and sorted by
//! `(at, seq)` descending, and pops come off the tail. A push targeting
//! the armed tick (an agent scheduling work at or near `now` from
//! inside a handler) is merge-inserted into the run at its sorted
//! position, preserving the contract; pushes for later ticks go to the
//! wheels. The equivalence proptest (`wheel_equivalence.rs`) drives
//! this structure and the old heap with identical random schedules —
//! including same-timestamp ties and in-handler re-scheduling — and
//! asserts identical dispatch order.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the tick width in nanoseconds (~131 µs per tick).
const TICK_SHIFT: u32 = 17;
/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Words in a level's occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

/// One scheduled entry: absolute time, global sequence, payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: Nanos,
    seq: u64,
    item: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

// Overflow entries order earliest-first through an inverted Ord (the
// std heap is a max-heap) — the same trick the old `Scheduled` used.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

#[inline]
fn tick_of(at: Nanos) -> u64 {
    at.0 >> TICK_SHIFT
}

/// A fixed 256-slot wheel level: buckets plus an occupancy bitmap.
/// Slot vectors are never deallocated — a drained slot keeps its
/// capacity for the next lap, which is what keeps the steady-state hot
/// loop allocation-free.
struct Level<E> {
    slots: Box<[Vec<Entry<E>>]>,
    occ: [u64; OCC_WORDS],
}

impl<E> Level<E> {
    fn new() -> Level<E> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
        }
    }

    #[inline]
    fn push(&mut self, offset: usize, entry: Entry<E>) {
        debug_assert!(offset < SLOTS);
        self.slots[offset].push(entry);
        self.occ[offset / 64] |= 1u64 << (offset % 64);
    }

    /// Offset of the first occupied slot, if any.
    #[inline]
    fn first_occupied(&self) -> Option<usize> {
        for (w, &bits) in self.occ.iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    #[inline]
    fn clear_bit(&mut self, offset: usize) {
        self.occ[offset / 64] &= !(1u64 << (offset % 64));
    }
}

/// The event queue: pops entries in exact `(at, seq)` order (earliest
/// time first; insertion order within a timestamp).
pub struct EventWheel<E> {
    /// The armed tick's entries, sorted by `(at, seq)` **descending** —
    /// the global minimum is at the tail, so dispatch is `Vec::pop`.
    ready: Vec<Entry<E>>,
    /// Entries that arrived *before* the armed tick: `run_until` arms the
    /// next pending tick to peek its timestamp, stops short of it, and
    /// the driver then schedules new work at the current (earlier) time.
    /// Those land here, sorted like `ready`; every entry in `front`
    /// precedes every entry in `ready` and in the wheels, and pops drain
    /// it first.
    front: Vec<Entry<E>>,
    /// Absolute tick the ready run was armed for (valid while `armed`).
    ready_tick: u64,
    armed: bool,
    /// Level 0 covers ticks `[l0_base, l0_base + 256)`; `l0_base` is
    /// 256-tick aligned.
    l0: Level<E>,
    l0_base: u64,
    /// Level 1 covers tick blocks `[l1_base, l1_base + 256)` (in units
    /// of 256 ticks); `l1_base` is 256-block aligned.
    l1: Level<E>,
    l1_base: u64,
    /// Beyond the level-1 horizon (~8.6 s out).
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
}

impl<E> Default for EventWheel<E> {
    fn default() -> Self {
        EventWheel::new()
    }
}

impl<E> EventWheel<E> {
    /// An empty wheel positioned at time zero.
    pub fn new() -> EventWheel<E> {
        EventWheel {
            ready: Vec::new(),
            front: Vec::new(),
            ready_tick: 0,
            armed: false,
            l0: Level::new(),
            l0_base: 0,
            l1: Level::new(),
            l1_base: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-size the ready run (the only buffer that grows with burst
    /// size in the steady state — wheel slots grow lazily and keep
    /// their capacity forever after).
    pub fn reserve(&mut self, entries: usize) {
        let have = self.ready.capacity();
        if entries > have {
            self.ready.reserve(entries - have);
        }
    }

    /// Insert an entry. `at` must be `>=` the timestamp of the last
    /// popped entry (the simulator never schedules into the past).
    pub fn push(&mut self, at: Nanos, seq: u64, item: E) {
        let tick = tick_of(at);
        let entry = Entry { at, seq, item };
        self.len += 1;

        if self.len == 1 && !self.armed {
            // Empty structure: re-anchor both levels at this entry's
            // aligned blocks so it lands in level 0.
            self.l0_base = tick & !(SLOTS as u64 - 1);
            self.l1_base = (tick >> SLOT_BITS) & !(SLOTS as u64 - 1);
        }

        if self.armed && tick == self.ready_tick {
            // Same tick as the run being dispatched: merge-insert at the
            // sorted position. In-handler schedules at `now` carry the
            // largest seq so far, so the common case is the tail (one
            // comparison, no shift).
            let key = entry.key();
            let pos = self.ready.partition_point(|e| (e.at, e.seq) > key);
            self.ready.insert(pos, entry);
            return;
        }

        if (self.armed && tick < self.ready_tick) || tick < self.l0_base {
            // Before the armed tick (or below the level-0 window): the
            // driver peeked ahead with `run_until`, stopped short, and
            // scheduled new near-term work. Rare and short-lived — these
            // drain before the armed run resumes.
            let key = entry.key();
            let pos = self.front.partition_point(|e| (e.at, e.seq) > key);
            self.front.insert(pos, entry);
            return;
        }

        if tick < self.l0_base + SLOTS as u64 {
            self.l0.push((tick - self.l0_base) as usize, entry);
        } else {
            let block = tick >> SLOT_BITS;
            if block < self.l1_base + SLOTS as u64 {
                self.l1.push((block - self.l1_base) as usize, entry);
            } else {
                self.overflow.push(entry);
            }
        }
    }

    /// True when the next entry comes from `front` rather than `ready`.
    /// (`front` ticks strictly precede the armed tick, so a plain
    /// non-empty test would do — the key comparison keeps this robust.)
    #[inline]
    fn front_first(&self) -> bool {
        match (self.front.last(), self.ready.last()) {
            (Some(f), Some(r)) => f.key() < r.key(),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Timestamp of the next entry, without removing it.
    pub fn next_at(&mut self) -> Option<Nanos> {
        self.arm();
        if self.front_first() {
            return self.front.last().map(|e| e.at);
        }
        self.ready.last().map(|e| e.at)
    }

    /// Borrow the next entry `(at, seq, item)` without removing it.
    pub fn peek(&mut self) -> Option<(Nanos, u64, &E)> {
        self.arm();
        let run = if self.front_first() {
            &self.front
        } else {
            &self.ready
        };
        run.last().map(|e| (e.at, e.seq, &e.item))
    }

    /// Remove and return the next entry in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<(Nanos, u64, E)> {
        self.arm();
        let e = if self.front_first() {
            self.front.pop()?
        } else {
            self.ready.pop()?
        };
        self.len -= 1;
        Some((e.at, e.seq, e.item))
    }

    /// Ensure the ready run holds the minimum occupied tick's entries.
    fn arm(&mut self) {
        if !self.ready.is_empty() {
            return;
        }
        self.armed = false;
        loop {
            if let Some(offset) = self.l0.first_occupied() {
                let tick = self.l0_base + offset as u64;
                // Append (not swap): `ready` keeps its high-water capacity
                // permanently, and the slot keeps its own — so bursty
                // armed ticks stop re-growing small inherited buffers.
                let slot = &mut self.l0.slots[offset];
                self.ready.append(slot);
                self.l0.clear_bit(offset);
                // Descending sort: the run pops minimum-first from the
                // tail. Slots hold a handful of entries, and pushes
                // arrive largely in seq order — sort_unstable on a
                // near-sorted short run is effectively free.
                self.ready
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.ready_tick = tick;
                self.armed = true;
                return;
            }
            if let Some(offset) = self.l1.first_occupied() {
                // Cascade one level-1 slot: its 256-tick block becomes
                // the new level-0 window.
                let block = self.l1_base + offset as u64;
                self.l0_base = block << SLOT_BITS;
                let mut entries = std::mem::take(&mut self.l1.slots[offset]);
                self.l1.clear_bit(offset);
                for e in entries.drain(..) {
                    let t = tick_of(e.at);
                    debug_assert_eq!(t >> SLOT_BITS, block);
                    self.l0.push((t - self.l0_base) as usize, e);
                }
                // hand the emptied (but still allocated) vector back
                self.l1.slots[offset] = entries;
                continue;
            }
            if let Some(head) = self.overflow.peek() {
                // Re-window level 1 at the overflow minimum's aligned
                // block and drain everything inside the new horizon.
                let block = tick_of(head.at) >> SLOT_BITS;
                self.l1_base = block & !(SLOTS as u64 - 1);
                let horizon = self.l1_base + SLOTS as u64;
                while let Some(head) = self.overflow.peek() {
                    let b = tick_of(head.at) >> SLOT_BITS;
                    if b >= horizon {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked");
                    self.l1.push((b - self.l1_base) as usize, e);
                }
                continue;
            }
            debug_assert!(self.len == self.front.len(), "len/content mismatch");
            return;
        }
    }

    /// Invariant check for tests: every storage area is either empty or
    /// consistent with `len`.
    #[cfg(test)]
    fn debug_count(&self) -> usize {
        self.ready.len()
            + self.front.len()
            + self.l0.slots.iter().map(Vec::len).sum::<usize>()
            + self.l1.slots.iter().map(Vec::len).sum::<usize>()
            + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut EventWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, seq, item)) = w.pop() {
            out.push((at.0, seq, item));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new();
        w.push(Nanos(500), 0, 10);
        w.push(Nanos(100), 1, 11);
        w.push(Nanos(100), 2, 12);
        w.push(Nanos(300), 3, 13);
        assert_eq!(w.len(), 4);
        assert_eq!(
            drain(&mut w),
            vec![(100, 1, 11), (100, 2, 12), (300, 3, 13), (500, 0, 10)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_different_at_sorts_by_at() {
        // both inside one 131 µs tick, pushed out of time order
        let mut w = EventWheel::new();
        w.push(Nanos(90_000), 0, 1);
        w.push(Nanos(10_000), 1, 2);
        assert_eq!(drain(&mut w), vec![(10_000, 1, 2), (90_000, 0, 1)]);
    }

    #[test]
    fn push_into_armed_tick_merges_at_sorted_position() {
        let mut w = EventWheel::new();
        w.push(Nanos(50_000), 0, 1);
        w.push(Nanos(90_000), 1, 2);
        assert_eq!(w.pop(), Some((Nanos(50_000), 0, 1)));
        // the run for this tick is armed; push between the popped entry
        // and the pending one, and after it
        w.push(Nanos(70_000), 2, 3);
        w.push(Nanos(130_000), 3, 4); // same tick (131 µs wide)
        assert_eq!(
            drain(&mut w),
            vec![(70_000, 2, 3), (90_000, 1, 2), (130_000, 3, 4)]
        );
    }

    #[test]
    fn crosses_level_boundaries_and_overflow() {
        let mut w = EventWheel::new();
        let tick = 1u64 << TICK_SHIFT;
        // one entry per region: armed tick, l0, l1, overflow (>8.6 s)
        w.push(Nanos(10), 0, 0);
        w.push(Nanos(5 * tick), 1, 1);
        w.push(Nanos(1000 * tick), 2, 2);
        w.push(Nanos(Nanos::from_secs(30).0), 3, 3);
        assert_eq!(w.debug_count(), 4);
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_rearms_after_drain() {
        let mut w = EventWheel::new();
        w.push(Nanos::from_secs(2), 0, 7);
        assert_eq!(w.pop(), Some((Nanos::from_secs(2), 0, 7)));
        assert_eq!(w.pop(), None);
        // re-anchor far ahead of the previous windows
        w.push(Nanos::from_secs(120), 1, 8);
        assert_eq!(w.next_at(), Some(Nanos::from_secs(120)));
        assert_eq!(w.pop(), Some((Nanos::from_secs(120), 1, 8)));
    }

    #[test]
    fn push_before_the_armed_tick_dispatches_first() {
        // run_until's pattern: peek (arms a future tick), stop short,
        // then schedule earlier work from outside the loop
        let mut w = EventWheel::new();
        w.push(Nanos::from_millis(400), 0, 1);
        assert_eq!(w.next_at(), Some(Nanos::from_millis(400))); // armed
        w.push(Nanos::from_millis(2), 1, 2);
        w.push(Nanos::from_millis(1), 2, 3);
        w.push(Nanos::from_millis(2), 3, 4); // tie with seq 1
        assert_eq!(
            drain(&mut w)
                .into_iter()
                .map(|(_, s, _)| s)
                .collect::<Vec<_>>(),
            vec![2, 1, 3, 0]
        );
    }

    #[test]
    fn dense_ties_keep_insertion_order() {
        let mut w = EventWheel::new();
        for i in 0..100u64 {
            w.push(Nanos(1_000_000), i, i as u32);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn slot_capacity_is_recycled_across_laps() {
        let mut w = EventWheel::new();
        // two laps over the same slot offsets; second lap must not grow
        for lap in 0..2u64 {
            let base = lap * (SLOTS as u64) * (1 << TICK_SHIFT);
            for i in 0..SLOTS as u64 {
                w.push(Nanos(base + i * (1 << TICK_SHIFT)), lap * 1000 + i, 0u32);
            }
            while w.pop().is_some() {}
        }
        assert!(w.is_empty());
    }
}
