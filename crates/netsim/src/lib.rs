//! # ecn-netsim — deterministic packet-level Internet simulator
//!
//! The substrate the measurement study runs on, substituting for the public
//! Internet of McQuistin & Perkins (IMC 2015). Everything is discrete-event
//! and seeded: the same seed reproduces the same packet-by-packet run.
//!
//! What a packet experiences per hop (see [`sim::Sim`]):
//!
//! 1. **TTL** decrement; on expiry the router answers with an ICMP
//!    time-exceeded *quoting the datagram as it saw it* — so upstream ECN
//!    mangling is visible in the quote, which is what ECN-aware traceroute
//!    (paper §4.2, tracebox-style) measures.
//! 2. **Firewall** rules ([`policy::Firewall`]) — e.g. the middlebox that
//!    drops ECT-marked UDP but passes identical TCP (§4.4).
//! 3. **ECN policy** ([`policy::EcnPolicy`]) — bleaching (resetting ECT to
//!    not-ECT), probabilistic bleaching, or legacy-TOS drops (§4.1/4.2).
//! 4. **Route lookup** — longest-prefix-match with optional ECMP whose
//!    selection re-hashes every routing epoch, modelling route churn.
//! 5. **Link transmission** — propagation delay, optional serialisation
//!    rate with DropTail or RED+ECN queues ([`queue`]), and Bernoulli or
//!    bursty Gilbert–Elliott loss ([`loss`]).
//!
//! Hosts are driven by [`node::HostAgent`]s (the `ecn-stack` crate provides
//! a full UDP/TCP/ICMP stack agent) and can carry tcpdump-style captures
//! ([`pcap`]) that export standard libpcap files.
//!
//! Not modelled (documented scope cuts, none observable by the study's
//! probes): IP fragmentation/MTU, IPv4 options, link-layer addressing,
//! ICMP rate limiting.

pub mod events;
pub mod link;
pub mod loss;
pub mod node;
pub mod pcap;
pub mod policy;
pub mod pool;
pub mod prefix;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod wheel;

pub use events::{drop_cause_label, SimCounters};
pub use link::{Link, LinkId, LinkOutcome, LinkProps, NodeId};
pub use loss::{LossModel, LossProcess};
pub use node::{flow_key, HostAgent, NodeKind, RouteEntry, Router};
pub use pcap::{new_capture, write_pcap, Capture, CaptureRef, CapturedPacket, Direction};
pub use policy::{EcnMatch, EcnPolicy, Firewall, FirewallAction, FirewallRule};
pub use pool::PacketPool;
pub use prefix::{Ipv4Prefix, PrefixMap};
pub use queue::{QueueDisc, QueueDropCause, QueueState, QueueVerdict};
pub use rng::{derive_rng, derive_rng_indexed, derive_seed, derive_seed_indexed, LabelBuf};
pub use sim::{HostApi, Sim, SimConfig, SimSkeleton};
pub use stats::{DropCause, Stats};
pub use time::Nanos;
pub use wheel::EventWheel;
