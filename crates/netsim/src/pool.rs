//! Datagram buffer recycling.
//!
//! Every packet the simulator moves is an owned `Vec<u8>` inside an
//! [`ecn_wire::Datagram`]. Without pooling, each encode allocates a fresh
//! vector and each delivery or drop frees one — millions of allocator
//! round-trips per campaign. [`PacketPool`] closes the loop: buffers are
//! checked out when a packet is encoded ([`PacketPool::take`]) and handed
//! back when the simulator consumes the packet
//! ([`PacketPool::recycle_datagram`] on deliver/drop), so the steady-state
//! hot loop reuses the same handful of buffers.
//!
//! The pool is deliberately simulator-local (no locks): each work unit's
//! world owns one, matching the engine's world-per-unit isolation.

use ecn_wire::Datagram;

/// Maximum number of idle buffers retained. Probe traffic keeps only a few
/// packets in flight; the cap just bounds pathological floods.
const POOL_RETAIN: usize = 256;

/// A freelist of datagram byte buffers.
#[derive(Debug, Default)]
pub struct PacketPool {
    free: Vec<Vec<u8>>,
    /// Buffers handed out in total.
    taken: u64,
    /// Takes served from the freelist (the rest were fresh allocations).
    reused: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> PacketPool {
        PacketPool::default()
    }

    /// Check a buffer out of the pool (empty, capacity retained from its
    /// previous life when recycled).
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(buf) => {
                self.reused += 1;
                buf
            }
            None => Vec::with_capacity(128),
        }
    }

    /// Return a buffer to the pool.
    pub fn recycle(&mut self, mut bytes: Vec<u8>) {
        if self.free.len() < POOL_RETAIN && bytes.capacity() > 0 {
            bytes.clear();
            self.free.push(bytes);
        }
    }

    /// Return a consumed datagram's buffer to the pool.
    pub fn recycle_datagram(&mut self, dgram: Datagram) {
        self.recycle(dgram.into_bytes());
    }

    /// (total takes, takes served by reuse) — the recycling hit rate the
    /// `probe_hot_loop` bench reports.
    pub fn stats(&self) -> (u64, u64) {
        (self.taken, self.reused)
    }

    /// Idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_the_buffer() {
        let mut pool = PacketPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.recycle(buf);
        assert_eq!(pool.idle(), 1);
        let buf2 = pool.take();
        assert!(buf2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(buf2.capacity(), cap);
        let (taken, reused) = pool.stats();
        assert_eq!((taken, reused), (2, 1));
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool = PacketPool::new();
        for _ in 0..(POOL_RETAIN + 50) {
            pool.recycle(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle(), POOL_RETAIN);
    }

    #[test]
    fn zero_capacity_buffers_are_not_retained() {
        let mut pool = PacketPool::new();
        pool.recycle(Vec::new());
        assert_eq!(pool.idle(), 0);
    }
}
