//! Node types: routers (handled natively by the simulator) and hosts
//! (driven by pluggable agents, e.g. the `ecn-stack` network stack).
//!
//! [`Router`] is a *construction-time* description: `Sim::add_router`
//! flattens it into the simulator's struct-of-arrays node columns, so
//! the dispatch path never touches a per-node struct (or a box) again.

use crate::link::LinkId;
use crate::policy::{EcnPolicy, Firewall};
use crate::prefix::PrefixMap;
use crate::sim::HostApi;
use ecn_wire::Datagram;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// What a dense node index refers to. One byte per node on the dispatch
/// path — the whole kind column for a paper-scale world fits in a few
/// cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Forwarding element (runs the router pipeline).
    Router,
    /// End host (delivers to an agent).
    Host,
}

/// A forwarding-table entry: single next hop or ECMP set.
#[derive(Debug, Clone)]
pub enum RouteEntry {
    /// Deterministic next hop.
    Link(LinkId),
    /// Equal-cost set; the choice hashes the flow and the current routing
    /// epoch, so paths can differ between flows and *change over time* —
    /// the route-churn mechanism the paper suspects behind partially
    /// bypassed middleboxes (§4.1).
    Ecmp(Vec<LinkId>),
}

impl RouteEntry {
    /// Select the outgoing link for `flow_key` in `epoch`.
    pub fn select(&self, flow_key: u64, epoch: u64) -> Option<LinkId> {
        match self {
            RouteEntry::Link(l) => Some(*l),
            RouteEntry::Ecmp(ls) => {
                if ls.is_empty() {
                    return None;
                }
                let mut z = flow_key ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                Some(ls[(z % ls.len() as u64) as usize])
            }
        }
    }
}

/// A router: forwarding table plus the per-hop behaviours under study.
///
/// The label and the compiled forwarding table are `Arc`-shared: cloning a
/// router (the blueprint-skeleton instantiation path) costs two reference
/// bumps, not a name allocation plus a table rebuild. Construction-time
/// mutation still works transparently via [`Router::table_mut`]
/// (copy-on-write while unshared, which is always the case during world
/// construction).
#[derive(Debug, Clone)]
pub struct Router {
    /// Human-readable label (also used to derive per-router randomness).
    pub label: Arc<str>,
    /// The address this router answers ICMP from (its "hop IP").
    pub addr: Ipv4Addr,
    /// AS this router belongs to.
    pub asn: u32,
    /// ECN treatment applied to forwarded packets.
    pub ecn_policy: EcnPolicy,
    /// Firewall applied to forwarded packets.
    pub firewall: Firewall,
    /// Does this router generate ICMP time-exceeded? (Silent routers show
    /// up as `*` in traceroute.)
    pub responds_ttl_exceeded: bool,
    /// Longest-prefix-match forwarding table (shared with sibling worlds
    /// stamped from the same skeleton).
    pub table: Arc<PrefixMap<RouteEntry>>,
}

impl Router {
    /// A plain RFC-compliant router.
    pub fn new(label: impl Into<Arc<str>>, addr: Ipv4Addr, asn: u32) -> Router {
        Router {
            label: label.into(),
            addr,
            asn,
            ecn_policy: EcnPolicy::Pass,
            firewall: Firewall::allow_all(),
            responds_ttl_exceeded: true,
            table: Arc::new(PrefixMap::new()),
        }
    }

    /// Mutable access to the forwarding table (construction-time only;
    /// clones the table if it is currently shared with another world).
    pub fn table_mut(&mut self) -> &mut PrefixMap<RouteEntry> {
        Arc::make_mut(&mut self.table)
    }
}

/// Callbacks a host agent implements. The simulator detaches the agent
/// while dispatching, so the agent gets full mutable access to both itself
/// and the simulation (via [`HostApi`]).
pub trait HostAgent {
    /// A datagram addressed to this host arrived. The simulator retains
    /// ownership (it recycles the buffer into its [`crate::PacketPool`]
    /// afterwards); agents copy out what they keep.
    fn on_datagram(&mut self, api: &mut HostApi<'_>, dgram: &Datagram);
    /// A timer set through [`HostApi::set_timer`] fired.
    fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64);
}

/// Flow key used for ECMP hashing: stable per (src, dst, proto).
pub fn flow_key(dgram: &Datagram) -> u64 {
    flow_key_header(&dgram.header())
}

/// [`flow_key`] over an already-decoded header.
pub fn flow_key_header(h: &ecn_wire::Ipv4Header) -> u64 {
    flow_key_raw(h.src, h.dst, h.protocol)
}

/// [`flow_key`] from the individual fields — the forwarding pipeline
/// reads them straight off the wire bytes without decoding a header.
pub fn flow_key_raw(src: Ipv4Addr, dst: Ipv4Addr, proto: ecn_wire::IpProto) -> u64 {
    (u64::from(u32::from(src)) << 32)
        ^ u64::from(u32::from(dst))
        ^ (u64::from(proto.number()) << 17)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_wire::{Ecn, IpProto, Ipv4Header};

    #[test]
    fn single_route_always_selects() {
        let e = RouteEntry::Link(LinkId(7));
        assert_eq!(e.select(123, 0), Some(LinkId(7)));
        assert_eq!(e.select(456, 99), Some(LinkId(7)));
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_epoch() {
        let e = RouteEntry::Ecmp(vec![LinkId(1), LinkId(2), LinkId(3)]);
        let a = e.select(42, 0);
        assert_eq!(a, e.select(42, 0));
        // across many flows, all links get used
        let mut used = std::collections::HashSet::new();
        for f in 0..100 {
            used.insert(e.select(f, 0).unwrap());
        }
        assert_eq!(used.len(), 3);
        // and epochs shuffle the mapping for at least some flows
        let flips = (0..100)
            .filter(|f| e.select(*f, 0) != e.select(*f, 1))
            .count();
        assert!(flips > 20, "flips {flips}");
    }

    #[test]
    fn empty_ecmp_selects_nothing() {
        assert_eq!(RouteEntry::Ecmp(vec![]).select(1, 1), None);
    }

    #[test]
    fn flow_key_stable_across_retransmits() {
        let h = Ipv4Header::probe(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            IpProto::Udp,
            Ecn::Ect0,
        );
        let d1 = Datagram::new(h, b"first try");
        let mut h2 = h;
        h2.identification = 999;
        let d2 = Datagram::new(h2, b"retry with different id and payload");
        assert_eq!(flow_key(&d1), flow_key(&d2));
        // but differs across protocols
        let mut h3 = h;
        h3.protocol = IpProto::Tcp;
        let d3 = Datagram::new(h3, b"x");
        assert_ne!(flow_key(&d1), flow_key(&d3));
    }
}
