//! Ground-truth counters maintained by the simulator.
//!
//! These are *not* available to the measurement application — the prober
//! must infer everything through packets, like the real study. The counters
//! exist for (a) validating the simulator itself in tests, and (b) auditing
//! how close the measured results come to the planted ground truth (see
//! EXPERIMENTS.md).

use crate::link::NodeId;
use crate::queue::QueueDropCause;
use std::collections::HashMap;

/// Why the simulator discarded a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Lost on the wire (loss model).
    Loss,
    /// Queue drop.
    Queue(QueueDropCause),
    /// Firewall rule.
    Firewall,
    /// TTL expired at a router.
    TtlExpired,
    /// No route to destination.
    NoRoute,
    /// TOS-sensitive router dropped a marked packet.
    PolicyTos,
    /// Arrived at a host whose address does not match.
    HostMismatch,
}

/// Aggregate and per-node counters.
#[derive(Debug, Default)]
pub struct Stats {
    /// Packets forwarded router-to-link (per hop).
    pub forwarded: u64,
    /// Packets delivered to a host agent.
    pub delivered: u64,
    /// Packets a host originated.
    pub originated: u64,
    /// Drops by cause.
    pub drops: HashMap<DropCause, u64>,
    /// Packets whose ECN field was bleached, per router.
    pub bleached_by_node: HashMap<NodeId, u64>,
    /// Packets dropped by firewall, per router.
    pub firewall_drops_by_node: HashMap<NodeId, u64>,
    /// Packets CE-marked by a RED queue.
    pub ce_marked: u64,
    /// ICMP time-exceeded messages generated.
    pub icmp_time_exceeded: u64,
    /// ICMP destination-unreachable messages generated.
    pub icmp_dest_unreachable: u64,
}

impl Stats {
    /// Record a drop.
    pub fn drop(&mut self, cause: DropCause) {
        *self.drops.entry(cause).or_insert(0) += 1;
    }

    /// Total drops across causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Drops for one cause.
    pub fn drops_for(&self, cause: DropCause) -> u64 {
        self.drops.get(&cause).copied().unwrap_or(0)
    }

    /// Total bleached packets.
    pub fn total_bleached(&self) -> u64 {
        self.bleached_by_node.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::default();
        s.drop(DropCause::Loss);
        s.drop(DropCause::Loss);
        s.drop(DropCause::Firewall);
        assert_eq!(s.drops_for(DropCause::Loss), 2);
        assert_eq!(s.drops_for(DropCause::Firewall), 1);
        assert_eq!(s.drops_for(DropCause::NoRoute), 0);
        assert_eq!(s.total_drops(), 3);
        *s.bleached_by_node.entry(NodeId(4)).or_insert(0) += 1;
        *s.bleached_by_node.entry(NodeId(5)).or_insert(0) += 2;
        assert_eq!(s.total_bleached(), 3);
    }
}
