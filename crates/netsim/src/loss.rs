//! Per-link packet-loss processes.
//!
//! Two models: independent (Bernoulli) loss, and the two-state
//! Gilbert–Elliott chain that produces the loss *bursts* characteristic of
//! congested access links and wireless — the phenomenon the paper suspects
//! behind transient "unreachable" verdicts (a burst can eat all five NTP
//! retries in a row, where independent loss at the same mean rate almost
//! never does; the `ablations` bench quantifies exactly this).

use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a link's loss process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent loss with the given probability per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott model with *time-based* state transitions:
    /// the chain moves between Good and Bad states with exponential
    /// residence times, and each state has its own loss probability.
    GilbertElliott {
        /// Mean residence time in the Good state.
        mean_good: Nanos,
        /// Mean residence time in the Bad state.
        mean_bad: Nanos,
        /// Loss probability while Good.
        loss_good: f64,
        /// Loss probability while Bad.
        loss_bad: f64,
    },
    /// Gilbert–Elliott whose Bad state discriminates by ECN codepoint:
    /// a congested legacy device that reads the whole TOS octet and
    /// preferentially sheds packets with nonzero ECN bits — one of the
    /// paper's hypotheses (§4.1) for persistent-but-not-total differential
    /// reachability. Good-state loss applies to all packets equally.
    GilbertElliottEcnBiased {
        /// Mean residence time in the Good state.
        mean_good: Nanos,
        /// Mean residence time in the Bad state.
        mean_bad: Nanos,
        /// Loss probability while Good (all packets).
        loss_good: f64,
        /// Bad-state loss for not-ECT packets.
        loss_bad_not_ect: f64,
        /// Bad-state loss for ECT/CE packets.
        loss_bad_ect: f64,
    },
}

impl LossModel {
    /// A burst model tuned for a congested residential uplink: ~`mean_loss`
    /// average loss concentrated in multi-second bad periods.
    pub fn congested_access(mean_loss: f64) -> LossModel {
        // Bad state is lossy (90%); choose the duty cycle to hit mean_loss.
        // The high in-burst rate is what lets a single burst defeat all
        // five 1-second NTP retries.
        let loss_bad = 0.9;
        let duty = (mean_loss / loss_bad).min(1.0);
        let mean_bad = Nanos::from_millis(8_000);
        let mean_good = Nanos((mean_bad.0 as f64 * (1.0 - duty) / duty.max(1e-9)) as u64);
        LossModel::GilbertElliott {
            mean_good,
            mean_bad,
            loss_good: 0.001,
            loss_bad,
        }
    }

    /// A congested legacy access device: bursts shed ECT-marked packets at
    /// `loss_bad_ect` but not-ECT packets only at `loss_bad_not_ect`.
    /// `duty` is the fraction of time spent congested.
    pub fn tos_biased_access(duty: f64, loss_bad_not_ect: f64, loss_bad_ect: f64) -> LossModel {
        let mean_bad = Nanos::from_millis(8_000);
        let duty = duty.clamp(1e-6, 1.0);
        let mean_good = Nanos((mean_bad.0 as f64 * (1.0 - duty) / duty) as u64);
        LossModel::GilbertElliottEcnBiased {
            mean_good,
            mean_bad,
            loss_good: 0.001,
            loss_bad_not_ect,
            loss_bad_ect,
        }
    }

    /// This model with its long-run mean loss scaled by roughly `factor`.
    /// Independent loss multiplies the per-packet probability (clamped
    /// into `[0, 1]`); burst models keep their in-burst loss rates and
    /// burst *lengths* but enter bursts `factor`× as often (Good-state
    /// residence divided by `factor`), preserving the burst character
    /// that defeats retry schedules.
    ///
    /// `scaled(1.0)` returns the model unchanged, bit for bit; the
    /// scenario-spec subsystem relies on that to keep `loss_scale = 1.0`
    /// worlds byte-identical to unscaled ones.
    pub fn scaled(&self, factor: f64) -> LossModel {
        if factor == 1.0 {
            return *self;
        }
        let factor = factor.max(0.0);
        let mul = |p: f64| (p * factor).clamp(0.0, 1.0);
        // more (or fewer) bursts per unit time; saturate instead of
        // overflowing for tiny factors
        let stretch = |good: Nanos| {
            let scaled = (good.0 as f64 / factor.max(1e-9)).min(u64::MAX as f64);
            Nanos(scaled as u64)
        };
        match *self {
            LossModel::None => LossModel::None,
            LossModel::Bernoulli { p } => LossModel::Bernoulli { p: mul(p) },
            LossModel::GilbertElliott {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad,
            } => LossModel::GilbertElliott {
                mean_good: stretch(mean_good),
                mean_bad,
                loss_good: mul(loss_good),
                loss_bad,
            },
            LossModel::GilbertElliottEcnBiased {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad_not_ect,
                loss_bad_ect,
            } => LossModel::GilbertElliottEcnBiased {
                mean_good: stretch(mean_good),
                mean_bad,
                loss_good: mul(loss_good),
                loss_bad_not_ect,
                loss_bad_ect,
            },
        }
    }

    /// Long-run average loss probability of the model (for ECN-biased
    /// models, the average for *not-ECT* traffic).
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad,
            } => duty_weighted(mean_good, mean_bad, loss_good, loss_bad),
            LossModel::GilbertElliottEcnBiased {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad_not_ect,
                ..
            } => duty_weighted(mean_good, mean_bad, loss_good, loss_bad_not_ect),
        }
    }
}

fn duty_weighted(mean_good: Nanos, mean_bad: Nanos, loss_good: f64, loss_bad: f64) -> f64 {
    let g = mean_good.0 as f64;
    let b = mean_bad.0 as f64;
    if g + b == 0.0 {
        0.0
    } else {
        (loss_good * g + loss_bad * b) / (g + b)
    }
}

/// Runtime state of a loss process.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    /// Gilbert–Elliott: are we currently in the Bad state?
    in_bad: bool,
    /// When the current state expires.
    state_until: Nanos,
}

impl LossProcess {
    /// Create a process in the Good state.
    pub fn new(model: LossModel) -> LossProcess {
        LossProcess {
            model,
            in_bad: false,
            state_until: Nanos::ZERO,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Should the packet passing at `now` be dropped? `ecn_capable` is
    /// true for ECT(0)/ECT(1)/CE packets (only the ECN-biased model cares).
    pub fn should_drop(&mut self, now: Nanos, ecn_capable: bool, rng: &mut SmallRng) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::GilbertElliott {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad,
            } => {
                self.advance_chain(now, mean_good, mean_bad, rng);
                let p = if self.in_bad { loss_bad } else { loss_good };
                p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0))
            }
            LossModel::GilbertElliottEcnBiased {
                mean_good,
                mean_bad,
                loss_good,
                loss_bad_not_ect,
                loss_bad_ect,
            } => {
                self.advance_chain(now, mean_good, mean_bad, rng);
                let p = if self.in_bad {
                    if ecn_capable {
                        loss_bad_ect
                    } else {
                        loss_bad_not_ect
                    }
                } else {
                    loss_good
                };
                p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0))
            }
        }
    }

    /// Advance the two-state chain: draw new states until `now` is inside
    /// the current residence interval. Residence intervals are contiguous
    /// — after a long idle gap the chain replays every intermediate flip,
    /// so sparsely-observed processes keep the correct duty cycle.
    fn advance_chain(&mut self, now: Nanos, mean_good: Nanos, mean_bad: Nanos, rng: &mut SmallRng) {
        while now >= self.state_until {
            self.in_bad = if self.state_until == Nanos::ZERO {
                // initial state: stationary distribution
                let g = mean_good.0 as f64;
                let b = mean_bad.0 as f64;
                rng.gen_bool(if g + b > 0.0 { b / (g + b) } else { 0.0 })
            } else {
                !self.in_bad
            };
            let mean = if self.in_bad { mean_bad } else { mean_good };
            let dwell = exponential(mean, rng).max(Nanos(1));
            self.state_until = Nanos(self.state_until.0.saturating_add(dwell.0));
        }
    }

    /// Is the process currently in the Bad (bursty) state? Test hook.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

/// Draw from Exp(mean) as virtual-time nanoseconds.
fn exponential(mean: Nanos, rng: &mut SmallRng) -> Nanos {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    Nanos((-(u.ln()) * mean.0 as f64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn none_never_drops() {
        let mut p = LossProcess::new(LossModel::None);
        let mut rng = derive_rng(1, "t");
        for i in 0..1000 {
            assert!(!p.should_drop(Nanos(i), false, &mut rng));
        }
    }

    #[test]
    fn bernoulli_hits_mean() {
        let mut p = LossProcess::new(LossModel::Bernoulli { p: 0.1 });
        let mut rng = derive_rng(2, "t");
        let drops = (0..20_000)
            .filter(|i| p.should_drop(Nanos(*i), false, &mut rng))
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_hits_mean_and_bursts() {
        let model = LossModel::congested_access(0.10);
        assert!((model.mean_loss() - 0.10).abs() < 0.01);
        let mut p = LossProcess::new(model);
        let mut rng = derive_rng(3, "t");
        // one packet per 10 ms over ~3.3 virtual hours (the 8-second burst
        // states need a long horizon for the duty cycle to converge)
        let n = 1_200_000u64;
        let mut drops = 0u64;
        let mut burst = 0u64;
        let mut max_burst = 0u64;
        for i in 0..n {
            if p.should_drop(Nanos::from_millis(i * 10), false, &mut rng) {
                drops += 1;
                burst += 1;
                max_burst = max_burst.max(burst);
            } else {
                burst = 0;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.02, "rate {rate}");
        // Bursts: with 70% loss in 4s-long bad states sampled at 100Hz,
        // long runs of consecutive losses must appear.
        assert!(max_burst > 10, "max_burst {max_burst}");
    }

    #[test]
    fn bernoulli_does_not_burst_like_ge() {
        // Equal mean loss, radically different P(5 consecutive losses) —
        // the mechanism behind false "unreachable" verdicts.
        let mut bern = LossProcess::new(LossModel::Bernoulli { p: 0.1 });
        let mut ge = LossProcess::new(LossModel::congested_access(0.1));
        let mut rng_b = derive_rng(4, "b");
        let mut rng_g = derive_rng(4, "g");
        let trials = 20_000u64;
        let mut fail5_b = 0;
        let mut fail5_g = 0;
        for t in 0..trials {
            // Five retries, 1 s apart (paper §3 schedule).
            let base = Nanos::from_secs(t * 30);
            let all_b =
                (0..5).all(|k| bern.should_drop(base + Nanos::from_secs(k), false, &mut rng_b));
            let all_g =
                (0..5).all(|k| ge.should_drop(base + Nanos::from_secs(k), false, &mut rng_g));
            fail5_b += u64::from(all_b);
            fail5_g += u64::from(all_g);
        }
        assert!(
            fail5_g > fail5_b.max(1) * 20,
            "GE {fail5_g} vs Bernoulli {fail5_b}"
        );
    }

    #[test]
    fn mean_loss_reporting() {
        assert_eq!(LossModel::None.mean_loss(), 0.0);
        assert_eq!(LossModel::Bernoulli { p: 0.25 }.mean_loss(), 0.25);
    }

    #[test]
    fn scaled_one_is_bit_identical_and_scaling_clamps() {
        for model in [
            LossModel::None,
            LossModel::Bernoulli { p: 0.37 },
            LossModel::congested_access(0.12),
            LossModel::tos_biased_access(0.34, 0.50, 0.97),
        ] {
            assert_eq!(model.scaled(1.0), model, "scaled(1.0) must be identity");
        }
        let doubled = LossModel::Bernoulli { p: 0.3 }.scaled(2.0);
        assert_eq!(doubled, LossModel::Bernoulli { p: 0.6 });
        let clamped = LossModel::Bernoulli { p: 0.8 }.scaled(2.0);
        assert_eq!(clamped, LossModel::Bernoulli { p: 1.0 });
        // burst models scale mean loss by scaling burst frequency
        let halved = LossModel::congested_access(0.10).scaled(0.5);
        assert!((halved.mean_loss() - 0.05).abs() < 0.01, "{halved:?}");
        let doubled = LossModel::congested_access(0.10).scaled(2.0);
        assert!(doubled.mean_loss() > 0.15, "{doubled:?}");
    }
}
