//! The discrete-event engine: schedules packet arrivals and host timers,
//! and implements the router forwarding pipeline (TTL/ICMP, firewall, ECN
//! policy, route lookup, link transmission).
//!
//! # The flat event loop
//!
//! Events live in an [`EventWheel`] (hierarchical timer wheel + sorted
//! ready-run, see [`crate::wheel`]) and dispatch in exact `(at, seq)`
//! order — earliest timestamp first, insertion order within a timestamp.
//! That contract is load-bearing: the per-packet RNG stream is shared by
//! every firewall, policy, loss and queue decision, so any reordering
//! would change packet outcomes (and golden report bytes), not just
//! interleavings.
//!
//! Per-node state is stored as struct-of-arrays indexed by dense
//! [`NodeId`]: the dispatch path reads the ECN policy, firewall, route
//! table and capture flag as direct vector loads, with no `Node` enum
//! match and no `Box` indirection per hop. Host labels stay in a cold
//! column only touched by diagnostics and the optional event tap.
//! Consecutive same-timestamp arrivals at one host dispatch as a batch
//! (one agent checkout, one capture resolution) — safe because any event
//! scheduled mid-batch carries a larger `seq` and so sorts after the
//! whole batch anyway.

use crate::events::SimCounters;
use crate::link::{Link, LinkId, LinkProps, NodeId};
use crate::node::{flow_key_header, flow_key_raw, HostAgent, NodeKind, RouteEntry, Router};
use crate::pcap::{new_capture, CaptureRef, Direction};
use crate::policy::{EcnPolicy, Firewall, FirewallAction};
use crate::pool::PacketPool;
use crate::prefix::{Ipv4Prefix, PrefixMap};
use crate::stats::{DropCause, Stats};
use crate::time::Nanos;
use crate::wheel::EventWheel;
use ecn_wire::{Datagram, DestUnreachCode, Ecn, IcmpMessage, IpProto, Ipv4Header};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed for all per-packet randomness.
    pub seed: u64,
    /// Routing-epoch length: ECMP selections re-hash every period,
    /// modelling slow route churn.
    pub flap_period: Nanos,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            flap_period: Nanos::from_secs(120),
        }
    }
}

#[derive(Debug)]
enum Event {
    Arrival { node: NodeId, dgram: Datagram },
    Timer { node: NodeId, token: u64 },
}

/// Ways per router in the forwarding route cache. Two slots cover the
/// request/response flow pair that dominates any probe session crossing
/// a router; power of two so the index is a mask.
const ROUTE_CACHE_WAYS: usize = 4;

/// Longest chain of transparent routers a cached tunnel may span. Well
/// above any path the blueprint builds, well below every probe TTL.
const MAX_TUNNEL_SKIP: u8 = 30;

/// One memoised forwarding decision: for (`dst`, `flow_key`, `epoch`,
/// `generation`) the selected outgoing link. The tuple pins every input
/// of [`RouteEntry::select`] plus the table edit generation, so a hit is
/// exactly the lookup it replaces.
///
/// When the selected link and the routers behind it are *transparent* —
/// passive links ([`Link::is_passive`]), open firewalls, `Pass` ECN
/// policy — the slot also memoises a **tunnel**: the furthest node the
/// packet reaches without any behaviour firing, the summed propagation
/// delay, and the number of router hops skipped. Every skipped hop would
/// have drawn no randomness, mutated no state beyond `ttl -= 1` /
/// `forwarded += 1`, and produced exactly one more `Arrival` event — so
/// the tunnel applies those effects in bulk and schedules the exit
/// arrival directly. `bound` caps use at the last instant the whole
/// traversal still falls inside `epoch` (route flaps mid-chain fall back
/// to hop-by-hop), and `ttl > skip` guards TTL expiry (traceroute-style
/// probes fall back and expire at the correct router).
#[derive(Debug, Clone, Copy)]
struct RouteCacheSlot {
    dst: u32,
    key: u64,
    epoch: u64,
    gen: u32,
    link: Option<LinkId>,
    /// Transparent routers between `link` and `exit` (0 = no tunnel).
    skip: u8,
    /// Node the tunnel delivers to (host, or first non-transparent router).
    exit: NodeId,
    /// Total propagation delay from this router to `exit`.
    extra_delay: Nanos,
    /// Latest `now` at which `now + extra_delay` is still inside `epoch`.
    bound: Nanos,
}

impl RouteCacheSlot {
    const EMPTY: RouteCacheSlot = RouteCacheSlot {
        dst: 0,
        key: 0,
        epoch: 0,
        gen: u32::MAX,
        link: None,
        skip: 0,
        exit: NodeId(0),
        extra_delay: Nanos(0),
        bound: Nanos(0),
    };
}

/// Node-indexed topology state: written during world construction, read
/// only (never mutated) once traffic flows. Split out of [`Sim`] so a
/// [`SimSkeleton`] stamp shares it by reference — see [`Sim::topo`].
///
/// Struct-of-arrays: column `i` of every vector below describes the node
/// with `NodeId(i)`. Router-only columns hold cheap defaults for hosts
/// (and vice versa) — a dense vector load beats an enum-plus-`Box` hop
/// on the dispatch path, and the per-world memory cost is a few machine
/// words per node.
#[derive(Clone, Default)]
struct Topology {
    /// Node kind per id (router or host).
    kinds: Vec<NodeKind>,
    /// Node address per id.
    addrs: Vec<Ipv4Addr>,
    /// Human-readable label per id (cold: diagnostics and event tap).
    labels: Vec<Arc<str>>,
    /// AS number per id (0 for hosts).
    asns: Vec<u32>,
    /// Router ECN treatment per id.
    ecn_policies: Vec<EcnPolicy>,
    /// Router ICMP time-exceeded behaviour per id.
    responds_ttl: Vec<bool>,
    /// Router firewall per id (hosts: `allow_all`, zero-sized).
    firewalls: Vec<Firewall>,
    /// Router forwarding table per id (shared with sibling worlds).
    tables: Vec<Option<Arc<PrefixMap<RouteEntry>>>>,
    /// Host access link per id.
    uplinks: Vec<Option<LinkId>>,
    /// Address → node index (first node wins on duplicates).
    addr_index: HashMap<Ipv4Addr, NodeId>,
}

/// The simulator.
pub struct Sim {
    now: Nanos,
    seq: u64,
    queue: EventWheel<Event>,
    /// Per-node topology, immutable once the world is stamped. Behind an
    /// `Arc` so sibling unit worlds share one copy instead of cloning
    /// ~10 node-indexed vectors each (the dominant stamp cost at 10⁵
    /// servers); construction mutates through [`Arc::make_mut`]
    /// (copy-on-write — free while the `Arc` is unshared, which it is
    /// for any world still being built).
    topo: Arc<Topology>,
    /// Host agent per id.
    agents: Vec<Option<Box<dyn HostAgent>>>,
    /// Host capture per id.
    captures: Vec<Option<CaptureRef>>,
    /// All directed links; index = `LinkId`.
    pub links: Vec<Link>,
    /// Ground-truth counters (not visible to the measurement application).
    pub stats: Stats,
    /// Datagram buffer freelist: checked out on encode, refilled when the
    /// simulator consumes a packet (delivery or drop).
    pub pool: PacketPool,
    /// Optional event tap ([`crate::events::SimCounters`]), installed by
    /// observed engine runs; `None` (the default) costs one pointer test
    /// per deliver/drop site.
    events: Option<Box<SimCounters>>,
    /// Scratch for batched host-arrival dispatch (capacity reused).
    batch: Vec<Datagram>,
    /// Per-router route-cache slots (see [`RouteCacheSlot`]): probe
    /// traffic is a handful of long flows, so the last few lookups at a
    /// router answer most of the next ones without walking the prefix
    /// trie. Indexed `router * ROUTE_CACHE_WAYS + (flow_key & mask)`.
    route_cache: Vec<RouteCacheSlot>,
    /// Monotonic generation for the route cache; bumped by any
    /// construction-time table edit so stale slots can never serve.
    route_gen: u32,
    /// Cached routing epoch (`now / flap_period`) and the time the next
    /// one starts, so the dispatch path pays a compare instead of a
    /// 64-bit division per hop.
    epoch: u64,
    epoch_next_at: Nanos,
    /// Events dispatched so far (arrivals + timers) — the denominator of
    /// the ns/packet-event figure the benches report.
    dispatched: u64,
    rng: SmallRng,
    config: SimConfig,
}

impl Sim {
    /// A simulator with the given seed and default config.
    pub fn new(seed: u64) -> Sim {
        Sim::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    /// A simulator whose per-packet RNG stream lives in its own *domain*:
    /// the stream is derived from `seed` and a stable label via
    /// [`crate::rng::derive_seed`], so it depends only on the label — never
    /// on how many other simulators exist or in what order they were
    /// created. Shard/unit-parallel execution engines use one domain per
    /// work unit so that changing the shard count cannot perturb any
    /// existing stream.
    pub fn with_domain(seed: u64, domain: &str) -> Sim {
        Sim::with_config(SimConfig {
            seed: crate::rng::derive_seed(seed, domain),
            ..SimConfig::default()
        })
    }

    /// A simulator with explicit configuration.
    pub fn with_config(config: SimConfig) -> Sim {
        Sim {
            now: Nanos::ZERO,
            seq: 0,
            queue: EventWheel::new(),
            topo: Arc::new(Topology::default()),
            agents: Vec::new(),
            captures: Vec::new(),
            links: Vec::new(),
            stats: Stats::default(),
            pool: PacketPool::new(),
            events: None,
            batch: Vec::new(),
            route_cache: Vec::new(),
            route_gen: 0,
            epoch: 0,
            epoch_next_at: Nanos(config.flap_period.0.max(1)),
            dispatched: 0,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xec00_5eed),
            config,
        }
    }

    /// Install (or reset) the event tap: from now on the deliver, drop,
    /// CE-mark, and ECN-rewrite sites count into a [`SimCounters`]
    /// drained with [`Self::drain_event_counters`]. Purely observational —
    /// installing a tap cannot change any packet outcome.
    pub fn install_event_tap(&mut self) {
        self.events = Some(Box::default());
    }

    /// Take the tap's counters, leaving a fresh zeroed tap installed.
    /// Returns the default (empty) counters if no tap was installed.
    pub fn drain_event_counters(&mut self) -> SimCounters {
        match &mut self.events {
            Some(tap) => std::mem::take(&mut **tap),
            None => SimCounters::default(),
        }
    }

    /// Count a discarded packet in both the ground-truth stats and, when
    /// a tap is installed, the event counters.
    fn note_drop(&mut self, cause: DropCause) {
        self.stats.drop(cause);
        if let Some(tap) = &mut self.events {
            tap.note_drop(cause);
        }
    }

    /// Check a recycled byte buffer out of the simulator's packet pool
    /// (for encoding an outgoing datagram via [`Datagram::compose`]).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Events dispatched so far (arrivals and timers).
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Pre-allocate node and link storage. Blueprint-driven world
    /// instantiation knows its exact element counts up front; reserving
    /// avoids repeated growth reallocations on the construction hot path.
    pub fn reserve(&mut self, nodes: usize, links: usize) {
        let t = self.topo_mut();
        t.kinds.reserve(nodes);
        t.addrs.reserve(nodes);
        t.labels.reserve(nodes);
        t.asns.reserve(nodes);
        t.ecn_policies.reserve(nodes);
        t.responds_ttl.reserve(nodes);
        t.firewalls.reserve(nodes);
        t.tables.reserve(nodes);
        t.uplinks.reserve(nodes);
        t.addr_index.reserve(nodes);
        self.agents.reserve(nodes);
        self.captures.reserve(nodes);
        self.links.reserve(links);
    }

    /// Copy-on-write handle on the topology for construction-time edits:
    /// free while this world uniquely owns it, a deep clone only if a
    /// stamped world is (unusually) edited after instantiation.
    fn topo_mut(&mut self) -> &mut Topology {
        Arc::make_mut(&mut self.topo)
    }

    /// Pre-size the event queue (the wheel's ready-run and the dispatch
    /// batch scratch) so the first probe bursts don't grow them
    /// incrementally.
    pub fn reserve_events(&mut self, events: usize) {
        self.queue.reserve(events);
        let have = self.batch.capacity();
        if events / 4 > have {
            self.batch.reserve(events / 4 - have);
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    // ---- topology construction -------------------------------------------------

    #[allow(clippy::too_many_arguments)] // private: one call site per node kind
    fn push_node(
        &mut self,
        kind: NodeKind,
        label: Arc<str>,
        addr: Ipv4Addr,
        asn: u32,
        ecn_policy: EcnPolicy,
        responds_ttl: bool,
        firewall: Firewall,
        table: Option<Arc<PrefixMap<RouteEntry>>>,
    ) -> NodeId {
        let t = self.topo_mut();
        let id = NodeId(t.kinds.len() as u32);
        t.kinds.push(kind);
        t.addrs.push(addr);
        t.labels.push(label);
        t.asns.push(asn);
        t.ecn_policies.push(ecn_policy);
        t.responds_ttl.push(responds_ttl);
        t.firewalls.push(firewall);
        t.tables.push(table);
        t.uplinks.push(None);
        t.addr_index.entry(addr).or_insert(id);
        self.agents.push(None);
        self.captures.push(None);
        self.route_cache
            .extend([RouteCacheSlot::EMPTY; ROUTE_CACHE_WAYS]);
        id
    }

    /// Add a router node.
    pub fn add_router(&mut self, router: Router) -> NodeId {
        let Router {
            label,
            addr,
            asn,
            ecn_policy,
            firewall,
            responds_ttl_exceeded,
            table,
        } = router;
        self.push_node(
            NodeKind::Router,
            label,
            addr,
            asn,
            ecn_policy,
            responds_ttl_exceeded,
            firewall,
            Some(table),
        )
    }

    /// Add a host node (no uplink yet).
    pub fn add_host(&mut self, label: impl Into<Arc<str>>, addr: Ipv4Addr) -> NodeId {
        self.push_node(
            NodeKind::Host,
            label.into(),
            addr,
            0,
            EcnPolicy::Pass,
            false,
            Firewall::allow_all(),
            None,
        )
    }

    /// Add a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, props: LinkProps) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, props));
        id
    }

    /// Add a pair of directed links with identical properties.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, props: LinkProps) -> (LinkId, LinkId) {
        (self.add_link(a, b, props), self.add_link(b, a, props))
    }

    /// Connect `host` to `router`: duplex link, uplink set, /32 route
    /// installed on the router. Returns (host→router, router→host).
    pub fn attach_host(
        &mut self,
        host: NodeId,
        router: NodeId,
        props: LinkProps,
    ) -> (LinkId, LinkId) {
        let (up, down) = self.add_duplex(host, router, props);
        let addr = self.topo.addrs[host.0 as usize];
        self.set_uplink(host, up);
        self.route(router, Ipv4Prefix::host(addr), RouteEntry::Link(down));
        (up, down)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topo.kinds.len()
    }

    /// Is this node a router?
    pub fn is_router(&self, node: NodeId) -> bool {
        self.topo.kinds[node.0 as usize] == NodeKind::Router
    }

    /// The node's address.
    pub fn addr_of(&self, node: NodeId) -> Ipv4Addr {
        self.topo.addrs[node.0 as usize]
    }

    /// The node's human-readable label.
    pub fn label_of(&self, node: NodeId) -> &str {
        &self.topo.labels[node.0 as usize]
    }

    /// The node's AS number (0 for hosts).
    pub fn asn_of(&self, node: NodeId) -> u32 {
        self.topo.asns[node.0 as usize]
    }

    /// The host's access link, if set.
    pub fn uplink_of(&self, node: NodeId) -> Option<LinkId> {
        self.topo.uplinks[node.0 as usize]
    }

    /// Set a host's access link.
    pub fn set_uplink(&mut self, host: NodeId, link: LinkId) {
        assert!(!self.is_router(host), "set_uplink: {host:?} is a router");
        self.topo_mut().uplinks[host.0 as usize] = Some(link);
    }

    /// A router's ECN treatment.
    pub fn ecn_policy_of(&self, router: NodeId) -> EcnPolicy {
        self.topo.ecn_policies[router.0 as usize]
    }

    /// Set a router's ECN treatment.
    pub fn set_ecn_policy(&mut self, router: NodeId, policy: EcnPolicy) {
        assert!(
            self.is_router(router),
            "set_ecn_policy: {router:?} is a host"
        );
        self.topo_mut().ecn_policies[router.0 as usize] = policy;
        // cached tunnels may span this router; force rebuilds
        self.route_gen = self.route_gen.wrapping_add(1);
    }

    /// Set a router's firewall.
    pub fn set_firewall(&mut self, router: NodeId, firewall: Firewall) {
        assert!(self.is_router(router), "set_firewall: {router:?} is a host");
        self.topo_mut().firewalls[router.0 as usize] = firewall;
        // cached tunnels may span this router; force rebuilds
        self.route_gen = self.route_gen.wrapping_add(1);
    }

    /// Install a route on a router.
    pub fn route(&mut self, router: NodeId, prefix: Ipv4Prefix, entry: RouteEntry) {
        assert!(self.is_router(router), "route: {router:?} is not a router");
        let table = self.topo_mut().tables[router.0 as usize]
            .as_mut()
            .expect("router has a table");
        Arc::make_mut(table).insert(prefix, entry);
        // any table edit invalidates every memoised forwarding decision
        self.route_gen = self.route_gen.wrapping_add(1);
    }

    /// Install the agent driving a host.
    pub fn set_agent(&mut self, host: NodeId, agent: Box<dyn HostAgent>) {
        assert!(!self.is_router(host), "set_agent: {host:?} is a router");
        self.agents[host.0 as usize] = Some(agent);
    }

    /// Attach (or fetch) the capture buffer on a host interface.
    pub fn attach_capture(&mut self, host: NodeId) -> CaptureRef {
        assert!(
            !self.is_router(host),
            "attach_capture: {host:?} is a router"
        );
        self.captures[host.0 as usize]
            .get_or_insert_with(new_capture)
            .clone()
    }

    /// Node id of the host with address `addr` (indexed; O(1)).
    pub fn find_host(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.topo
            .addr_index
            .get(&addr)
            .copied()
            .filter(|&n| !self.is_router(n))
    }

    /// Node id of the node (host or router) with address `addr`.
    pub fn find_node(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.topo.addr_index.get(&addr).copied()
    }

    // ---- event loop -------------------------------------------------------------

    fn schedule(&mut self, at: Nanos, event: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, event);
    }

    /// Process a single event (plus any same-timestamp arrivals batched
    /// behind it — see [`Self::dispatch_arrival`]). Returns false if the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, _seq, event)) = self.queue.pop() else {
            return false;
        };
        self.now = at;
        self.dispatched += 1;
        match event {
            Event::Arrival { node, dgram } => self.dispatch_arrival(node, dgram),
            Event::Timer { node, token } => self.dispatch_timer(node, token),
        }
        true
    }

    /// Run until virtual time `t`: all events at or before `t` are
    /// processed, and the clock is left at exactly `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while let Some(at) = self.queue.next_at() {
            if at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: Nanos) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until no events remain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    // ---- packet handling ---------------------------------------------------------

    /// Arrange for `host`'s agent to receive `on_timer(token)` after
    /// `delay`. External drivers (e.g. a prober arming a socket timeout
    /// from outside the event loop) use this; agents use
    /// [`HostApi::set_timer`].
    pub fn set_timer(&mut self, host: NodeId, delay: Nanos, token: u64) {
        let at = self.now + delay;
        self.schedule(at, Event::Timer { node: host, token });
    }

    /// Inject a datagram as if `host` sent it (captures it, then offers it
    /// to the host's uplink). External drivers and `HostApi::send` both
    /// funnel through here.
    pub fn send_from(&mut self, host: NodeId, dgram: Datagram) {
        let idx = host.0 as usize;
        assert!(
            self.topo.kinds[idx] == NodeKind::Host,
            "send_from: {host:?} is a router"
        );
        if let Some(cap) = &self.captures[idx] {
            cap.lock()
                .record(self.now, Direction::Out, dgram.as_bytes());
        }
        let Some(up) = self.topo.uplinks[idx] else {
            self.note_drop(DropCause::NoRoute);
            self.pool.recycle_datagram(dgram);
            return;
        };
        self.stats.originated += 1;
        self.transmit(up, dgram);
    }

    /// Dispatch one arrival. For hosts, consecutive pending arrivals at
    /// the same `(timestamp, node)` are drained into one batch and
    /// delivered together: one agent checkout and one capture resolution
    /// for the whole link burst. This cannot change any outcome — batched
    /// entries are exactly the events that would have dispatched
    /// back-to-back anyway (anything scheduled from inside a handler
    /// carries a larger `seq` and sorts after the batch), and the
    /// per-packet capture/deliver/agent sequence is preserved within it.
    fn dispatch_arrival(&mut self, node: NodeId, dgram: Datagram) {
        let idx = node.0 as usize;
        if self.topo.kinds[idx] == NodeKind::Router {
            self.router_receive(node, dgram);
            return;
        }
        let at = self.now;
        let mut batch = std::mem::take(&mut self.batch);
        debug_assert!(batch.is_empty());
        batch.push(dgram);
        while let Some((next_at, _seq, ev)) = self.queue.peek() {
            if next_at != at || !matches!(ev, Event::Arrival { node: n, .. } if *n == node) {
                break;
            }
            match self.queue.pop() {
                Some((_, _, Event::Arrival { dgram, .. })) => {
                    self.dispatched += 1;
                    batch.push(dgram);
                }
                _ => unreachable!("peeked arrival"),
            }
        }
        self.host_receive_batch(node, &mut batch);
        batch.clear();
        self.batch = batch;
    }

    fn host_receive_batch(&mut self, node: NodeId, batch: &mut Vec<Datagram>) {
        let idx = node.0 as usize;
        let addr = self.topo.addrs[idx];
        let now = self.now;
        let mut agent = self.agents[idx].take();
        for dgram in batch.drain(..) {
            if let Some(cap) = &self.captures[idx] {
                cap.lock().record(now, Direction::In, dgram.as_bytes());
            }
            if addr != dgram.dst() {
                self.note_drop(DropCause::HostMismatch);
                self.pool.recycle_datagram(dgram);
                continue;
            }
            self.stats.delivered += 1;
            if let Some(tap) = &mut self.events {
                tap.delivered += 1;
            }
            if let Some(agent) = agent.as_deref_mut() {
                let mut api = HostApi { sim: self, node };
                agent.on_datagram(&mut api, &dgram);
            }
            // the packet's life ends here; its buffer goes back to the pool
            self.pool.recycle_datagram(dgram);
        }
        if agent.is_some() {
            self.agents[idx] = agent;
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let idx = node.0 as usize;
        if let Some(mut agent) = self.agents[idx].take() {
            let mut api = HostApi { sim: self, node };
            agent.on_timer(&mut api, token);
            self.agents[idx] = Some(agent);
        }
    }

    /// The router pipeline never decodes the IPv4 header at all on the
    /// fast path: every per-hop input (TTL, ECN, src, dst, protocol) is a
    /// fixed-offset read straight off the wire bytes, the TTL/ECN
    /// mutations are raw byte writes, and the checksum is refreshed once
    /// before the packet moves on — byte-for-byte what the old
    /// decode → mutate → re-encode cycle produced (pinned by wire-level
    /// tests). Every per-hop behaviour is a dense vector load off the
    /// struct-of-arrays columns — no enum match, no box hop. Cold paths
    /// (TTL expiry, firewall reject) drop to the full codec for ICMP
    /// quoting.
    fn router_receive(&mut self, node: NodeId, mut dgram: Datagram) {
        let idx = node.0 as usize;
        let src = dgram.src();
        let ecn = dgram.ecn();
        let protocol = dgram.protocol();

        // 1. TTL. Decrement; on expiry, answer with time-exceeded quoting
        // the datagram as this router saw it — including any upstream ECN
        // mangling, which is precisely what ECN traceroute measures.
        let ttl = dgram.ttl().saturating_sub(1);
        dgram.set_ttl_raw(ttl);
        if ttl == 0 {
            // the quote must show the decremented TTL on the wire
            dgram.refresh_header_checksum();
            self.note_drop(DropCause::TtlExpired);
            // No ICMP errors about ICMP (RFC 1812 §4.3.2.7 simplification:
            // the study's probes are UDP/TCP, so this only suppresses
            // pathological error-about-error storms).
            if self.topo.responds_ttl[idx] && protocol != IpProto::Icmp {
                let reply_hdr =
                    Ipv4Header::probe(self.topo.addrs[idx], src, IpProto::Icmp, Ecn::NotEct);
                let reply = Datagram::compose(self.pool.take(), reply_hdr, |out| {
                    IcmpMessage::encode_time_exceeded_into(dgram.as_bytes(), out)
                });
                self.stats.icmp_time_exceeded += 1;
                self.route_and_transmit(node, reply, &reply_hdr);
            }
            self.pool.recycle_datagram(dgram);
            return;
        }

        // 2. Firewall.
        let action = self.topo.firewalls[idx].evaluate(src, protocol, ecn, &mut self.rng);
        match action {
            FirewallAction::Drop => {
                self.note_drop(DropCause::Firewall);
                *self.stats.firewall_drops_by_node.entry(node).or_insert(0) += 1;
                self.pool.recycle_datagram(dgram);
                return;
            }
            FirewallAction::Reject => {
                self.note_drop(DropCause::Firewall);
                *self.stats.firewall_drops_by_node.entry(node).or_insert(0) += 1;
                if protocol != IpProto::Icmp {
                    // the quote shows the packet as this hop saw it
                    dgram.refresh_header_checksum();
                    let reply_hdr =
                        Ipv4Header::probe(self.topo.addrs[idx], src, IpProto::Icmp, Ecn::NotEct);
                    let reply = Datagram::compose(self.pool.take(), reply_hdr, |out| {
                        IcmpMessage::encode_dest_unreachable_into(
                            DestUnreachCode::AdminProhibited,
                            dgram.as_bytes(),
                            out,
                        )
                    });
                    self.stats.icmp_dest_unreachable += 1;
                    self.route_and_transmit(node, reply, &reply_hdr);
                }
                self.pool.recycle_datagram(dgram);
                return;
            }
            FirewallAction::Allow => {}
        }

        // 3. ECN policy.
        let policy = self.topo.ecn_policies[idx];
        let (after, dropped) = policy.apply(ecn, &mut self.rng);
        if dropped {
            self.note_drop(DropCause::PolicyTos);
            self.pool.recycle_datagram(dgram);
            return;
        }
        if after != ecn {
            dgram.set_ecn_raw(after);
            *self.stats.bleached_by_node.entry(node).or_insert(0) += 1;
            if let Some(tap) = self.events.as_mut() {
                // resolve the named hop only when someone is listening
                let hop = self.topo.labels[idx].clone();
                tap.note_ecn_rewrite(hop);
            }
        }

        // 4+5. Route and transmit. The TTL (and possibly ECN) bytes are
        // already written; the checksum refresh happens once, at transmit.
        let dst = dgram.dst();
        let key = flow_key_raw(src, dst, protocol) ^ (u64::from(node.0) << 48);
        self.route_and_transmit_keyed(node, dgram, u32::from(dst), key, after, true);
    }

    /// Routing epoch for the current virtual time, from the cached value
    /// (recomputed — one 64-bit division — only when `now` crosses into
    /// the next `flap_period`).
    fn current_epoch(&mut self) -> u64 {
        if self.now >= self.epoch_next_at {
            let period = self.config.flap_period.0.max(1);
            self.epoch = self.now.0 / period;
            self.epoch_next_at = Nanos(self.epoch.saturating_add(1).saturating_mul(period));
        }
        self.epoch
    }

    /// Route-and-transmit for a freshly composed reply (header known,
    /// wire bytes clean).
    fn route_and_transmit(&mut self, node: NodeId, dgram: Datagram, hdr: &Ipv4Header) {
        let key = flow_key_header(hdr) ^ (u64::from(node.0) << 48);
        self.route_and_transmit_keyed(node, dgram, u32::from(hdr.dst), key, hdr.ecn, false);
    }

    /// Shared tail of the forwarding pipeline: consult the per-router
    /// route cache (fall back to the prefix-trie lookup on miss), then
    /// either ride the memoised tunnel past every transparent hop or
    /// offer to the selected link. `needs_refresh` says the header bytes
    /// were raw-mutated and the checksum must be refreshed before the
    /// packet is observed again.
    fn route_and_transmit_keyed(
        &mut self,
        node: NodeId,
        mut dgram: Datagram,
        dst: u32,
        key: u64,
        ecn: Ecn,
        needs_refresh: bool,
    ) {
        let idx = node.0 as usize;
        let epoch = self.current_epoch();
        let slot_idx = idx * ROUTE_CACHE_WAYS + (key as usize & (ROUTE_CACHE_WAYS - 1));
        let mut slot = self.route_cache[slot_idx];
        if slot.dst != dst || slot.key != key || slot.epoch != epoch || slot.gen != self.route_gen {
            slot = self.build_cache_slot(node, dst, key, epoch, dgram.ttl());
            self.route_cache[slot_idx] = slot;
        }
        if slot.skip > 0 {
            // Tunnel: every skipped hop is transparent, so the chain's
            // observable effect is exactly `ttl -= skip`, one checksum
            // refresh, `forwarded += skip` (plus this router's own
            // transmit), and a single arrival at the exit. Falls back to
            // hop-by-hop when TTL would expire mid-chain (the correct
            // router must answer) or when an epoch boundary cuts the
            // traversal (a flap may reroute mid-chain).
            let ttl = dgram.ttl();
            if ttl > slot.skip && self.now <= slot.bound {
                dgram.set_ttl_raw(ttl - slot.skip);
                dgram.refresh_header_checksum();
                self.stats.forwarded += 1 + u64::from(slot.skip);
                let at = self.now + slot.extra_delay;
                self.schedule(
                    at,
                    Event::Arrival {
                        node: slot.exit,
                        dgram,
                    },
                );
                return;
            }
        }
        match slot.link {
            Some(lid) => self.transmit_with(lid, dgram, ecn, needs_refresh),
            None => {
                self.note_drop(DropCause::NoRoute);
                self.pool.recycle_datagram(dgram);
            }
        }
    }

    /// Cache-miss path: the prefix-trie lookup plus the tunnel walk.
    /// Starting from the selected link, follow the chain while the link
    /// is passive ([`Link::is_passive`]) and the node behind it is a
    /// transparent router (open firewall, `Pass` ECN policy): such hops
    /// draw no randomness and can neither drop, mark, nor reorder, so
    /// their routing decisions — pinned by (`dst`, per-hop flow key,
    /// `epoch`) exactly like this slot — can be replayed in bulk.
    ///
    /// The walk is capped by the requesting packet's TTL: a packet with
    /// TTL `t` can ride at most `t - 1` skipped hops, so walking further
    /// is wasted trie work. This matters for TTL-limited traceroute
    /// probes, which carry a fresh flow key per probe (distinct ports):
    /// each one misses the cache, and without the cap each miss would
    /// pay a full chain walk for a tunnel it can never use. A slot built
    /// under a low cap memoises a shorter — still exact — tunnel.
    fn build_cache_slot(
        &mut self,
        node: NodeId,
        dst: u32,
        key: u64,
        epoch: u64,
        ttl: u8,
    ) -> RouteCacheSlot {
        let link = self.topo.tables[node.0 as usize]
            .as_ref()
            .and_then(|t| t.lookup(std::net::Ipv4Addr::from(dst)))
            .and_then(|entry| entry.select(key, epoch));
        let mut slot = RouteCacheSlot {
            dst,
            key,
            epoch,
            gen: self.route_gen,
            link,
            ..RouteCacheSlot::EMPTY
        };
        let Some(l0) = link else { return slot };
        if !self.links[l0.0 as usize].is_passive() {
            return slot;
        }
        // the per-hop key is the flow key XOR the hop's node id
        let base = key ^ (u64::from(node.0) << 48);
        let mut delay = self.links[l0.0 as usize].props.delay;
        let mut cur = self.links[l0.0 as usize].to;
        let mut skip = 0u8;
        let max_skip = MAX_TUNNEL_SKIP.min(ttl.saturating_sub(1));
        while skip < max_skip {
            let c = cur.0 as usize;
            if self.topo.kinds[c] != NodeKind::Router
                || !self.topo.firewalls[c].is_open()
                || !matches!(self.topo.ecn_policies[c], EcnPolicy::Pass)
            {
                break;
            }
            let hop_key = base ^ (u64::from(cur.0) << 48);
            let Some(next) = self.topo.tables[c]
                .as_ref()
                .and_then(|t| t.lookup(std::net::Ipv4Addr::from(dst)))
                .and_then(|entry| entry.select(hop_key, epoch))
            else {
                // the chain would no-route *at* `cur`: stop the tunnel
                // before it so the drop is attributed to the right hop
                break;
            };
            if !self.links[next.0 as usize].is_passive() {
                break;
            }
            delay += self.links[next.0 as usize].props.delay;
            skip += 1;
            cur = self.links[next.0 as usize].to;
        }
        if skip > 0 {
            let period = self.config.flap_period.0.max(1);
            let epoch_end = epoch.saturating_add(1).saturating_mul(period);
            slot.skip = skip;
            slot.exit = cur;
            slot.extra_delay = delay;
            // `now <= bound` ⇒ every intermediate arrival (all at
            // `now + d`, `d <= delay`) still falls inside `epoch`
            slot.bound = Nanos(epoch_end.saturating_sub(1).saturating_sub(delay.0));
        }
        slot
    }

    fn transmit(&mut self, lid: LinkId, dgram: Datagram) {
        let ecn = dgram.ecn();
        self.transmit_with(lid, dgram, ecn, false);
    }

    fn transmit_with(&mut self, lid: LinkId, mut dgram: Datagram, ecn: Ecn, needs_refresh: bool) {
        let now = self.now;
        let link = &mut self.links[lid.0 as usize];
        let to = link.to;
        match link.offer(now, dgram.len() as u64, ecn.is_markable(), &mut self.rng) {
            crate::link::LinkOutcome::Deliver { at, ce_mark } => {
                if ce_mark {
                    dgram.set_ecn_raw(Ecn::Ce);
                    self.stats.ce_marked += 1;
                    if let Some(tap) = &mut self.events {
                        tap.ce_marked += 1;
                    }
                }
                if needs_refresh || ce_mark {
                    dgram.refresh_header_checksum();
                }
                self.stats.forwarded += 1;
                self.schedule(at, Event::Arrival { node: to, dgram });
            }
            crate::link::LinkOutcome::Lost => {
                self.note_drop(DropCause::Loss);
                self.pool.recycle_datagram(dgram);
            }
            crate::link::LinkOutcome::Dropped(cause) => {
                self.note_drop(DropCause::Queue(cause));
                self.pool.recycle_datagram(dgram);
            }
        }
    }
}

/// Mutable view of the simulation handed to host agents during dispatch.
pub struct HostApi<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) node: NodeId,
}

impl HostApi<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.sim.now
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.sim.topo.addrs[self.node.0 as usize]
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a datagram from this host.
    pub fn send(&mut self, dgram: Datagram) {
        self.sim.send_from(self.node, dgram);
    }

    /// Arrange for `on_timer(token)` to fire after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let at = self.sim.now + delay;
        self.sim.schedule(
            at,
            Event::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Per-packet randomness shared with the engine.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Check a recycled byte buffer out of the simulator's packet pool.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.sim.pool.take()
    }
}

/// An immutable, thread-shareable snapshot of a constructed topology:
/// the struct-of-arrays node columns (with `Arc`-shared labels and
/// forwarding tables) and links — no agents, captures, or pending
/// events. One skeleton is built per blueprint; every work unit then
/// stamps a live [`Sim`] from it with [`SimSkeleton::instantiate`] — a
/// handful of column clones plus reference bumps instead of re-running
/// topology construction (and, since the flat layout, instead of one
/// box allocation per node).
pub struct SimSkeleton {
    /// Shared by reference with every stamped world: a stamp bumps one
    /// refcount instead of cloning ten node-indexed vectors.
    topo: Arc<Topology>,
    /// Links carry live state (queues, loss RNG, busy horizon), so each
    /// stamped world still gets its own copy.
    links: Vec<Link>,
}

impl Sim {
    /// Freeze this simulator's topology into a shareable skeleton.
    ///
    /// Panics if the simulator has run (pending events), or carries
    /// agents/captures — a skeleton snapshots *construction* output, not
    /// runtime state.
    pub fn freeze(self) -> SimSkeleton {
        assert_eq!(self.queue.len(), 0, "freeze: pending events");
        for (i, agent) in self.agents.iter().enumerate() {
            assert!(
                agent.is_none(),
                "freeze: host {} has an agent",
                self.topo.labels[i]
            );
        }
        for (i, cap) in self.captures.iter().enumerate() {
            assert!(
                cap.is_none(),
                "freeze: host {} has a capture",
                self.topo.labels[i]
            );
        }
        SimSkeleton {
            topo: self.topo,
            links: self.links,
        }
    }
}

impl SimSkeleton {
    /// Stamp a live simulator from this skeleton under `config`: the
    /// topology is shared (one `Arc` bump), only the mutable per-world
    /// columns — links, agents, captures, route cache — are allocated.
    pub fn instantiate(&self, config: SimConfig) -> Sim {
        let n = self.topo.kinds.len();
        let mut sim = Sim::with_config(config);
        sim.topo = Arc::clone(&self.topo);
        sim.agents = std::iter::repeat_with(|| None).take(n).collect();
        sim.captures = vec![None; n];
        sim.route_cache = vec![RouteCacheSlot::EMPTY; n * ROUTE_CACHE_WAYS];
        sim.links = self.links.clone();
        sim
    }

    /// Nodes in the skeleton.
    pub fn node_count(&self) -> usize {
        self.topo.kinds.len()
    }

    /// Links in the skeleton.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EcnPolicy, Firewall, FirewallRule};
    use crate::queue::QueueDisc;

    fn probe_dgram(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, ecn: Ecn) -> Datagram {
        let mut h = Ipv4Header::probe(src, dst, IpProto::Udp, ecn);
        h.ttl = ttl;
        Datagram::new(
            h,
            &ecn_wire::udp::udp_segment(src, dst, 40000, 123, b"test-payload"),
        )
    }

    /// host A -- r1 -- r2 -- host B, clean links, default routes.
    fn line_topology(seed: u64) -> (Sim, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("B", Ipv4Addr::new(192, 0, 2, 1));
        let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
        let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
        sim.attach_host(a, r1, LinkProps::clean(Nanos::from_millis(1)));
        sim.attach_host(b, r2, LinkProps::clean(Nanos::from_millis(1)));
        let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::clean(Nanos::from_millis(5)));
        sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
        sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
        (sim, a, b, r1, r2)
    }

    struct Echoer;
    impl HostAgent for Echoer {
        fn on_datagram(&mut self, api: &mut HostApi<'_>, dgram: &Datagram) {
            // reflect payload back to the source, preserving ECN
            let h = dgram.header();
            let reply_h = Ipv4Header::probe(api.addr(), h.src, h.protocol, h.ecn);
            let reply = Datagram::new(reply_h, dgram.payload());
            api.send(reply);
        }
        fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
    }

    #[test]
    fn end_to_end_delivery_and_echo() {
        let (mut sim, a, b, _r1, _r2) = line_topology(1);
        sim.set_agent(b, Box::new(Echoer));
        let cap = sim.attach_capture(a);
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            64,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        let cap = cap.lock();
        // capture holds the outgoing probe and the echoed reply
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.packets()[0].dir, Direction::Out);
        assert_eq!(cap.packets()[1].dir, Direction::In);
        let reply = cap.packets()[1].datagram().unwrap();
        assert_eq!(reply.src(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(reply.ecn(), Ecn::Ect0, "ECT(0) survives clean path");
        assert_eq!(sim.stats.delivered, 2);
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_with_quote() {
        let (mut sim, a, _b, _r1, _r2) = line_topology(2);
        let cap = sim.attach_capture(a);
        // TTL 2 expires at r2 (decremented to 1 at r1, 0 at r2).
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            2,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        assert_eq!(sim.stats.icmp_time_exceeded, 1);
        let cap = cap.lock();
        let icmp_pkt = cap
            .packets()
            .iter()
            .find(|p| p.dir == Direction::In)
            .expect("ICMP reply captured");
        let dg = icmp_pkt.datagram().unwrap();
        assert_eq!(dg.src(), Ipv4Addr::new(192, 0, 2, 254), "from r2");
        let msg = IcmpMessage::decode(dg.payload()).unwrap();
        let quoted = msg.quoted().unwrap();
        let qh = Ipv4Header::decode(quoted).unwrap();
        assert_eq!(qh.ecn, Ecn::Ect0, "quote shows mark as r2 saw it");
        assert_eq!(qh.dst, Ipv4Addr::new(192, 0, 2, 1));
    }

    #[test]
    fn bleaching_router_strips_mark_before_next_hop() {
        let (mut sim, a, b, r1, _r2) = line_topology(3);
        sim.set_ecn_policy(r1, EcnPolicy::Bleach);
        sim.set_agent(b, Box::new(Echoer));
        let cap_b = sim.attach_capture(b);
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            64,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        let cap = cap_b.lock();
        let arrived = cap.packets()[0].datagram().unwrap();
        assert_eq!(arrived.ecn(), Ecn::NotEct, "mark stripped at r1");
        assert_eq!(sim.stats.total_bleached(), 1);
        assert_eq!(sim.stats.bleached_by_node.get(&r1), Some(&1));
    }

    #[test]
    fn ect_udp_firewall_blocks_udp_but_not_tcp() {
        let (mut sim, a, _b, _r1, r2) = line_topology(4);
        sim.set_firewall(r2, Firewall::single(FirewallRule::drop_ect_udp()));
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        // ECT UDP: dropped at r2.
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::Ect0));
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::Firewall), 1);
        assert_eq!(sim.stats.delivered, 0);
        // not-ECT UDP: delivered.
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::NotEct));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 1);
        // ECT TCP: delivered (the §4.4 phenomenon).
        let mut h = Ipv4Header::probe(src, dst, IpProto::Tcp, Ecn::Ect0);
        h.ttl = 64;
        let tcp = ecn_wire::tcp::tcp_segment(
            src,
            dst,
            &ecn_wire::TcpHeader {
                src_port: 1,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: ecn_wire::TcpFlags::SYN,
                window: 1000,
                urgent: 0,
                options: vec![],
            },
            b"",
        );
        sim.send_from(a, Datagram::new(h, &tcp));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 2);
    }

    #[test]
    fn timers_fire_in_order() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        struct TimerAgent {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl HostAgent for TimerAgent {
            fn on_datagram(&mut self, _api: &mut HostApi<'_>, _d: &Datagram) {}
            fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
                self.fired.lock().push(token);
                if token == 1 {
                    api.set_timer(Nanos::from_millis(1), 3);
                }
            }
        }
        let (mut sim, a, _b, _r1, _r2) = line_topology(5);
        let fired = Arc::new(Mutex::new(Vec::new()));
        sim.set_agent(
            a,
            Box::new(TimerAgent {
                fired: fired.clone(),
            }),
        );
        {
            let mut api = HostApi {
                sim: &mut sim,
                node: a,
            };
            api.set_timer(Nanos::from_millis(10), 2);
            api.set_timer(Nanos::from_millis(5), 1);
        }
        sim.run_to_idle();
        // token 1 at 5 ms, token 3 set from within token 1's handler for
        // 6 ms, token 2 at 10 ms.
        assert_eq!(*fired.lock(), vec![1, 3, 2]);
    }

    #[test]
    fn rejecting_firewall_sends_admin_prohibited() {
        use ecn_wire::DestUnreachCode;
        let (mut sim, a, _b, _r1, r2) = line_topology(20);
        sim.set_firewall(
            r2,
            Firewall::single(crate::policy::FirewallRule {
                proto: Some(IpProto::Udp),
                ecn: crate::policy::EcnMatch::EcnCapable,
                src_within: None,
                action: FirewallAction::Reject,
                probability: 1.0,
            }),
        );
        let cap = sim.attach_capture(a);
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                64,
                Ecn::Ect0,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.icmp_dest_unreachable, 1);
        let cap = cap.lock();
        let reply = cap
            .packets()
            .iter()
            .find(|p| p.dir == Direction::In)
            .expect("ICMP reply");
        let dg = reply.datagram().unwrap();
        assert_eq!(dg.src(), Ipv4Addr::new(192, 0, 2, 254), "from r2");
        match IcmpMessage::decode(dg.payload()).unwrap() {
            IcmpMessage::DestUnreachable { code, quoted } => {
                assert_eq!(code, DestUnreachCode::AdminProhibited);
                let qh = Ipv4Header::decode(&quoted).unwrap();
                assert_eq!(qh.ecn, Ecn::Ect0, "quote shows the rejected mark");
            }
            other => panic!("wrong ICMP {other:?}"),
        }
    }

    #[test]
    fn tos_drop_policy_sheds_marked_packets_only() {
        let (mut sim, a, b, r1, _r2) = line_topology(21);
        sim.set_ecn_policy(r1, EcnPolicy::TosDrop(1.0));
        sim.set_agent(b, Box::new(Echoer));
        let cap = sim.attach_capture(a);
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::Ect0));
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::PolicyTos), 1);
        assert_eq!(
            cap.lock()
                .packets()
                .iter()
                .filter(|p| p.dir == Direction::In)
                .count(),
            0
        );
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::NotEct));
        sim.run_to_idle();
        assert_eq!(
            cap.lock()
                .packets()
                .iter()
                .filter(|p| p.dir == Direction::In)
                .count(),
            1,
            "not-ECT passes the TOS-sensitive hop"
        );
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let (mut sim, ..) = line_topology(6);
        sim.run_until(Nanos::from_secs(5));
        assert_eq!(sim.now(), Nanos::from_secs(5));
        sim.run_for(Nanos::from_millis(250));
        assert_eq!(sim.now(), Nanos::from_secs(5) + Nanos::from_millis(250));
    }

    #[test]
    fn domain_streams_depend_only_on_label() {
        let draw = |sim: &mut Sim| {
            use rand::Rng;
            sim.rng.gen::<u64>()
        };
        let mut a = Sim::with_domain(42, "engine/unit/v0/c0");
        let mut b = Sim::with_domain(42, "engine/unit/v0/c0");
        let mut c = Sim::with_domain(42, "engine/unit/v1/c0");
        let first = draw(&mut a);
        assert_eq!(first, draw(&mut b), "same domain, same stream");
        assert_ne!(first, draw(&mut c), "different domains decorrelate");
        assert_ne!(
            first,
            draw(&mut Sim::new(42)),
            "domain streams differ from the root stream"
        );
    }

    #[test]
    fn no_route_is_counted() {
        let mut sim = Sim::new(7);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let r = sim.add_router(Router::new("r", Ipv4Addr::new(10, 0, 0, 254), 65001));
        sim.attach_host(a, r, LinkProps::clean(Nanos::from_millis(1)));
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                64,
                Ecn::NotEct,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::NoRoute), 1);
    }

    #[test]
    fn host_mismatch_dropped() {
        let (mut sim, a, b, r2, _) = {
            let (sim, a, b, r1, r2) = line_topology(8);
            (sim, a, b, r2, r1)
        };
        // Route a bogus /32 at r2 down b's access link: wrong host receives.
        let down = sim.uplink_of(b).unwrap();
        // b's uplink is host->router; the router->host link is uplink+1 by
        // construction in add_duplex.
        let down = LinkId(down.0 + 1);
        sim.route(
            r2,
            "203.0.113.99/32".parse().unwrap(),
            RouteEntry::Link(down),
        );
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(203, 0, 113, 99),
                64,
                Ecn::NotEct,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::HostMismatch), 1);
    }

    #[test]
    fn find_host_and_find_node_use_the_addr_index() {
        let (sim, a, b, r1, _r2) = line_topology(30);
        assert_eq!(sim.find_host(Ipv4Addr::new(10, 0, 0, 1)), Some(a));
        assert_eq!(sim.find_host(Ipv4Addr::new(192, 0, 2, 1)), Some(b));
        // routers are reachable through find_node but not find_host
        assert_eq!(sim.find_node(Ipv4Addr::new(10, 0, 0, 254)), Some(r1));
        assert_eq!(sim.find_host(Ipv4Addr::new(10, 0, 0, 254)), None);
        assert_eq!(sim.find_host(Ipv4Addr::new(203, 0, 113, 7)), None);
    }

    #[test]
    fn red_bottleneck_ce_marks_ect_traffic_end_to_end() {
        let mut sim = Sim::new(9);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("B", Ipv4Addr::new(192, 0, 2, 1));
        let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
        let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
        sim.attach_host(a, r1, LinkProps::clean(Nanos::from_micros(10)));
        sim.attach_host(b, r2, LinkProps::clean(Nanos::from_micros(10)));
        // narrow RED bottleneck between r1 and r2 with a responsive average
        let red = QueueDisc::Red {
            min_th_bytes: 1_000,
            max_th_bytes: 60_000,
            max_p: 0.3,
            weight: 0.3,
            ecn: true,
            limit_bytes: 1_000_000,
        };
        let (l12, l21) = sim.add_duplex(
            r1,
            r2,
            LinkProps::bottleneck(Nanos::from_millis(5), 400_000, red),
        );
        sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
        sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
        let cap_b = sim.attach_capture(b);
        // Offer ECT-marked ~500-byte datagrams at 2 ms spacing: 250 kB/s
        // offered against a 50 kB/s drain — the backlog builds steadily.
        for i in 0..200u32 {
            let mut h = Ipv4Header::probe(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                IpProto::Udp,
                Ecn::Ect0,
            );
            h.identification = i as u16;
            let payload = ecn_wire::udp::udp_segment(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                5000,
                5001,
                &vec![0u8; 460],
            );
            sim.run_until(Nanos::from_millis(2 * u64::from(i)));
            sim.send_from(a, Datagram::new(h, &payload));
        }
        sim.run_to_idle();
        assert!(sim.stats.ce_marked > 5, "CE marks: {}", sim.stats.ce_marked);
        let cap = cap_b.lock();
        let ce_seen = cap
            .packets()
            .iter()
            .filter_map(|p| p.datagram())
            .filter(|d| d.ecn() == Ecn::Ce)
            .count();
        assert!(ce_seen > 5, "CE at receiver: {ce_seen}");
    }
}
