//! The discrete-event engine: schedules packet arrivals and host timers,
//! and implements the router forwarding pipeline (TTL/ICMP, firewall, ECN
//! policy, route lookup, link transmission).

use crate::events::SimCounters;
use crate::link::{Link, LinkId, LinkProps, NodeId};
use crate::node::{flow_key_header, HostAgent, HostNode, Node, RouteEntry, Router};
use crate::pcap::{new_capture, CaptureRef, Direction};
use crate::policy::FirewallAction;
use crate::pool::PacketPool;
use crate::prefix::Ipv4Prefix;
use crate::stats::{DropCause, Stats};
use crate::time::Nanos;
use ecn_wire::{Datagram, DestUnreachCode, Ecn, IcmpMessage, IpProto, Ipv4Header};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed for all per-packet randomness.
    pub seed: u64,
    /// Routing-epoch length: ECMP selections re-hash every period,
    /// modelling slow route churn.
    pub flap_period: Nanos,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            flap_period: Nanos::from_secs(120),
        }
    }
}

#[derive(Debug)]
enum Event {
    Arrival { node: NodeId, dgram: Datagram },
    Timer { node: NodeId, token: u64 },
}

struct Scheduled {
    at: Nanos,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulator.
pub struct Sim {
    now: Nanos,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    /// All nodes; index = `NodeId`.
    pub nodes: Vec<Node>,
    /// All directed links; index = `LinkId`.
    pub links: Vec<Link>,
    /// Ground-truth counters (not visible to the measurement application).
    pub stats: Stats,
    /// Datagram buffer freelist: checked out on encode, refilled when the
    /// simulator consumes a packet (delivery or drop).
    pub pool: PacketPool,
    /// Optional event tap ([`crate::events::SimCounters`]), installed by
    /// observed engine runs; `None` (the default) costs one pointer test
    /// per deliver/drop site.
    events: Option<Box<SimCounters>>,
    rng: SmallRng,
    config: SimConfig,
}

impl Sim {
    /// A simulator with the given seed and default config.
    pub fn new(seed: u64) -> Sim {
        Sim::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    /// A simulator whose per-packet RNG stream lives in its own *domain*:
    /// the stream is derived from `seed` and a stable label via
    /// [`crate::rng::derive_seed`], so it depends only on the label — never
    /// on how many other simulators exist or in what order they were
    /// created. Shard/unit-parallel execution engines use one domain per
    /// work unit so that changing the shard count cannot perturb any
    /// existing stream.
    pub fn with_domain(seed: u64, domain: &str) -> Sim {
        Sim::with_config(SimConfig {
            seed: crate::rng::derive_seed(seed, domain),
            ..SimConfig::default()
        })
    }

    /// A simulator with explicit configuration.
    pub fn with_config(config: SimConfig) -> Sim {
        Sim {
            now: Nanos::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            stats: Stats::default(),
            pool: PacketPool::new(),
            events: None,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xec00_5eed),
            config,
        }
    }

    /// Install (or reset) the event tap: from now on the deliver, drop,
    /// CE-mark, and ECN-rewrite sites count into a [`SimCounters`]
    /// drained with [`Self::drain_event_counters`]. Purely observational —
    /// installing a tap cannot change any packet outcome.
    pub fn install_event_tap(&mut self) {
        self.events = Some(Box::default());
    }

    /// Take the tap's counters, leaving a fresh zeroed tap installed.
    /// Returns the default (empty) counters if no tap was installed.
    pub fn drain_event_counters(&mut self) -> SimCounters {
        match &mut self.events {
            Some(tap) => std::mem::take(&mut **tap),
            None => SimCounters::default(),
        }
    }

    /// Count a discarded packet in both the ground-truth stats and, when
    /// a tap is installed, the event counters.
    fn note_drop(&mut self, cause: DropCause) {
        self.stats.drop(cause);
        if let Some(tap) = &mut self.events {
            tap.note_drop(cause);
        }
    }

    /// Check a recycled byte buffer out of the simulator's packet pool
    /// (for encoding an outgoing datagram via [`Datagram::compose`]).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Pre-allocate node and link storage. Blueprint-driven world
    /// instantiation knows its exact element counts up front; reserving
    /// avoids repeated growth reallocations on the construction hot path.
    pub fn reserve(&mut self, nodes: usize, links: usize) {
        self.nodes.reserve(nodes);
        self.links.reserve(links);
    }

    /// Pre-size the event queue so the first probe bursts don't grow the
    /// heap incrementally.
    pub fn reserve_events(&mut self, events: usize) {
        let have = self.queue.capacity();
        if events > have {
            self.queue.reserve(events - have);
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    // ---- topology construction -------------------------------------------------

    /// Add a router node.
    pub fn add_router(&mut self, router: Router) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Router(Box::new(router)));
        id
    }

    /// Add a host node (no uplink yet).
    pub fn add_host(&mut self, label: impl Into<Arc<str>>, addr: Ipv4Addr) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Host(Box::new(crate::node::HostNode {
            label: label.into(),
            addr,
            uplink: None,
            agent: None,
            capture: None,
        })));
        id
    }

    /// Add a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, props: LinkProps) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, props));
        id
    }

    /// Add a pair of directed links with identical properties.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, props: LinkProps) -> (LinkId, LinkId) {
        (self.add_link(a, b, props), self.add_link(b, a, props))
    }

    /// Connect `host` to `router`: duplex link, uplink set, /32 route
    /// installed on the router. Returns (host→router, router→host).
    pub fn attach_host(
        &mut self,
        host: NodeId,
        router: NodeId,
        props: LinkProps,
    ) -> (LinkId, LinkId) {
        let (up, down) = self.add_duplex(host, router, props);
        let addr = self.nodes[host.0 as usize].addr();
        match &mut self.nodes[host.0 as usize] {
            Node::Host(h) => h.uplink = Some(up),
            Node::Router(_) => panic!("attach_host: {host:?} is a router"),
        }
        self.nodes[router.0 as usize]
            .as_router_mut()
            .table_mut()
            .insert(Ipv4Prefix::host(addr), RouteEntry::Link(down));
        (up, down)
    }

    /// Install a route on a router.
    pub fn route(&mut self, router: NodeId, prefix: Ipv4Prefix, entry: RouteEntry) {
        self.nodes[router.0 as usize]
            .as_router_mut()
            .table_mut()
            .insert(prefix, entry);
    }

    /// Install the agent driving a host.
    pub fn set_agent(&mut self, host: NodeId, agent: Box<dyn HostAgent>) {
        match &mut self.nodes[host.0 as usize] {
            Node::Host(h) => h.agent = Some(agent),
            Node::Router(_) => panic!("set_agent: {host:?} is a router"),
        }
    }

    /// Attach (or fetch) the capture buffer on a host interface.
    pub fn attach_capture(&mut self, host: NodeId) -> CaptureRef {
        match &mut self.nodes[host.0 as usize] {
            Node::Host(h) => {
                if h.capture.is_none() {
                    h.capture = Some(new_capture());
                }
                h.capture.clone().expect("just set")
            }
            Node::Router(_) => panic!("attach_capture: {host:?} is a router"),
        }
    }

    /// Node id of the host with address `addr` (linear scan; test helper).
    pub fn find_host(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.nodes.iter().enumerate().find_map(|(i, n)| match n {
            Node::Host(h) if h.addr == addr => Some(NodeId(i as u32)),
            _ => None,
        })
    }

    // ---- event loop -------------------------------------------------------------

    fn schedule(&mut self, at: Nanos, event: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Process a single event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.queue.pop() else {
            return false;
        };
        self.now = s.at;
        match s.event {
            Event::Arrival { node, dgram } => self.handle_arrival(node, dgram),
            Event::Timer { node, token } => self.dispatch_timer(node, token),
        }
        true
    }

    /// Run until virtual time `t`: all events at or before `t` are
    /// processed, and the clock is left at exactly `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while let Some(head) = self.queue.peek() {
            if head.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: Nanos) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until no events remain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    // ---- packet handling ---------------------------------------------------------

    /// Arrange for `host`'s agent to receive `on_timer(token)` after
    /// `delay`. External drivers (e.g. a prober arming a socket timeout
    /// from outside the event loop) use this; agents use
    /// [`HostApi::set_timer`].
    pub fn set_timer(&mut self, host: NodeId, delay: Nanos, token: u64) {
        let at = self.now + delay;
        self.schedule(at, Event::Timer { node: host, token });
    }

    /// Inject a datagram as if `host` sent it (captures it, then offers it
    /// to the host's uplink). External drivers and `HostApi::send` both
    /// funnel through here.
    pub fn send_from(&mut self, host: NodeId, dgram: Datagram) {
        let idx = host.0 as usize;
        let (uplink, capture) = match &self.nodes[idx] {
            Node::Host(h) => (h.uplink, h.capture.clone()),
            Node::Router(_) => panic!("send_from: {host:?} is a router"),
        };
        if let Some(cap) = capture {
            cap.lock()
                .record(self.now, Direction::Out, dgram.as_bytes());
        }
        let Some(up) = uplink else {
            self.note_drop(DropCause::NoRoute);
            self.pool.recycle_datagram(dgram);
            return;
        };
        self.stats.originated += 1;
        self.transmit(up, dgram);
    }

    fn handle_arrival(&mut self, node: NodeId, dgram: Datagram) {
        match &self.nodes[node.0 as usize] {
            Node::Host(_) => self.host_receive(node, dgram),
            Node::Router(_) => self.router_receive(node, dgram),
        }
    }

    fn host_receive(&mut self, node: NodeId, dgram: Datagram) {
        let idx = node.0 as usize;
        let now = self.now;
        let (matches, agent) = match &mut self.nodes[idx] {
            Node::Host(h) => {
                if let Some(cap) = &h.capture {
                    cap.lock().record(now, Direction::In, dgram.as_bytes());
                }
                if h.addr == dgram.dst() {
                    (true, h.agent.take())
                } else {
                    (false, None)
                }
            }
            Node::Router(_) => unreachable!("host_receive on router"),
        };
        if !matches {
            self.note_drop(DropCause::HostMismatch);
            self.pool.recycle_datagram(dgram);
            return;
        }
        self.stats.delivered += 1;
        if let Some(tap) = &mut self.events {
            tap.delivered += 1;
        }
        if let Some(mut agent) = agent {
            let mut api = HostApi { sim: self, node };
            agent.on_datagram(&mut api, &dgram);
            if let Node::Host(h) = &mut self.nodes[idx] {
                h.agent = Some(agent);
            }
        }
        // the packet's life ends here; its buffer goes back to the pool
        self.pool.recycle_datagram(dgram);
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let idx = node.0 as usize;
        let agent = match &mut self.nodes[idx] {
            Node::Host(h) => h.agent.take(),
            Node::Router(_) => None,
        };
        if let Some(mut agent) = agent {
            let mut api = HostApi { sim: self, node };
            agent.on_timer(&mut api, token);
            if let Node::Host(h) = &mut self.nodes[idx] {
                h.agent = Some(agent);
            }
        }
    }

    /// The router pipeline decodes the IPv4 header exactly **once** per
    /// hop into a stack copy, mutates fields there (TTL, ECN), and writes
    /// the bytes back in a single [`Datagram::write_header`] at transmit
    /// time. The previous field-accessor style re-decoded (and
    /// checksum-verified) the header up to eight times per hop — the
    /// dominant CPU cost of the forwarding hot loop.
    fn router_receive(&mut self, node: NodeId, mut dgram: Datagram) {
        let idx = node.0 as usize;
        let mut hdr = dgram.header();

        // 1. TTL. Decrement; on expiry, answer with time-exceeded quoting
        // the datagram as this router saw it — including any upstream ECN
        // mangling, which is precisely what ECN traceroute measures.
        hdr.ttl = hdr.ttl.saturating_sub(1);
        if hdr.ttl == 0 {
            // the quote must show the decremented TTL on the wire
            dgram.write_header(&hdr);
            self.note_drop(DropCause::TtlExpired);
            let r = self.nodes[idx].as_router().expect("router");
            // No ICMP errors about ICMP (RFC 1812 §4.3.2.7 simplification:
            // the study's probes are UDP/TCP, so this only suppresses
            // pathological error-about-error storms).
            if r.responds_ttl_exceeded && hdr.protocol != IpProto::Icmp {
                let reply_hdr = Ipv4Header::probe(r.addr, hdr.src, IpProto::Icmp, Ecn::NotEct);
                let reply = Datagram::compose(self.pool.take(), reply_hdr, |out| {
                    IcmpMessage::encode_time_exceeded_into(dgram.as_bytes(), out)
                });
                self.stats.icmp_time_exceeded += 1;
                self.route_and_transmit(node, reply, reply_hdr, false);
            }
            self.pool.recycle_datagram(dgram);
            return;
        }

        // 2. Firewall.
        let action = {
            let r = self.nodes[idx].as_router().expect("router");
            r.firewall
                .evaluate(hdr.src, hdr.protocol, hdr.ecn, &mut self.rng)
        };
        match action {
            FirewallAction::Drop => {
                self.note_drop(DropCause::Firewall);
                *self.stats.firewall_drops_by_node.entry(node).or_insert(0) += 1;
                self.pool.recycle_datagram(dgram);
                return;
            }
            FirewallAction::Reject => {
                self.note_drop(DropCause::Firewall);
                *self.stats.firewall_drops_by_node.entry(node).or_insert(0) += 1;
                let r = self.nodes[idx].as_router().expect("router");
                if hdr.protocol != IpProto::Icmp {
                    // the quote shows the packet as this hop saw it
                    dgram.write_header(&hdr);
                    let reply_hdr = Ipv4Header::probe(r.addr, hdr.src, IpProto::Icmp, Ecn::NotEct);
                    let reply = Datagram::compose(self.pool.take(), reply_hdr, |out| {
                        IcmpMessage::encode_dest_unreachable_into(
                            DestUnreachCode::AdminProhibited,
                            dgram.as_bytes(),
                            out,
                        )
                    });
                    self.stats.icmp_dest_unreachable += 1;
                    self.route_and_transmit(node, reply, reply_hdr, false);
                }
                self.pool.recycle_datagram(dgram);
                return;
            }
            FirewallAction::Allow => {}
        }

        // 3. ECN policy.
        let policy = self.nodes[idx].as_router().expect("router").ecn_policy;
        let before = hdr.ecn;
        let (after, dropped) = policy.apply(before, &mut self.rng);
        if dropped {
            self.note_drop(DropCause::PolicyTos);
            self.pool.recycle_datagram(dgram);
            return;
        }
        if after != before {
            hdr.ecn = after;
            *self.stats.bleached_by_node.entry(node).or_insert(0) += 1;
            if let Some(tap) = self.events.as_mut() {
                // resolve the named hop only when someone is listening
                let hop = self.nodes[idx].as_router().expect("router").label.clone();
                tap.note_ecn_rewrite(hop);
            }
        }

        // 4+5. Route and transmit (the TTL decrement makes the header
        // dirty; the wire bytes are rewritten once, at transmit).
        self.route_and_transmit(node, dgram, hdr, true);
    }

    /// `hdr` is the caller's decoded (and possibly mutated) copy of
    /// `dgram`'s header; `dirty` says the copy differs from the wire
    /// bytes and must be written back before the packet moves on.
    fn route_and_transmit(&mut self, node: NodeId, dgram: Datagram, hdr: Ipv4Header, dirty: bool) {
        let idx = node.0 as usize;
        let epoch = self.now.0 / self.config.flap_period.0.max(1);
        let key = flow_key_header(&hdr) ^ (u64::from(node.0) << 48);
        let link = {
            let r = self.nodes[idx].as_router().expect("router");
            r.table
                .lookup(hdr.dst)
                .and_then(|entry| entry.select(key, epoch))
        };
        match link {
            Some(lid) => self.transmit_with(lid, dgram, hdr, dirty),
            None => {
                self.note_drop(DropCause::NoRoute);
                self.pool.recycle_datagram(dgram);
            }
        }
    }

    fn transmit(&mut self, lid: LinkId, dgram: Datagram) {
        let hdr = dgram.header();
        self.transmit_with(lid, dgram, hdr, false);
    }

    fn transmit_with(
        &mut self,
        lid: LinkId,
        mut dgram: Datagram,
        mut hdr: Ipv4Header,
        dirty: bool,
    ) {
        let now = self.now;
        let link = &mut self.links[lid.0 as usize];
        let to = link.to;
        match link.offer(
            now,
            dgram.len() as u64,
            hdr.ecn.is_markable(),
            &mut self.rng,
        ) {
            crate::link::LinkOutcome::Deliver { at, ce_mark } => {
                if ce_mark {
                    hdr.ecn = Ecn::Ce;
                    self.stats.ce_marked += 1;
                    if let Some(tap) = &mut self.events {
                        tap.ce_marked += 1;
                    }
                }
                if dirty || ce_mark {
                    dgram.write_header(&hdr);
                }
                self.stats.forwarded += 1;
                self.schedule(at, Event::Arrival { node: to, dgram });
            }
            crate::link::LinkOutcome::Lost => {
                self.note_drop(DropCause::Loss);
                self.pool.recycle_datagram(dgram);
            }
            crate::link::LinkOutcome::Dropped(cause) => {
                self.note_drop(DropCause::Queue(cause));
                self.pool.recycle_datagram(dgram);
            }
        }
    }
}

/// Mutable view of the simulation handed to host agents during dispatch.
pub struct HostApi<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) node: NodeId,
}

impl HostApi<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.sim.now
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.sim.nodes[self.node.0 as usize].addr()
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a datagram from this host.
    pub fn send(&mut self, dgram: Datagram) {
        self.sim.send_from(self.node, dgram);
    }

    /// Arrange for `on_timer(token)` to fire after `delay`.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let at = self.sim.now + delay;
        self.sim.schedule(
            at,
            Event::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Per-packet randomness shared with the engine.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Check a recycled byte buffer out of the simulator's packet pool.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.sim.pool.take()
    }
}

/// An immutable, thread-shareable snapshot of a constructed topology:
/// nodes (with `Arc`-shared labels and forwarding tables) and links, no
/// agents, captures, or pending events. One skeleton is built per
/// blueprint; every work unit then stamps a live [`Sim`] from it with
/// [`SimSkeleton::instantiate`] — a vector clone plus reference bumps
/// instead of re-running topology construction.
pub struct SimSkeleton {
    nodes: Vec<SkeletonNode>,
    links: Vec<Link>,
}

enum SkeletonNode {
    Router(Router),
    Host {
        label: Arc<str>,
        addr: Ipv4Addr,
        uplink: Option<LinkId>,
    },
}

impl Sim {
    /// Freeze this simulator's topology into a shareable skeleton.
    ///
    /// Panics if the simulator has run (pending events), or carries
    /// agents/captures — a skeleton snapshots *construction* output, not
    /// runtime state.
    pub fn freeze(self) -> SimSkeleton {
        assert_eq!(self.queue.len(), 0, "freeze: pending events");
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| match n {
                Node::Router(r) => SkeletonNode::Router(*r),
                Node::Host(h) => {
                    assert!(h.agent.is_none(), "freeze: host {} has an agent", h.label);
                    assert!(
                        h.capture.is_none(),
                        "freeze: host {} has a capture",
                        h.label
                    );
                    SkeletonNode::Host {
                        label: h.label,
                        addr: h.addr,
                        uplink: h.uplink,
                    }
                }
            })
            .collect();
        SimSkeleton {
            nodes,
            links: self.links,
        }
    }
}

impl SimSkeleton {
    /// Stamp a live simulator from this skeleton under `config`.
    pub fn instantiate(&self, config: SimConfig) -> Sim {
        let mut sim = Sim::with_config(config);
        sim.nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                SkeletonNode::Router(r) => Node::Router(Box::new(r.clone())),
                SkeletonNode::Host {
                    label,
                    addr,
                    uplink,
                } => Node::Host(Box::new(HostNode {
                    label: label.clone(),
                    addr: *addr,
                    uplink: *uplink,
                    agent: None,
                    capture: None,
                })),
            })
            .collect();
        sim.links = self.links.clone();
        sim
    }

    /// Nodes in the skeleton.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Links in the skeleton.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EcnPolicy, Firewall, FirewallRule};
    use crate::queue::QueueDisc;

    fn probe_dgram(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, ecn: Ecn) -> Datagram {
        let mut h = Ipv4Header::probe(src, dst, IpProto::Udp, ecn);
        h.ttl = ttl;
        Datagram::new(
            h,
            &ecn_wire::udp::udp_segment(src, dst, 40000, 123, b"test-payload"),
        )
    }

    /// host A -- r1 -- r2 -- host B, clean links, default routes.
    fn line_topology(seed: u64) -> (Sim, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("B", Ipv4Addr::new(192, 0, 2, 1));
        let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
        let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
        sim.attach_host(a, r1, LinkProps::clean(Nanos::from_millis(1)));
        sim.attach_host(b, r2, LinkProps::clean(Nanos::from_millis(1)));
        let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::clean(Nanos::from_millis(5)));
        sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
        sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
        (sim, a, b, r1, r2)
    }

    struct Echoer;
    impl HostAgent for Echoer {
        fn on_datagram(&mut self, api: &mut HostApi<'_>, dgram: &Datagram) {
            // reflect payload back to the source, preserving ECN
            let h = dgram.header();
            let reply_h = Ipv4Header::probe(api.addr(), h.src, h.protocol, h.ecn);
            let reply = Datagram::new(reply_h, dgram.payload());
            api.send(reply);
        }
        fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
    }

    #[test]
    fn end_to_end_delivery_and_echo() {
        let (mut sim, a, b, _r1, _r2) = line_topology(1);
        sim.set_agent(b, Box::new(Echoer));
        let cap = sim.attach_capture(a);
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            64,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        let cap = cap.lock();
        // capture holds the outgoing probe and the echoed reply
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.packets()[0].dir, Direction::Out);
        assert_eq!(cap.packets()[1].dir, Direction::In);
        let reply = cap.packets()[1].datagram().unwrap();
        assert_eq!(reply.src(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(reply.ecn(), Ecn::Ect0, "ECT(0) survives clean path");
        assert_eq!(sim.stats.delivered, 2);
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_with_quote() {
        let (mut sim, a, _b, _r1, _r2) = line_topology(2);
        let cap = sim.attach_capture(a);
        // TTL 2 expires at r2 (decremented to 1 at r1, 0 at r2).
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            2,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        assert_eq!(sim.stats.icmp_time_exceeded, 1);
        let cap = cap.lock();
        let icmp_pkt = cap
            .packets()
            .iter()
            .find(|p| p.dir == Direction::In)
            .expect("ICMP reply captured");
        let dg = icmp_pkt.datagram().unwrap();
        assert_eq!(dg.src(), Ipv4Addr::new(192, 0, 2, 254), "from r2");
        let msg = IcmpMessage::decode(dg.payload()).unwrap();
        let quoted = msg.quoted().unwrap();
        let qh = Ipv4Header::decode(quoted).unwrap();
        assert_eq!(qh.ecn, Ecn::Ect0, "quote shows mark as r2 saw it");
        assert_eq!(qh.dst, Ipv4Addr::new(192, 0, 2, 1));
    }

    #[test]
    fn bleaching_router_strips_mark_before_next_hop() {
        let (mut sim, a, b, r1, _r2) = line_topology(3);
        sim.nodes[r1.0 as usize].as_router_mut().ecn_policy = EcnPolicy::Bleach;
        sim.set_agent(b, Box::new(Echoer));
        let cap_b = sim.attach_capture(b);
        let d = probe_dgram(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            64,
            Ecn::Ect0,
        );
        sim.send_from(a, d);
        sim.run_to_idle();
        let cap = cap_b.lock();
        let arrived = cap.packets()[0].datagram().unwrap();
        assert_eq!(arrived.ecn(), Ecn::NotEct, "mark stripped at r1");
        assert_eq!(sim.stats.total_bleached(), 1);
        assert_eq!(sim.stats.bleached_by_node.get(&r1), Some(&1));
    }

    #[test]
    fn ect_udp_firewall_blocks_udp_but_not_tcp() {
        let (mut sim, a, _b, _r1, r2) = line_topology(4);
        sim.nodes[r2.0 as usize].as_router_mut().firewall =
            Firewall::single(FirewallRule::drop_ect_udp());
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        // ECT UDP: dropped at r2.
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::Ect0));
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::Firewall), 1);
        assert_eq!(sim.stats.delivered, 0);
        // not-ECT UDP: delivered.
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::NotEct));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 1);
        // ECT TCP: delivered (the §4.4 phenomenon).
        let mut h = Ipv4Header::probe(src, dst, IpProto::Tcp, Ecn::Ect0);
        h.ttl = 64;
        let tcp = ecn_wire::tcp::tcp_segment(
            src,
            dst,
            &ecn_wire::TcpHeader {
                src_port: 1,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: ecn_wire::TcpFlags::SYN,
                window: 1000,
                urgent: 0,
                options: vec![],
            },
            b"",
        );
        sim.send_from(a, Datagram::new(h, &tcp));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 2);
    }

    #[test]
    fn timers_fire_in_order() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        struct TimerAgent {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl HostAgent for TimerAgent {
            fn on_datagram(&mut self, _api: &mut HostApi<'_>, _d: &Datagram) {}
            fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
                self.fired.lock().push(token);
                if token == 1 {
                    api.set_timer(Nanos::from_millis(1), 3);
                }
            }
        }
        let (mut sim, a, _b, _r1, _r2) = line_topology(5);
        let fired = Arc::new(Mutex::new(Vec::new()));
        sim.set_agent(
            a,
            Box::new(TimerAgent {
                fired: fired.clone(),
            }),
        );
        {
            let mut api = HostApi {
                sim: &mut sim,
                node: a,
            };
            api.set_timer(Nanos::from_millis(10), 2);
            api.set_timer(Nanos::from_millis(5), 1);
        }
        sim.run_to_idle();
        // token 1 at 5 ms, token 3 set from within token 1's handler for
        // 6 ms, token 2 at 10 ms.
        assert_eq!(*fired.lock(), vec![1, 3, 2]);
    }

    #[test]
    fn rejecting_firewall_sends_admin_prohibited() {
        use ecn_wire::DestUnreachCode;
        let (mut sim, a, _b, _r1, r2) = line_topology(20);
        sim.nodes[r2.0 as usize].as_router_mut().firewall =
            Firewall::single(crate::policy::FirewallRule {
                proto: Some(IpProto::Udp),
                ecn: crate::policy::EcnMatch::EcnCapable,
                src_within: None,
                action: FirewallAction::Reject,
                probability: 1.0,
            });
        let cap = sim.attach_capture(a);
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                64,
                Ecn::Ect0,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.icmp_dest_unreachable, 1);
        let cap = cap.lock();
        let reply = cap
            .packets()
            .iter()
            .find(|p| p.dir == Direction::In)
            .expect("ICMP reply");
        let dg = reply.datagram().unwrap();
        assert_eq!(dg.src(), Ipv4Addr::new(192, 0, 2, 254), "from r2");
        match IcmpMessage::decode(dg.payload()).unwrap() {
            IcmpMessage::DestUnreachable { code, quoted } => {
                assert_eq!(code, DestUnreachCode::AdminProhibited);
                let qh = Ipv4Header::decode(&quoted).unwrap();
                assert_eq!(qh.ecn, Ecn::Ect0, "quote shows the rejected mark");
            }
            other => panic!("wrong ICMP {other:?}"),
        }
    }

    #[test]
    fn tos_drop_policy_sheds_marked_packets_only() {
        let (mut sim, a, b, r1, _r2) = line_topology(21);
        sim.nodes[r1.0 as usize].as_router_mut().ecn_policy = EcnPolicy::TosDrop(1.0);
        sim.set_agent(b, Box::new(Echoer));
        let cap = sim.attach_capture(a);
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::Ect0));
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::PolicyTos), 1);
        assert_eq!(
            cap.lock()
                .packets()
                .iter()
                .filter(|p| p.dir == Direction::In)
                .count(),
            0
        );
        sim.send_from(a, probe_dgram(src, dst, 64, Ecn::NotEct));
        sim.run_to_idle();
        assert_eq!(
            cap.lock()
                .packets()
                .iter()
                .filter(|p| p.dir == Direction::In)
                .count(),
            1,
            "not-ECT passes the TOS-sensitive hop"
        );
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let (mut sim, ..) = line_topology(6);
        sim.run_until(Nanos::from_secs(5));
        assert_eq!(sim.now(), Nanos::from_secs(5));
        sim.run_for(Nanos::from_millis(250));
        assert_eq!(sim.now(), Nanos::from_secs(5) + Nanos::from_millis(250));
    }

    #[test]
    fn domain_streams_depend_only_on_label() {
        let draw = |sim: &mut Sim| {
            use rand::Rng;
            sim.rng.gen::<u64>()
        };
        let mut a = Sim::with_domain(42, "engine/unit/v0/c0");
        let mut b = Sim::with_domain(42, "engine/unit/v0/c0");
        let mut c = Sim::with_domain(42, "engine/unit/v1/c0");
        let first = draw(&mut a);
        assert_eq!(first, draw(&mut b), "same domain, same stream");
        assert_ne!(first, draw(&mut c), "different domains decorrelate");
        assert_ne!(
            first,
            draw(&mut Sim::new(42)),
            "domain streams differ from the root stream"
        );
    }

    #[test]
    fn no_route_is_counted() {
        let mut sim = Sim::new(7);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let r = sim.add_router(Router::new("r", Ipv4Addr::new(10, 0, 0, 254), 65001));
        sim.attach_host(a, r, LinkProps::clean(Nanos::from_millis(1)));
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                64,
                Ecn::NotEct,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::NoRoute), 1);
    }

    #[test]
    fn host_mismatch_dropped() {
        let (mut sim, a, b, r2, _) = {
            let (sim, a, b, r1, r2) = line_topology(8);
            (sim, a, b, r2, r1)
        };
        // Route a bogus /32 at r2 down b's access link: wrong host receives.
        let down = match &sim.nodes[b.0 as usize] {
            Node::Host(h) => h.uplink.unwrap(),
            _ => unreachable!(),
        };
        // b's uplink is host->router; the router->host link is uplink+1 by
        // construction in add_duplex.
        let down = LinkId(down.0 + 1);
        sim.route(
            r2,
            "203.0.113.99/32".parse().unwrap(),
            RouteEntry::Link(down),
        );
        sim.send_from(
            a,
            probe_dgram(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(203, 0, 113, 99),
                64,
                Ecn::NotEct,
            ),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats.drops_for(DropCause::HostMismatch), 1);
    }

    #[test]
    fn red_bottleneck_ce_marks_ect_traffic_end_to_end() {
        let mut sim = Sim::new(9);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("B", Ipv4Addr::new(192, 0, 2, 1));
        let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
        let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
        sim.attach_host(a, r1, LinkProps::clean(Nanos::from_micros(10)));
        sim.attach_host(b, r2, LinkProps::clean(Nanos::from_micros(10)));
        // narrow RED bottleneck between r1 and r2 with a responsive average
        let red = QueueDisc::Red {
            min_th_bytes: 1_000,
            max_th_bytes: 60_000,
            max_p: 0.3,
            weight: 0.3,
            ecn: true,
            limit_bytes: 1_000_000,
        };
        let (l12, l21) = sim.add_duplex(
            r1,
            r2,
            LinkProps::bottleneck(Nanos::from_millis(5), 400_000, red),
        );
        sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
        sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
        let cap_b = sim.attach_capture(b);
        // Offer ECT-marked ~500-byte datagrams at 2 ms spacing: 250 kB/s
        // offered against a 50 kB/s drain — the backlog builds steadily.
        for i in 0..200u32 {
            let mut h = Ipv4Header::probe(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                IpProto::Udp,
                Ecn::Ect0,
            );
            h.identification = i as u16;
            let payload = ecn_wire::udp::udp_segment(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                5000,
                5001,
                &vec![0u8; 460],
            );
            sim.run_until(Nanos::from_millis(2 * u64::from(i)));
            sim.send_from(a, Datagram::new(h, &payload));
        }
        sim.run_to_idle();
        assert!(sim.stats.ce_marked > 5, "CE marks: {}", sim.stats.ce_marked);
        let cap = cap_b.lock();
        let ce_seen = cap
            .packets()
            .iter()
            .filter_map(|p| p.datagram())
            .filter(|d| d.ecn() == Ecn::Ce)
            .count();
        assert!(ce_seen > 5, "CE at receiver: {ce_seen}");
    }
}
