//! Packet capture: the simulator's "parallel tcpdump session" (paper §3).
//!
//! Every measurement host attaches a [`CaptureRef`] to its interface; the
//! prober then decides reachability *from the capture*, exactly as the
//! paper's methodology does, rather than by asking the simulator. Captures
//! can also be exported as standard libpcap files (LINKTYPE_RAW, i.e. raw
//! IPv4 packets) readable by Wireshark/tcpdump.

use crate::time::Nanos;
use ecn_wire::Datagram;
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Direction of a captured packet relative to the capturing host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Received by the host.
    In,
    /// Sent by the host.
    Out,
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// Virtual capture timestamp.
    pub ts: Nanos,
    /// Direction relative to the capturing interface.
    pub dir: Direction,
    /// Full raw bytes starting at the IPv4 header.
    pub bytes: Vec<u8>,
}

impl CapturedPacket {
    /// Parse the bytes back into a datagram (captures only ever store
    /// well-formed datagrams, but the parse is still fallible by design).
    ///
    /// Copies the packet; verdict scans that only need header fields and
    /// the payload slice should use [`CapturedPacket::ip_header`] /
    /// [`CapturedPacket::ip_payload`], which borrow.
    pub fn datagram(&self) -> Option<Datagram> {
        Datagram::from_bytes(self.bytes.clone()).ok()
    }

    /// Decode the IPv4 header in place (checksum-verified, no copy).
    pub fn ip_header(&self) -> Option<ecn_wire::Ipv4Header> {
        ecn_wire::Ipv4Header::decode(&self.bytes).ok()
    }

    /// The transport payload slice (bytes after the IPv4 header).
    pub fn ip_payload(&self) -> &[u8] {
        &self.bytes[ecn_wire::IPV4_HEADER_LEN.min(self.bytes.len())..]
    }
}

/// An append-only capture buffer.
///
/// Cleared captures keep their packet byte buffers on an internal
/// freelist, so the per-server "tcpdump session" pattern (clear, probe,
/// scan, clear …) stops allocating once warm.
#[derive(Debug, Default)]
pub struct Capture {
    packets: Vec<CapturedPacket>,
    free: Vec<Vec<u8>>,
}

/// Idle byte buffers a capture retains across `clear()` calls.
const CAPTURE_RETAIN: usize = 512;

impl Capture {
    /// Record a packet.
    pub fn record(&mut self, ts: Nanos, dir: Direction, bytes: &[u8]) {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(bytes);
        self.packets.push(CapturedPacket {
            ts,
            dir,
            bytes: buf,
        });
    }

    /// All packets, in capture order.
    pub fn packets(&self) -> &[CapturedPacket] {
        &self.packets
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Drop all packets captured so far (start of a new probe), recycling
    /// their byte buffers for the next session.
    pub fn clear(&mut self) {
        for p in self.packets.drain(..) {
            if self.free.len() < CAPTURE_RETAIN && p.bytes.capacity() > 0 {
                self.free.push(p.bytes);
            }
        }
    }

    /// Packets captured at or after `since`, in order.
    pub fn since(&self, since: Nanos) -> impl Iterator<Item = &CapturedPacket> {
        self.packets.iter().filter(move |p| p.ts >= since)
    }
}

/// Shared handle to a capture buffer (the sim writes, the prober reads).
pub type CaptureRef = Arc<Mutex<Capture>>;

/// Create a fresh shared capture buffer.
pub fn new_capture() -> CaptureRef {
    Arc::new(Mutex::new(Capture::default()))
}

const PCAP_MAGIC: u32 = 0xa1b2_c3d4; // microsecond-resolution, native order
const LINKTYPE_RAW: u32 = 101; // raw IPv4/IPv6

/// Write a capture as a classic libpcap file.
pub fn write_pcap(path: &Path, capture: &Capture) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&PCAP_MAGIC.to_le_bytes())?;
    f.write_all(&2u16.to_le_bytes())?; // version major
    f.write_all(&4u16.to_le_bytes())?; // version minor
    f.write_all(&0i32.to_le_bytes())?; // thiszone
    f.write_all(&0u32.to_le_bytes())?; // sigfigs
    f.write_all(&65535u32.to_le_bytes())?; // snaplen
    f.write_all(&LINKTYPE_RAW.to_le_bytes())?;
    for p in capture.packets() {
        let secs = (p.ts.0 / 1_000_000_000) as u32;
        let micros = ((p.ts.0 % 1_000_000_000) / 1_000) as u32;
        f.write_all(&secs.to_le_bytes())?;
        f.write_all(&micros.to_le_bytes())?;
        f.write_all(&(p.bytes.len() as u32).to_le_bytes())?;
        f.write_all(&(p.bytes.len() as u32).to_le_bytes())?;
        f.write_all(&p.bytes)?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_wire::{Ecn, IpProto, Ipv4Header};
    use std::net::Ipv4Addr;

    fn dgram() -> Datagram {
        Datagram::new(
            Ipv4Header::probe(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                IpProto::Udp,
                Ecn::Ect0,
            ),
            b"payload",
        )
    }

    #[test]
    fn record_and_query() {
        let mut c = Capture::default();
        assert!(c.is_empty());
        c.record(Nanos::from_secs(1), Direction::Out, dgram().as_bytes());
        c.record(Nanos::from_secs(2), Direction::In, dgram().as_bytes());
        assert_eq!(c.len(), 2);
        assert_eq!(c.since(Nanos::from_secs(2)).count(), 1);
        assert_eq!(c.since(Nanos::ZERO).count(), 2);
        let d = c.packets()[0].datagram().unwrap();
        assert_eq!(d.ecn(), Ecn::Ect0);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn shared_handle_is_concurrent() {
        let c = new_capture();
        let c2 = c.clone();
        c.lock()
            .record(Nanos::ZERO, Direction::Out, dgram().as_bytes());
        assert_eq!(c2.lock().len(), 1);
    }

    #[test]
    fn pcap_file_has_valid_header_and_records() {
        let dir = std::env::temp_dir().join("ecnudp-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        let mut c = Capture::default();
        c.record(Nanos::from_millis(1500), Direction::Out, dgram().as_bytes());
        write_pcap(&path, &c).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[0..4], &PCAP_MAGIC.to_le_bytes());
        assert_eq!(&bytes[20..24], &LINKTYPE_RAW.to_le_bytes());
        // record header: ts_sec=1, ts_usec=500000
        assert_eq!(&bytes[24..28], &1u32.to_le_bytes());
        assert_eq!(&bytes[28..32], &500_000u32.to_le_bytes());
        let caplen = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        assert_eq!(caplen, dgram().len());
        assert_eq!(bytes.len(), 40 + caplen);
        std::fs::remove_file(&path).ok();
    }
}
