//! Virtual time. The simulator is fully deterministic: time is a `u64`
//! nanosecond counter that only advances when the event loop dequeues an
//! event.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);
    /// Far future; used as an "infinite" horizon for `run_until`.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// As (truncated) whole seconds.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// As (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// As f64 seconds (for reporting only — never for simulation logic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_secs(2).0, 2_000_000_000);
        assert_eq!(Nanos::from_millis(5).as_millis(), 5);
        assert_eq!(Nanos::from_micros(7).0, 7_000);
        assert_eq!(Nanos::from_secs(3).as_secs(), 3);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_millis(10);
        let b = Nanos::from_millis(4);
        assert_eq!(a + b, Nanos::from_millis(14));
        assert_eq!(a - b, Nanos::from_millis(6));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos::from_millis(14));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(1).to_string(), "1.000s");
    }
}
