//! Per-hop ECN treatment and firewall rules — the middlebox behaviours whose
//! prevalence the measurement study quantifies.

use crate::prefix::Ipv4Prefix;
use ecn_wire::{Ecn, IpProto};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What a router does to the ECN field of packets it forwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EcnPolicy {
    /// RFC-compliant: leave the field alone.
    #[default]
    Pass,
    /// "Bleach": reset ECT(0)/ECT(1)/CE to not-ECT on every packet.
    /// This is the §4.2 phenomenon — 1143 of 155439 observed hops did this.
    Bleach,
    /// Bleach each packet independently with probability `p` — the "125
    /// hops only sometimes strip the ECN mark" case.
    BleachProb(f64),
    /// Treat the ECN bits as part of a legacy TOS octet and preferentially
    /// drop packets with nonzero ECN bits with probability `p` (one of the
    /// paper's hypotheses for <100% differential reachability).
    TosDrop(f64),
    /// CE suppressor: rewrite congestion-experienced back to ECT(0),
    /// erasing the congestion signal while leaving capability declarations
    /// intact. Invisible to a reachability probe, fatal to a congestion
    /// controller — the failure mode an RFC 9000-style validator detects
    /// with a deliberately CE-marked canary packet.
    ClearCe,
    /// L4S-hostile re-marker: rewrite ECT(1) to ECT(0), collapsing the L4S
    /// identifier onto the classic codepoint. ECT(0), CE and not-ECT pass
    /// untouched.
    DowngradeEct1,
}

impl EcnPolicy {
    /// Apply the policy to a packet's ECN codepoint.
    ///
    /// Returns `(new_codepoint, drop)`; `drop == true` means the router
    /// discards the packet (only `TosDrop` does this).
    pub fn apply(&self, ecn: Ecn, rng: &mut SmallRng) -> (Ecn, bool) {
        match *self {
            EcnPolicy::Pass => (ecn, false),
            EcnPolicy::Bleach => (Ecn::NotEct, false),
            EcnPolicy::BleachProb(p) => {
                if ecn != Ecn::NotEct && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    (Ecn::NotEct, false)
                } else {
                    (ecn, false)
                }
            }
            EcnPolicy::TosDrop(p) => {
                if ecn != Ecn::NotEct && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    (ecn, true)
                } else {
                    (ecn, false)
                }
            }
            EcnPolicy::ClearCe => {
                if ecn == Ecn::Ce {
                    (Ecn::Ect0, false)
                } else {
                    (ecn, false)
                }
            }
            EcnPolicy::DowngradeEct1 => {
                if ecn == Ecn::Ect1 {
                    (Ecn::Ect0, false)
                } else {
                    (ecn, false)
                }
            }
        }
    }

    /// Does this policy ever modify or react to ECN bits? (Used by ground
    /// -truth audits in tests.)
    pub fn is_ecn_hostile(&self) -> bool {
        !matches!(self, EcnPolicy::Pass)
    }
}

/// ECN-codepoint matcher for firewall rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcnMatch {
    /// Match every packet.
    Any,
    /// Match ECT(0), ECT(1) and CE — "the packet declares ECN capability".
    EcnCapable,
    /// Match only not-ECT packets (the inverse oddity of Figure 3b).
    NotEct,
    /// Match only CE.
    Ce,
    /// Match only ECT(0) — a middlebox that keys on the classic codepoint
    /// specifically, not on "declares ECN capability".
    Ect0,
    /// Match only ECT(1) — an L4S-selective middlebox.
    Ect1,
}

impl EcnMatch {
    /// Does `ecn` satisfy the matcher?
    pub fn matches(self, ecn: Ecn) -> bool {
        match self {
            EcnMatch::Any => true,
            EcnMatch::EcnCapable => ecn.is_ecn_capable(),
            EcnMatch::NotEct => ecn == Ecn::NotEct,
            EcnMatch::Ce => ecn == Ecn::Ce,
            EcnMatch::Ect0 => ecn == Ecn::Ect0,
            EcnMatch::Ect1 => ecn == Ecn::Ect1,
        }
    }
}

/// What a matching firewall rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirewallAction {
    /// Silently discard (what ECT-hostile middleboxes do in practice —
    /// the probe just times out).
    Drop,
    /// Discard and return ICMP administratively-prohibited.
    Reject,
    /// Explicitly allow (terminates rule evaluation).
    Allow,
}

/// One firewall rule: protocol/ECN match plus action.
///
/// The study's key middlebox is expressed as
/// `FirewallRule::drop_ect_udp()`: ECT-marked UDP is discarded while
/// identical TCP passes — the behaviour §4.4 infers from the weak
/// UDP/TCP correlation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirewallRule {
    /// Match only this transport protocol (None = all).
    pub proto: Option<IpProto>,
    /// Match on the ECN codepoint.
    pub ecn: EcnMatch,
    /// Match only packets whose source lies in this prefix (None = all).
    /// Models source-selective middleboxes — e.g. the pair of pool servers
    /// the paper found unreachable with not-ECT packets *only from EC2*
    /// (§4.1, Figure 3b).
    pub src_within: Option<Ipv4Prefix>,
    /// Apply this action when matched.
    pub action: FirewallAction,
    /// Match each packet only with this probability (1.0 = always).
    /// Models flaky/bypassable middleboxes.
    pub probability: f64,
}

impl FirewallRule {
    /// Drop ECN-capable UDP packets — the canonical ECT-hostile middlebox.
    pub fn drop_ect_udp() -> FirewallRule {
        FirewallRule {
            proto: Some(IpProto::Udp),
            ecn: EcnMatch::EcnCapable,
            src_within: None,
            action: FirewallAction::Drop,
            probability: 1.0,
        }
    }

    /// Drop ECN-capable packets of every protocol.
    pub fn drop_ect_all() -> FirewallRule {
        FirewallRule {
            proto: None,
            ecn: EcnMatch::EcnCapable,
            src_within: None,
            action: FirewallAction::Drop,
            probability: 1.0,
        }
    }

    /// Drop *not-ECT* UDP — the inexplicable Figure 3b behaviour.
    pub fn drop_not_ect_udp() -> FirewallRule {
        FirewallRule {
            proto: Some(IpProto::Udp),
            ecn: EcnMatch::NotEct,
            src_within: None,
            action: FirewallAction::Drop,
            probability: 1.0,
        }
    }

    /// Restrict this rule to packets sourced within `prefix`.
    pub fn from_sources(self, prefix: Ipv4Prefix) -> FirewallRule {
        FirewallRule {
            src_within: Some(prefix),
            ..self
        }
    }

    /// Does the rule fire for this packet?
    pub fn fires(&self, src: Ipv4Addr, proto: IpProto, ecn: Ecn, rng: &mut SmallRng) -> bool {
        if let Some(p) = self.proto {
            if p != proto {
                return false;
            }
        }
        if !self.ecn.matches(ecn) {
            return false;
        }
        if let Some(prefix) = self.src_within {
            if !prefix.contains(src) {
                return false;
            }
        }
        self.probability >= 1.0 || rng.gen_bool(self.probability.clamp(0.0, 1.0))
    }
}

/// An ordered rule chain; first matching rule wins, default allow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Firewall {
    /// Rules evaluated in order.
    pub rules: Vec<FirewallRule>,
}

impl Firewall {
    /// No rules: allows everything.
    pub fn allow_all() -> Firewall {
        Firewall::default()
    }

    /// A chain with a single rule.
    pub fn single(rule: FirewallRule) -> Firewall {
        Firewall { rules: vec![rule] }
    }

    /// Evaluate the chain.
    pub fn evaluate(
        &self,
        src: Ipv4Addr,
        proto: IpProto,
        ecn: Ecn,
        rng: &mut SmallRng,
    ) -> FirewallAction {
        for rule in &self.rules {
            if rule.fires(src, proto, ecn, rng) {
                return rule.action;
            }
        }
        FirewallAction::Allow
    }

    /// True if no rule can ever drop anything.
    pub fn is_permissive(&self) -> bool {
        self.rules.iter().all(|r| r.action == FirewallAction::Allow)
    }

    /// True when the chain is empty: evaluation is `Allow` without
    /// consulting the RNG. (Stricter than [`Self::is_permissive`] — an
    /// allow rule still draws randomness if it is probabilistic, so only
    /// the empty chain is safe to skip entirely.)
    pub fn is_open(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    const ANY_SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 77);

    #[test]
    fn pass_policy_is_identity() {
        let mut rng = derive_rng(1, "t");
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            assert_eq!(EcnPolicy::Pass.apply(ecn, &mut rng), (ecn, false));
        }
        assert!(!EcnPolicy::Pass.is_ecn_hostile());
    }

    #[test]
    fn bleach_clears_all_ecn() {
        let mut rng = derive_rng(1, "t");
        for ecn in [Ecn::Ect0, Ecn::Ect1, Ecn::Ce, Ecn::NotEct] {
            assert_eq!(EcnPolicy::Bleach.apply(ecn, &mut rng), (Ecn::NotEct, false));
        }
        assert!(EcnPolicy::Bleach.is_ecn_hostile());
    }

    #[test]
    fn bleach_prob_is_probabilistic() {
        let mut rng = derive_rng(2, "t");
        let policy = EcnPolicy::BleachProb(0.5);
        let bleached = (0..2000)
            .filter(|_| policy.apply(Ecn::Ect0, &mut rng).0 == Ecn::NotEct)
            .count();
        assert!(bleached > 800 && bleached < 1200, "bleached {bleached}");
        // not-ECT packets are untouched (and consume no randomness).
        assert_eq!(policy.apply(Ecn::NotEct, &mut rng), (Ecn::NotEct, false));
    }

    #[test]
    fn tos_drop_only_affects_marked_packets() {
        let mut rng = derive_rng(3, "t");
        let policy = EcnPolicy::TosDrop(1.0);
        assert_eq!(policy.apply(Ecn::Ect0, &mut rng), (Ecn::Ect0, true));
        assert_eq!(policy.apply(Ecn::NotEct, &mut rng), (Ecn::NotEct, false));
        // A legacy-TOS hop keys on "nonzero ECN bits", not on ECT(0)
        // specifically: ECT(1) and CE packets are shed just the same.
        assert_eq!(policy.apply(Ecn::Ect1, &mut rng), (Ecn::Ect1, true));
        assert_eq!(policy.apply(Ecn::Ce, &mut rng), (Ecn::Ce, true));
    }

    #[test]
    fn clear_ce_suppresses_only_congestion_marks() {
        let mut rng = derive_rng(9, "t");
        let policy = EcnPolicy::ClearCe;
        assert_eq!(policy.apply(Ecn::Ce, &mut rng), (Ecn::Ect0, false));
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1] {
            assert_eq!(policy.apply(ecn, &mut rng), (ecn, false));
        }
        assert!(policy.is_ecn_hostile());
    }

    #[test]
    fn downgrade_ect1_collapses_l4s_codepoint() {
        let mut rng = derive_rng(10, "t");
        let policy = EcnPolicy::DowngradeEct1;
        assert_eq!(policy.apply(Ecn::Ect1, &mut rng), (Ecn::Ect0, false));
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ce] {
            assert_eq!(policy.apply(ecn, &mut rng), (ecn, false));
        }
        assert!(policy.is_ecn_hostile());
    }

    #[test]
    fn codepoint_specific_matchers_distinguish_ect_variants() {
        // EcnCapable conflates ECT(0), ECT(1) and CE by design; the
        // codepoint-specific matchers do not.
        assert!(EcnMatch::Ect0.matches(Ecn::Ect0));
        assert!(!EcnMatch::Ect0.matches(Ecn::Ect1));
        assert!(!EcnMatch::Ect0.matches(Ecn::Ce));
        assert!(!EcnMatch::Ect0.matches(Ecn::NotEct));
        assert!(EcnMatch::Ect1.matches(Ecn::Ect1));
        assert!(!EcnMatch::Ect1.matches(Ecn::Ect0));
        assert!(!EcnMatch::Ect1.matches(Ecn::Ce));
        assert!(!EcnMatch::Ect1.matches(Ecn::NotEct));
    }

    #[test]
    fn ect_udp_firewall_passes_tcp() {
        let mut rng = derive_rng(4, "t");
        let fw = Firewall::single(FirewallRule::drop_ect_udp());
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::Ect0, &mut rng),
            FirewallAction::Drop
        );
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::NotEct, &mut rng),
            FirewallAction::Allow
        );
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Tcp, Ecn::Ect0, &mut rng),
            FirewallAction::Allow
        );
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::Ce, &mut rng),
            FirewallAction::Drop
        );
    }

    #[test]
    fn not_ect_firewall_is_inverse() {
        let mut rng = derive_rng(5, "t");
        let fw = Firewall::single(FirewallRule::drop_not_ect_udp());
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::NotEct, &mut rng),
            FirewallAction::Drop
        );
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::Ect0, &mut rng),
            FirewallAction::Allow
        );
    }

    #[test]
    fn rule_order_matters() {
        let mut rng = derive_rng(6, "t");
        let fw = Firewall {
            rules: vec![
                FirewallRule {
                    proto: Some(IpProto::Udp),
                    ecn: EcnMatch::Any,
                    src_within: None,
                    action: FirewallAction::Allow,
                    probability: 1.0,
                },
                FirewallRule::drop_ect_udp(),
            ],
        };
        assert_eq!(
            fw.evaluate(ANY_SRC, IpProto::Udp, Ecn::Ect0, &mut rng),
            FirewallAction::Allow
        );
    }

    #[test]
    fn probabilistic_rule_fires_sometimes() {
        let mut rng = derive_rng(7, "t");
        let rule = FirewallRule {
            probability: 0.3,
            ..FirewallRule::drop_ect_udp()
        };
        let fired = (0..2000)
            .filter(|_| rule.fires(ANY_SRC, IpProto::Udp, Ecn::Ect0, &mut rng))
            .count();
        assert!(fired > 450 && fired < 750, "fired {fired}");
    }

    #[test]
    fn src_prefix_restricts_rule() {
        let mut rng = derive_rng(8, "t");
        let ec2: Ipv4Prefix = "54.0.0.0/8".parse().unwrap();
        let fw = Firewall::single(FirewallRule::drop_not_ect_udp().from_sources(ec2));
        let from_ec2 = Ipv4Addr::new(54, 12, 0, 9);
        let from_home = Ipv4Addr::new(81, 2, 3, 4);
        assert_eq!(
            fw.evaluate(from_ec2, IpProto::Udp, Ecn::NotEct, &mut rng),
            FirewallAction::Drop
        );
        assert_eq!(
            fw.evaluate(from_home, IpProto::Udp, Ecn::NotEct, &mut rng),
            FirewallAction::Allow
        );
        assert_eq!(
            fw.evaluate(from_ec2, IpProto::Udp, Ecn::Ect0, &mut rng),
            FirewallAction::Allow
        );
    }

    #[test]
    fn permissiveness_check() {
        assert!(Firewall::allow_all().is_permissive());
        assert!(!Firewall::single(FirewallRule::drop_ect_udp()).is_permissive());
    }
}
