//! Property-based tests for the simulator's data structures and models:
//! the LPM trie against a naive reference, loss-model convergence, ECMP
//! selection bounds, and packet-conservation through random line
//! topologies.

use ecn_netsim::{
    derive_rng, DropCause, Ipv4Prefix, LinkProps, LossModel, LossProcess, Nanos, PrefixMap,
    RouteEntry, Router, Sim,
};
use ecn_wire::{Datagram, Ecn, IpProto, Ipv4Header};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr::from(addr), len))
}

/// Naive reference: linear scan for the longest matching prefix.
fn naive_lookup(entries: &[(Ipv4Prefix, u32)], ip: Ipv4Addr) -> Option<u32> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, v)| *v)
}

proptest! {
    #[test]
    fn prefix_map_matches_naive_model(
        raw in proptest::collection::vec((arb_prefix(), any::<u32>()), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        // deduplicate by prefix, keeping the LAST value (insert semantics)
        let mut entries: Vec<(Ipv4Prefix, u32)> = Vec::new();
        let mut map = PrefixMap::new();
        for (p, v) in raw {
            map.insert(p, v);
            entries.retain(|(q, _)| *q != p);
            entries.push((p, v));
        }
        prop_assert_eq!(map.len(), entries.len());
        for ip in probes.into_iter().map(Ipv4Addr::from) {
            prop_assert_eq!(map.lookup(ip).copied(), naive_lookup(&entries, ip), "ip {}", ip);
        }
    }

    #[test]
    fn prefix_contains_its_own_addresses(p in arb_prefix(), offset in any::<u32>()) {
        let inside = p.nth(offset);
        prop_assert!(p.contains(inside));
    }

    #[test]
    fn loss_means_converge(mean in 0.0f64..0.4) {
        let mut proc = LossProcess::new(LossModel::congested_access(mean));
        let mut rng = derive_rng(42, "prop-loss");
        let n = 400_000u64;
        let drops = (0..n)
            .filter(|i| proc.should_drop(Nanos::from_millis(i * 10), false, &mut rng))
            .count();
        let rate = drops as f64 / n as f64;
        // generous band: burst models converge slowly
        prop_assert!((rate - mean).abs() < 0.03 + mean * 0.25, "mean {mean} rate {rate}");
    }

    #[test]
    fn ecn_biased_loss_prefers_ect(duty in 0.05f64..0.5) {
        let model = LossModel::tos_biased_access(duty, 0.3, 0.9);
        let mut proc = LossProcess::new(model);
        let mut rng = derive_rng(7, "prop-bias");
        let n = 200_000u64;
        let mut ect_drops = 0u64;
        let mut plain_drops = 0u64;
        for i in 0..n {
            let t = Nanos::from_millis(i * 10);
            // alternate markings through the same chain
            if i % 2 == 0 {
                ect_drops += u64::from(proc.should_drop(t, true, &mut rng));
            } else {
                plain_drops += u64::from(proc.should_drop(t, false, &mut rng));
            }
        }
        prop_assert!(ect_drops > plain_drops * 2,
            "ect {ect_drops} plain {plain_drops} at duty {duty}");
    }

    #[test]
    fn ecmp_selection_is_always_in_range(
        links in 1usize..8,
        key in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let entry = RouteEntry::Ecmp((0..links as u32).map(ecn_netsim::LinkId).collect());
        let chosen = entry.select(key, epoch).expect("non-empty");
        prop_assert!((chosen.0 as usize) < links);
        // deterministic
        prop_assert_eq!(entry.select(key, epoch), Some(chosen));
    }

    #[test]
    fn packets_are_conserved_through_line_topologies(
        hops in 1usize..6,
        packets in 1usize..30,
        loss_p in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        // host A -- r0 -- r1 -- ... -- r(hops-1) -- host B with a lossy
        // middle: every originated packet is either delivered, dropped
        // with a recorded cause, or died of TTL.
        let mut sim = Sim::new(seed);
        let a = sim.add_host("A", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("B", Ipv4Addr::new(192, 0, 2, 1));
        let routers: Vec<_> = (0..hops)
            .map(|i| {
                sim.add_router(Router::new(
                    format!("r{i}"),
                    Ipv4Addr::new(100, 64, i as u8, 1),
                    100 + i as u32,
                ))
            })
            .collect();
        sim.attach_host(a, routers[0], LinkProps::clean(Nanos::from_millis(1)));
        sim.attach_host(b, routers[hops - 1], LinkProps::clean(Nanos::from_millis(1)));
        for w in 0..hops.saturating_sub(1) {
            let props = if w == 0 {
                LinkProps::lossy(Nanos::from_millis(2), loss_p)
            } else {
                LinkProps::clean(Nanos::from_millis(2))
            };
            let (f, bk) = sim.add_duplex(routers[w], routers[w + 1], props);
            sim.route(routers[w], "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(f));
            let _ = bk;
        }
        // default routes towards B for the last router handled by
        // attach_host's /32; remaining routers need a default up-chain too
        for w in 0..hops {
            if w + 1 < hops {
                // already set above
            }
        }
        let h = Ipv4Header::probe(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            IpProto::Udp,
            Ecn::Ect0,
        );
        let seg = ecn_wire::udp::udp_segment(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            1,
            2,
            b"conservation",
        );
        for _ in 0..packets {
            sim.send_from(a, Datagram::new(h, &seg));
        }
        sim.run_to_idle();
        let s = &sim.stats;
        let accounted = s.delivered
            + s.drops_for(DropCause::Loss)
            + s.drops_for(DropCause::NoRoute)
            + s.drops_for(DropCause::TtlExpired)
            + s.drops_for(DropCause::HostMismatch);
        prop_assert_eq!(s.originated as usize, packets);
        prop_assert_eq!(accounted as usize, packets, "all packets accounted for");
    }
}

// ------------------------------------------------------ AQM mark safety
//
// RFC 3168 §5 at the queue level: whatever the discipline, parameters,
// backlog and randomness, a CE mark may only ever be applied to a
// markable codepoint — not-ECT traffic is never touched — and the
// marking decision is a pure function of (packet, queue state, RNG
// stream), so identical streams mark identically regardless of how the
// campaign above is sharded or stolen.

use ecn_netsim::{QueueDisc, QueueState, QueueVerdict};

fn arb_aqm() -> impl Strategy<Value = QueueDisc> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(QueueDisc::aqm_mark),
        (0u64..2_000_000).prop_map(|us| QueueDisc::l4s_mark(Nanos(us * 1_000))),
        Just(QueueDisc::red_ecn(64 * 1024)),
        Just(QueueDisc::deep_fifo()),
    ]
}

proptest! {
    #[test]
    fn aqm_never_marks_unmarkable_codepoints(
        disc in arb_aqm(),
        seed in any::<u64>(),
        arrivals in proptest::collection::vec(
            (0u64..60_000, 40u64..1_500, 0u64..4_000_000),
            1..80,
        ),
    ) {
        // the same arrival sequence, once unmarkable and once markable
        let mut rng = derive_rng(seed, "aqm-unmarkable");
        let mut q = QueueState::new(disc);
        for (backlog, bytes, sojourn_us) in &arrivals {
            let v = q.on_arrival(
                *backlog,
                *bytes,
                Nanos(sojourn_us * 1_000),
                false, // not-ECT (or CE): not markable
                &mut rng,
            );
            prop_assert!(
                !matches!(v, QueueVerdict::EnqueueMarked),
                "unmarkable traffic must never be CE-marked by {:?}",
                disc
            );
        }
    }

    #[test]
    fn aqm_marking_is_deterministic_in_the_rng_stream(
        disc in arb_aqm(),
        seed in any::<u64>(),
        ect_pattern in proptest::collection::vec(any::<bool>(), 1..80),
    ) {
        // replaying the identical (arrival, RNG) stream yields identical
        // verdicts — the queue keeps no hidden nondeterministic state, so
        // shard count or stealing order (which never change a link's
        // per-packet stream) cannot change a mark
        let run = |label: &str| {
            let mut rng = derive_rng(seed, label);
            let mut q = QueueState::new(disc);
            ect_pattern
                .iter()
                .enumerate()
                .map(|(i, ect)| {
                    q.on_arrival(
                        (i as u64 * 700) % 40_000,
                        1_000,
                        Nanos(((i as u64 * 131) % 3_000) * 1_000),
                        *ect,
                        &mut rng,
                    )
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run("aqm-replay"), run("aqm-replay"));
    }

    #[test]
    fn mark_prob_extremes_are_exact(
        seed in any::<u64>(),
        sojourn_us in 0u64..10_000,
    ) {
        // prob = 1 marks every markable arrival, prob = 0 marks none —
        // and CodelMark marks exactly when sojourn exceeds the target
        let mut rng = derive_rng(seed, "aqm-extremes");
        let mut always = QueueState::new(QueueDisc::aqm_mark(1.0));
        let mut never = QueueState::new(QueueDisc::aqm_mark(0.0));
        let target = Nanos::from_millis(1);
        let mut codel = QueueState::new(QueueDisc::l4s_mark(target));
        let sojourn = Nanos(sojourn_us * 1_000);
        prop_assert!(matches!(
            always.on_arrival(0, 100, sojourn, true, &mut rng),
            QueueVerdict::EnqueueMarked
        ));
        prop_assert!(matches!(
            never.on_arrival(0, 100, sojourn, true, &mut rng),
            QueueVerdict::Enqueue
        ));
        let v = codel.on_arrival(0, 100, sojourn, true, &mut rng);
        prop_assert_eq!(
            matches!(v, QueueVerdict::EnqueueMarked),
            sojourn > target,
            "CoDel marks exactly above the sojourn target"
        );
    }
}
