//! ECT(1) round-trips and AQM hops versus the multi-hop tunnelling fast
//! path.
//!
//! The route cache memoises *tunnels* across chains of transparent
//! routers (passive links, open firewalls, `Pass` ECN policy) and
//! replays their effects in bulk. These tests pin the two properties the
//! modern-ECN scenarios lean on:
//!
//! - the ECT(1) codepoint survives the collapsed fast path end-to-end
//!   and stays distinct from ECT(0) at every policy/firewall hop, and
//! - a CE-marking AQM link ([`QueueDisc::aqm_mark`], `l4s_mark`) in the
//!   middle of an otherwise tunnelable chain is never skipped: its
//!   marks land whether or not the surrounding hops collapse.
//!
//! The last test is a `wheel_equivalence`-style oracle: the *same*
//! topology, seed and packet schedule driven twice — once with tunnels
//! live, once forced hop-by-hop (a 1 ns routing epoch makes every
//! cached tunnel miss its epoch bound) — must produce byte- and
//! timestamp-identical captures and identical mark/forward counters.

use ecn_netsim::{
    DropCause, EcnMatch, EcnPolicy, Firewall, FirewallAction, FirewallRule, HostAgent, HostApi,
    LinkProps, Nanos, NodeId, QueueDisc, RouteEntry, Router, Sim, SimConfig,
};
use ecn_wire::{Datagram, Ecn, IcmpMessage, IpProto, Ipv4Header};
use std::net::Ipv4Addr;

const A_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_ADDR: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// host A — r0 — r1 — … — r(hops-1) — host B. Every inter-router link is
/// clean (passive, tunnelable) except an optional override on the
/// forward link `r[at] → r[at+1]`.
fn chain(
    seed: u64,
    flap_period: Nanos,
    hops: usize,
    special: Option<(usize, LinkProps)>,
) -> (Sim, NodeId, NodeId, Vec<NodeId>) {
    let mut sim = Sim::with_config(SimConfig { seed, flap_period });
    let a = sim.add_host("A", A_ADDR);
    let b = sim.add_host("B", B_ADDR);
    let routers: Vec<NodeId> = (0..hops)
        .map(|i| {
            sim.add_router(Router::new(
                format!("r{i}"),
                Ipv4Addr::new(100, 64, i as u8, 1),
                65_000 + i as u32,
            ))
        })
        .collect();
    sim.attach_host(a, routers[0], LinkProps::clean(Nanos::from_millis(1)));
    sim.attach_host(
        b,
        routers[hops - 1],
        LinkProps::clean(Nanos::from_millis(1)),
    );
    for i in 0..hops - 1 {
        let props = match special {
            Some((at, p)) if at == i => p,
            _ => LinkProps::clean(Nanos::from_millis(2)),
        };
        let (fwd, back) = sim.add_duplex(routers[i], routers[i + 1], props);
        sim.route(
            routers[i],
            "192.0.2.0/24".parse().unwrap(),
            RouteEntry::Link(fwd),
        );
        sim.route(
            routers[i + 1],
            "10.0.0.0/24".parse().unwrap(),
            RouteEntry::Link(back),
        );
    }
    (sim, a, b, routers)
}

fn probe(ecn: Ecn, ttl: u8, sport: u16, payload: &[u8]) -> Datagram {
    let mut h = Ipv4Header::probe(A_ADDR, B_ADDR, IpProto::Udp, ecn);
    h.ttl = ttl;
    Datagram::new(
        h,
        &ecn_wire::udp::udp_segment(A_ADDR, B_ADDR, sport, 123, payload),
    )
}

/// Reflects every datagram back to its source, preserving the ECN mark
/// as received — the far end of a round-trip.
struct Echoer;
impl HostAgent for Echoer {
    fn on_datagram(&mut self, api: &mut HostApi<'_>, dgram: &Datagram) {
        let h = dgram.header();
        let reply = Ipv4Header::probe(api.addr(), h.src, h.protocol, h.ecn);
        api.send(Datagram::new(reply, dgram.payload()));
    }
    fn on_timer(&mut self, _api: &mut HostApi<'_>, _token: u64) {}
}

#[test]
fn ect1_round_trips_the_tunnelled_fast_path() {
    // 8 transparent routers: the whole forward chain (and the return
    // chain) is eligible for tunnel collapse. Each codepoint must come
    // back exactly as it was sent — ECT(1) in particular must not be
    // folded onto ECT(0) anywhere in the collapsed path.
    for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
        let (mut sim, a, b, _) = chain(11, Nanos::from_secs(120), 8, None);
        sim.set_agent(b, Box::new(Echoer));
        let cap_a = sim.attach_capture(a);
        let cap_b = sim.attach_capture(b);
        sim.send_from(a, probe(ecn, 64, 40_000, b"round-trip"));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 2, "{ecn:?}: probe and echo");
        let arrived = cap_b.lock().packets()[0].datagram().unwrap();
        assert_eq!(
            arrived.ecn(),
            ecn,
            "{ecn:?} must survive the forward tunnel"
        );
        let cap_a = cap_a.lock();
        let reply = cap_a.packets()[1].datagram().unwrap();
        assert_eq!(reply.src(), B_ADDR);
        assert_eq!(reply.ecn(), ecn, "{ecn:?} must survive the return tunnel");
    }
}

#[test]
fn ect1_is_distinct_from_ect0_at_policy_and_firewall_hops() {
    // A DowngradeEct1 router mid-chain: ECT(1) arrives as ECT(0) (and is
    // counted as a rewrite), ECT(0) passes untouched.
    for (sent, want) in [(Ecn::Ect1, Ecn::Ect0), (Ecn::Ect0, Ecn::Ect0)] {
        let (mut sim, a, b, routers) = chain(12, Nanos::from_secs(120), 6, None);
        sim.set_ecn_policy(routers[3], EcnPolicy::DowngradeEct1);
        let cap_b = sim.attach_capture(b);
        sim.send_from(a, probe(sent, 64, 40_001, b"downgrade"));
        sim.run_to_idle();
        let arrived = cap_b.lock().packets()[0].datagram().unwrap();
        assert_eq!(arrived.ecn(), want, "sent {sent:?}");
        let rewrites = sim.stats.bleached_by_node.get(&routers[3]).copied();
        assert_eq!(
            rewrites,
            (sent == Ecn::Ect1).then_some(1),
            "only ECT(1) is rewritten"
        );
    }
    // An L4S-selective firewall (EcnMatch::Ect1) drops ECT(1) but passes
    // ECT(0) — the matcher must key on the exact codepoint, not on
    // "declares ECN capability".
    for (sent, delivered) in [(Ecn::Ect1, 0u64), (Ecn::Ect0, 1)] {
        let (mut sim, a, _b, routers) = chain(13, Nanos::from_secs(120), 6, None);
        sim.set_firewall(
            routers[3],
            Firewall::single(FirewallRule {
                proto: Some(IpProto::Udp),
                ecn: EcnMatch::Ect1,
                src_within: None,
                action: FirewallAction::Drop,
                probability: 1.0,
            }),
        );
        sim.send_from(a, probe(sent, 64, 40_002, b"l4s-select"));
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, delivered, "sent {sent:?}");
        assert_eq!(
            sim.stats.drops_for(DropCause::Firewall),
            1 - delivered,
            "sent {sent:?}"
        );
    }
}

#[test]
fn tunnel_collapse_does_not_skip_a_markprob_hop() {
    // 10 transparent routers with one always-marking AQM link in the
    // middle: both flanks of the chain are tunnelable, the AQM link is
    // not (`Link::is_passive` is false for MarkProb). Every markable
    // packet must cross it and come out CE; not-ECT must never be
    // touched; already-CE packets are not markable and draw no new mark.
    let aqm = LinkProps {
        queue: QueueDisc::aqm_mark(1.0),
        ..LinkProps::clean(Nanos::from_millis(2))
    };
    let (mut sim, a, b, _) = chain(14, Nanos::from_secs(120), 10, Some((4, aqm)));
    let cap_b = sim.attach_capture(b);
    for (i, (sent, want)) in [
        (Ecn::Ect0, Ecn::Ce),
        (Ecn::Ect1, Ecn::Ce),
        (Ecn::NotEct, Ecn::NotEct),
        (Ecn::Ce, Ecn::Ce),
    ]
    .into_iter()
    .enumerate()
    {
        sim.send_from(a, probe(sent, 64, 41_000 + i as u16, b"aqm-hop"));
        sim.run_to_idle();
        let cap = cap_b.lock();
        let arrived = cap.packets()[i].datagram().unwrap();
        assert_eq!(arrived.ecn(), want, "sent {sent:?}");
    }
    assert_eq!(sim.stats.delivered, 4);
    assert_eq!(
        sim.stats.ce_marked, 2,
        "exactly the two ECT packets drew marks — CE is not re-marked"
    );
}

#[test]
fn tunnel_collapse_does_not_skip_a_codel_bottleneck_hop() {
    // A rate-limited CoDel (l4s_mark) bottleneck mid-chain: a
    // back-to-back ECT(1) train queues behind itself, so every packet
    // but the head-of-line one exceeds the 1 ms sojourn target and is
    // marked. 1 Mbit/s × 1000-byte packets ⇒ 8 ms serialisation each.
    let bottleneck = LinkProps::bottleneck(
        Nanos::from_millis(2),
        1_000_000,
        QueueDisc::l4s_mark(Nanos::from_millis(1)),
    );
    let payload = vec![0u8; 972];
    for (sent, want_marks) in [(Ecn::Ect1, 2u64), (Ecn::NotEct, 0)] {
        let (mut sim, a, b, _) = chain(15, Nanos::from_secs(120), 10, Some((4, bottleneck)));
        let cap_b = sim.attach_capture(b);
        for sport in [42_000u16, 42_001, 42_002] {
            sim.send_from(a, probe(sent, 64, sport, &payload));
        }
        sim.run_to_idle();
        assert_eq!(sim.stats.delivered, 3, "sent {sent:?}");
        assert_eq!(sim.stats.ce_marked, want_marks, "sent {sent:?}");
        let cap = cap_b.lock();
        let marks: Vec<Ecn> = cap
            .packets()
            .iter()
            .map(|p| p.datagram().unwrap().ecn())
            .collect();
        if sent == Ecn::Ect1 {
            assert_eq!(
                marks,
                vec![Ecn::Ect1, Ecn::Ce, Ecn::Ce],
                "all but the head-of-line packet are marked"
            );
        } else {
            assert!(marks.iter().all(|&e| e == Ecn::NotEct));
        }
    }
}

#[test]
fn ttl_expiry_around_the_aqm_hop_answers_from_the_right_router() {
    // Traceroute-style probes through the AQM chain: the tunnel falls
    // back to hop-by-hop when the TTL would expire mid-chain, so the
    // ICMP must come from exactly the router where TTL hit zero — and
    // when the expiring hop lies *past* the AQM link, the quoted header
    // must show the CE mark the packet carried at that point.
    let aqm = LinkProps {
        queue: QueueDisc::aqm_mark(1.0),
        ..LinkProps::clean(Nanos::from_millis(2))
    };
    // TTL 3 expires at r2 (before the AQM link 4→5): quote still ECT(1).
    // TTL 7 expires at r6 (after it): quote shows CE.
    for (ttl, want_src, want_quote) in [
        (3u8, Ipv4Addr::new(100, 64, 2, 1), Ecn::Ect1),
        (7, Ipv4Addr::new(100, 64, 6, 1), Ecn::Ce),
    ] {
        let (mut sim, a, _b, _) = chain(16, Nanos::from_secs(120), 10, Some((4, aqm)));
        let cap_a = sim.attach_capture(a);
        sim.send_from(a, probe(Ecn::Ect1, ttl, 43_000, b"ttl-probe"));
        sim.run_to_idle();
        assert_eq!(sim.stats.icmp_time_exceeded, 1, "ttl {ttl}");
        let cap = cap_a.lock();
        let icmp = cap.packets()[1].datagram().unwrap();
        assert_eq!(icmp.src(), want_src, "ttl {ttl}: wrong expiring router");
        let msg = IcmpMessage::decode(icmp.payload()).unwrap();
        let quoted = Ipv4Header::decode(msg.quoted().unwrap()).unwrap();
        assert_eq!(quoted.ecn, want_quote, "ttl {ttl}: quoted mark");
    }
}

#[test]
fn hop_by_hop_and_tunnelled_runs_agree_byte_for_byte() {
    // The equivalence oracle. A 1 ns routing epoch makes `now <= bound`
    // false for every cached tunnel, so the second run takes the
    // hop-by-hop slow path for every packet; the topology, seed and
    // schedule are otherwise identical. A probabilistic AQM hop sits
    // mid-chain: because tunnelled hops draw no randomness, both runs
    // must consume the per-packet RNG stream identically, so even the
    // coin-flip marks — and every capture byte and timestamp — agree.
    let run = |flap: Nanos| {
        let aqm = LinkProps {
            queue: QueueDisc::aqm_mark(0.5),
            ..LinkProps::clean(Nanos::from_millis(2))
        };
        let (mut sim, a, b, _) = chain(17, flap, 10, Some((4, aqm)));
        let cap_b = sim.attach_capture(b);
        let mut sport = 44_000u16;
        for _ in 0..4 {
            for ecn in [Ecn::Ect0, Ecn::Ect1, Ecn::NotEct, Ecn::Ce] {
                sim.send_from(a, probe(ecn, 64, sport, b"oracle"));
                sport += 1;
                sim.run_to_idle();
            }
        }
        let packets: Vec<(Nanos, Vec<u8>)> = cap_b
            .lock()
            .packets()
            .iter()
            .map(|p| (p.ts, p.bytes.clone()))
            .collect();
        (
            packets,
            sim.stats.delivered,
            sim.stats.forwarded,
            sim.stats.ce_marked,
        )
    };
    let tunnelled = run(Nanos::from_secs(120));
    let hop_by_hop = run(Nanos(1));
    assert_eq!(tunnelled.1, 16, "all packets delivered");
    assert!(
        tunnelled.3 > 0 && tunnelled.3 < 8,
        "the 0.5 AQM must mark some but not all of the 8 ECT packets, got {}",
        tunnelled.3
    );
    assert_eq!(
        tunnelled, hop_by_hop,
        "tunnel collapse changed an observable byte, timestamp or counter"
    );
}
