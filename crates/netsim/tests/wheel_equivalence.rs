//! Queue-equivalence property: the hierarchical timer wheel
//! ([`EventWheel`]) dispatches in exactly the order the simulator's old
//! `BinaryHeap<Scheduled>` did.
//!
//! The reference model below *is* the old implementation: a max-heap of
//! entries whose `Ord` inverts `(at, seq)`, so the earliest timestamp —
//! and, within a timestamp, the lowest sequence number (insertion
//! order) — pops first. The property drives both structures with
//! identical random schedules shaped like the simulator's:
//!
//! - dense same-timestamp ties (link bursts landing on one instant),
//! - in-handler re-scheduling: after a pop, new entries pushed at
//!   exactly the popped timestamp and just after it (the armed-tick
//!   merge-insert path),
//! - `run_until`'s peek-then-stop-short pattern: arm a future tick via
//!   `next_at`, then push entries *before* it (the `front` run),
//! - deltas spanning every wheel region — sub-tick, level 0, level 1,
//!   and past the ~8.6 s horizon into the overflow heap (cascades).
//!
//! Run with `PROPTEST_CASES=256` in the deep-properties CI job.

use ecn_netsim::{EventWheel, Nanos};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The old scheduler entry, verbatim semantics: a max-heap of these pops
/// the minimum `(at, seq)` first.
struct Scheduled {
    at: Nanos,
    seq: u64,
    item: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Both queues under identical drive, with the old heap as the oracle.
struct Pair {
    wheel: EventWheel<u32>,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Timestamp of the last pop — pushes never go into the past,
    /// mirroring the simulator's `schedule` contract.
    now: Nanos,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            wheel: EventWheel::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: Nanos(0),
        }
    }

    fn push(&mut self, delta: u64) {
        let at = Nanos(self.now.0.saturating_add(delta));
        let seq = self.seq;
        self.seq += 1;
        self.wheel.push(at, seq, seq as u32);
        self.heap.push(Scheduled {
            at,
            seq,
            item: seq as u32,
        });
    }

    /// Pop both; assert identical `(at, seq, item)`. Returns false when
    /// both are empty (and asserts they agree on emptiness).
    fn pop_and_check(&mut self) -> bool {
        let got = self.wheel.pop();
        let want = self.heap.pop().map(|s| (s.at, s.seq, s.item));
        assert_eq!(got, want, "wheel diverged from the heap oracle");
        match got {
            Some((at, _, _)) => {
                self.now = at;
                true
            }
            None => false,
        }
    }
}

/// One drive step: how to grow/drain the schedule next.
#[derive(Debug, Clone)]
enum Op {
    /// Push a batch of entries at `now + delta` each.
    Push(Vec<u64>),
    /// Pop once; then, as an in-handler agent would, push `at_now` ties
    /// at the popped timestamp and `later` entries after it.
    PopThenSchedule { at_now: u8, later: Vec<u64> },
    /// Arm the next tick via `next_at` (the `run_until` peek), then push
    /// short deltas that may land *before* the armed tick.
    PeekThenPush(Vec<u64>),
}

const TICK: u64 = 1 << 17; // must match wheel.rs TICK_SHIFT

/// Deltas biased across every region of the wheel: zero (exact ties),
/// sub-tick, level-0 window, level-1 window, and overflow (> ~8.6 s).
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => Just(0u64),
        8 => 1..TICK,
        8 => TICK..TICK * 256,
        4 => TICK * 256..TICK * 256 * 256,
        1 => TICK * 256 * 256..TICK * 256 * 512,
    ]
}

/// Megapool time scales: most deltas land in the overflow heap (past the
/// ~8.6 s level-1 horizon), many of them several horizons out, so a
/// drain cascades overflow → level 1 → level 0 repeatedly. This is the
/// regime a 10⁵-server campaign calendar lives in (batch 2 sits hours of
/// virtual time past batch 1).
fn overflow_heavy_delta_strategy() -> impl Strategy<Value = u64> {
    const HORIZON: u64 = TICK * 256 * 256;
    prop_oneof![
        1 => Just(0u64),
        2 => 1..TICK * 256,
        6 => HORIZON..HORIZON * 4,
        4 => HORIZON * 4..HORIZON * 64,
        2 => HORIZON * 64..HORIZON * 1024,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(delta_strategy(), 1..8).prop_map(Op::Push),
        3 => (0u8..4, proptest::collection::vec(delta_strategy(), 0..4))
            .prop_map(|(at_now, later)| Op::PopThenSchedule { at_now, later }),
        1 => proptest::collection::vec(0..TICK * 4, 1..4).prop_map(Op::PeekThenPush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    ))]

    #[test]
    fn wheel_matches_heap_under_random_schedules(ops in proptest::collection::vec(op_strategy(), 1..64)) {
        let mut pair = Pair::new();
        for op in ops {
            match op {
                Op::Push(deltas) => {
                    for d in deltas {
                        pair.push(d);
                    }
                }
                Op::PopThenSchedule { at_now, later } => {
                    if pair.pop_and_check() {
                        // in-handler scheduling: ties at the popped
                        // instant, then strictly later work
                        for _ in 0..at_now {
                            pair.push(0);
                        }
                        for d in later {
                            pair.push(d.max(1));
                        }
                    }
                }
                Op::PeekThenPush(deltas) => {
                    // arm the minimum tick (peek path), then push
                    // entries that may precede it
                    let _ = pair.wheel.next_at();
                    for d in deltas {
                        pair.push(d);
                    }
                }
            }
        }
        // full drain must agree entry-for-entry
        while pair.pop_and_check() {}
        prop_assert!(pair.wheel.is_empty());
    }

    #[test]
    fn dense_tie_storms_preserve_insertion_order(
        batches in proptest::collection::vec((delta_strategy(), 2u8..32), 1..16)
    ) {
        // worst case for a bucketed structure: many entries on one
        // instant, interleaved with pops — order must stay pure FIFO
        // within each timestamp
        let mut pair = Pair::new();
        for (delta, n) in batches {
            for _ in 0..n {
                pair.push(delta);
            }
            pair.pop_and_check();
        }
        while pair.pop_and_check() {}
    }

    #[test]
    fn overflow_heavy_schedules_cascade_identically(
        ops in proptest::collection::vec(
            prop_oneof![
                4 => proptest::collection::vec(overflow_heavy_delta_strategy(), 1..8)
                    .prop_map(Op::Push),
                3 => (0u8..4, proptest::collection::vec(overflow_heavy_delta_strategy(), 0..4))
                    .prop_map(|(at_now, later)| Op::PopThenSchedule { at_now, later }),
                2 => proptest::collection::vec(overflow_heavy_delta_strategy(), 1..4)
                    .prop_map(Op::PeekThenPush),
            ],
            1..48,
        )
    ) {
        // megapool calendars park nearly everything in the overflow heap;
        // draining must cascade through both wheel levels in exactly the
        // oracle's order, including pushes landing before an armed tick
        // while the overflow still holds a deep backlog
        let mut pair = Pair::new();
        for op in ops {
            match op {
                Op::Push(deltas) => {
                    for d in deltas {
                        pair.push(d);
                    }
                }
                Op::PopThenSchedule { at_now, later } => {
                    if pair.pop_and_check() {
                        for _ in 0..at_now {
                            pair.push(0);
                        }
                        for d in later {
                            pair.push(d.max(1));
                        }
                    }
                }
                Op::PeekThenPush(deltas) => {
                    let _ = pair.wheel.next_at();
                    for d in deltas {
                        pair.push(d);
                    }
                }
            }
        }
        while pair.pop_and_check() {}
        prop_assert!(pair.wheel.is_empty());
    }
}

/// Level-1 horizon: TICK × 256 slots × 256 slots (~8.6 virtual seconds).
const HORIZON: u64 = TICK * 256 * 256;

#[test]
fn multi_horizon_entries_cascade_through_both_levels() {
    // Entries 1, 2, 5, 60, and 1000 horizons out (a megapool batch-2
    // boundary sits hundreds of horizons past batch 1). Each drain step
    // forces overflow → level-1 → level-0 cascades; order must match the
    // heap exactly, including the tie pair at 5 horizons.
    let mut pair = Pair::new();
    for d in [
        HORIZON - 1,
        HORIZON,
        HORIZON + 1,
        2 * HORIZON,
        5 * HORIZON,
        5 * HORIZON,
        60 * HORIZON,
        1000 * HORIZON,
    ] {
        pair.push(d);
    }
    while pair.pop_and_check() {}
    assert!(pair.wheel.is_empty());
}

#[test]
fn pushes_before_the_armed_tick_with_overflow_backlog() {
    // Arm the wheel on a far-overflow entry (the run_until peek), then
    // push work that lands *before* the armed tick — sub-tick, level-0,
    // level-1, and nearer-overflow. The early entries must all dispatch
    // first, and the backlog must still cascade correctly afterwards.
    let mut pair = Pair::new();
    pair.push(700 * HORIZON);
    pair.push(900 * HORIZON);
    let armed = pair.wheel.next_at();
    assert!(armed.is_some(), "backlog must arm the wheel");
    for d in [
        0,
        1,
        TICK / 2,
        TICK * 3,
        TICK * 300,
        HORIZON / 2,
        3 * HORIZON,
    ] {
        pair.push(d);
    }
    // interleave draining with fresh pre-tick pushes (in-handler style)
    assert!(pair.pop_and_check());
    pair.push(TICK + 1);
    pair.push(2 * HORIZON);
    while pair.pop_and_check() {}
    assert!(pair.wheel.is_empty());
}
