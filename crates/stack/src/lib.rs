//! # ecn-stack — host network stack over the simulator
//!
//! Each simulated host runs this stack as its [`ecn_netsim::HostAgent`]:
//!
//! * **UDP sockets** with per-datagram ECN marking and TTL control — the
//!   raw-socket surface the measurement study needs (its probes are NTP
//!   requests in not-ECT and ECT(0)-marked UDP packets, and TTL-limited
//!   traceroute probes),
//! * a **TCP state machine** ([`tcp::TcpConn`]) with RFC 3168 ECN
//!   negotiation (ECN-setup SYN / SYN-ACK), the ECE/CWR feedback loop,
//!   retransmission, and teardown,
//! * **ICMP** delivery (time-exceeded and destination-unreachable with
//!   quoted datagrams arrive in an inbox; echo requests are answered),
//! * **services** ([`services::UdpService`] / [`services::TcpService`]) so
//!   server hosts can run NTP/HTTP/DNS responders in-sim,
//! * **availability schedules** ([`availability`]) modelling volunteer
//!   servers that flap or leave the pool.
//!
//! External code (the prober) drives a host through [`HostHandle`] while
//! stepping the simulator — mirroring how a real measurement tool wraps
//! raw sockets.

pub mod availability;
pub mod services;
pub mod stack;
pub mod tcp;
pub mod validator;

pub use availability::{Availability, AvailabilityModel};
pub use services::{TcpService, TcpServiceAction, UdpService};
pub use stack::{
    install, ConnId, ConnSnapshot, HostHandle, IcmpReceived, StackAgent, StackConfig, StackShared,
    UdpReceived,
};
pub use tcp::{CloseReason, EcnMode, Emit, HandshakeRecord, TcpConn, TcpState, MSS};
pub use validator::{
    EcnValidator, FailureKind, ValidationOutcome, ValidatorParams, ValidatorState,
};
