//! A compact TCP state machine with RFC 3168 ECN support.
//!
//! Scope: everything the measurement study and its HTTP probes need —
//! three-way handshake with ECN negotiation, in-order data transfer with
//! cumulative ACKs, RTO-based retransmission, the ECE/CWR congestion
//! feedback loop, RST handling, and orderly FIN teardown. Deliberately not
//! implemented (the probes cannot observe them): SACK, out-of-order
//! reassembly, window scaling beyond the advertised static window, Nagle,
//! delayed ACKs, TIME_WAIT timers.
//!
//! The machine is *pure*: inputs are segments/timeouts/user calls, outputs
//! are [`Emit`] records. The stack agent turns emits into checksummed wire
//! segments; tests drive the machine directly.

use ecn_netsim::Nanos;
use ecn_wire::{Ecn, TcpFlags, TcpHeader, TcpOption};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Maximum segment size used by both endpoints.
pub const MSS: usize = 1460;
/// Initial retransmission timeout.
pub const INITIAL_RTO: Nanos = Nanos(1_000_000_000);
/// Retransmission attempts before the connection is abandoned.
pub const MAX_RETRIES: u32 = 5;
/// Static advertised receive window.
pub const RECV_WINDOW: u16 = 65_535;

/// Connection endpoint state (RFC 793 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpState {
    /// Client: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Server: SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait1,
    /// Our FIN ACKed, awaiting peer's FIN.
    FinWait2,
    /// Peer sent FIN; we ACKed it and may still send.
    CloseWait,
    /// We sent FIN after CloseWait.
    LastAck,
    /// Fully closed (also used instead of TIME_WAIT).
    Closed,
}

/// Why a connection ended up `Closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseReason {
    /// Normal FIN handshake completion.
    Graceful,
    /// Peer sent RST.
    Reset,
    /// Retransmissions exhausted.
    TimedOut,
    /// Locally aborted.
    Aborted,
}

/// How this endpoint negotiates ECN (RFC 3168 §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnMode {
    /// Never request or accept ECN.
    Off,
    /// Client: send an ECN-setup SYN. Server: answer an ECN-setup SYN with
    /// an ECN-setup SYN-ACK.
    On,
    /// Broken middlebox/server behaviour observed in the wild: reflect the
    /// SYN's ECE+CWR onto the SYN-ACK. RFC 3168 says such a SYN-ACK is NOT
    /// ECN-setup, and compliant clients must not use ECN on the connection.
    ReflectFlags,
}

/// An outgoing segment produced by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emit {
    /// Header to send (checksum filled in later by the stack).
    pub header: TcpHeader,
    /// Segment payload.
    pub payload: Vec<u8>,
    /// IP-level ECN codepoint for this segment: data segments on an
    /// ECN-capable connection are ECT(0); SYNs, pure ACKs and RSTs are
    /// not-ECT (RFC 3168 §6.1.1).
    pub ip_ecn: Ecn,
}

/// Facts the prober wants about the handshake.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandshakeRecord {
    /// Flags observed on the SYN-ACK (client side).
    pub syn_ack_flags: Option<TcpFlags>,
    /// Did we send an ECN-setup SYN?
    pub requested_ecn: bool,
    /// Was the SYN-ACK a valid ECN-setup SYN-ACK (SYN+ACK+ECE, no CWR)?
    pub got_ecn_setup_syn_ack: bool,
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct TcpConn {
    /// Local/remote identification (used by the agent to build packets).
    pub local: (Ipv4Addr, u16),
    /// Remote address/port.
    pub remote: (Ipv4Addr, u16),
    /// Current state.
    pub state: TcpState,
    /// Why the connection closed, once `state == Closed`.
    pub close_reason: Option<CloseReason>,
    /// ECN mode configured for this endpoint.
    pub ecn_mode: EcnMode,
    /// Did both ends agree on ECN (data flows as ECT(0))?
    pub ecn_negotiated: bool,
    /// Handshake observations.
    pub handshake: HandshakeRecord,

    // send side
    snd_una: u32,
    snd_nxt: u32,
    send_buf: VecDeque<u8>,
    /// Sequence number of the first byte of `send_buf`.
    send_buf_seq: u32,
    fin_queued: bool,
    fin_seq: Option<u32>,
    peer_window: u16,
    cwnd: usize,
    /// Set when an ECE arrives: next data segment carries CWR.
    cwr_pending: bool,
    /// Measurement hook (Kühlewind-style ECN usability probe): send data
    /// segments CE-marked instead of ECT(0), to test whether the peer's
    /// ECE feedback loop works.
    pub force_ce_data: bool,
    /// Congestion responses taken (one per ECE episode).
    pub congestion_events: u32,

    // receive side
    rcv_nxt: u32,
    recv_buf: Vec<u8>,
    /// Peer sent FIN and we consumed it.
    peer_fin: bool,
    /// A CE-marked data segment arrived and has not yet been CWR-confirmed:
    /// set ECE on outgoing ACKs (RFC 3168 §6.1.3).
    ece_pending: bool,
    /// Count of CE-marked segments received (prober statistic).
    pub ce_received: u32,

    // timers
    rto: Nanos,
    retries: u32,
    /// True when a retransmission timer should be armed.
    pub timer_armed: bool,
}

impl TcpConn {
    /// Open a client connection: returns the connection and the SYN to send.
    pub fn connect(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        ecn_mode: EcnMode,
    ) -> (TcpConn, Emit) {
        let mut conn = TcpConn::new(local, remote, iss, ecn_mode, TcpState::SynSent);
        conn.handshake.requested_ecn = matches!(ecn_mode, EcnMode::On);
        let flags = if conn.handshake.requested_ecn {
            TcpFlags::ecn_setup_syn()
        } else {
            TcpFlags::SYN
        };
        let syn = conn.emit(flags, iss, 0, vec![], Ecn::NotEct);
        conn.snd_nxt = iss.wrapping_add(1);
        conn.timer_armed = true;
        (conn, syn)
    }

    /// Create a server endpoint from a received SYN. Returns the endpoint
    /// and the SYN-ACK.
    pub fn accept(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        syn: &TcpHeader,
        ecn_mode: EcnMode,
    ) -> (TcpConn, Emit) {
        let mut conn = TcpConn::new(local, remote, iss, ecn_mode, TcpState::SynRcvd);
        conn.rcv_nxt = syn.seq.wrapping_add(1);
        conn.peer_window = syn.window;
        let client_requested = syn.flags.is_ecn_setup_syn();
        let flags = match (ecn_mode, client_requested) {
            (EcnMode::On, true) => {
                conn.ecn_negotiated = true;
                TcpFlags::ecn_setup_syn_ack()
            }
            (EcnMode::ReflectFlags, _) => {
                // Buggy reflection: copy ECE/CWR bits straight back.
                let mut f = TcpFlags::SYN | TcpFlags::ACK;
                if syn.flags.contains(TcpFlags::ECE) {
                    f = f | TcpFlags::ECE;
                }
                if syn.flags.contains(TcpFlags::CWR) {
                    f = f | TcpFlags::CWR;
                }
                f
            }
            _ => TcpFlags::SYN | TcpFlags::ACK,
        };
        let syn_ack = conn.emit(flags, iss, conn.rcv_nxt, vec![], Ecn::NotEct);
        conn.snd_nxt = iss.wrapping_add(1);
        conn.timer_armed = true;
        (conn, syn_ack)
    }

    fn new(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        ecn_mode: EcnMode,
        state: TcpState,
    ) -> TcpConn {
        TcpConn {
            local,
            remote,
            state,
            close_reason: None,
            ecn_mode,
            ecn_negotiated: false,
            handshake: HandshakeRecord::default(),
            snd_una: iss,
            snd_nxt: iss,
            send_buf: VecDeque::new(),
            send_buf_seq: iss.wrapping_add(1),
            fin_queued: false,
            fin_seq: None,
            peer_window: RECV_WINDOW,
            cwnd: 10 * MSS,
            cwr_pending: false,
            force_ce_data: false,
            congestion_events: 0,
            rcv_nxt: 0,
            recv_buf: Vec::new(),
            peer_fin: false,
            ece_pending: false,
            ce_received: 0,
            rto: INITIAL_RTO,
            retries: 0,
            timer_armed: false,
        }
    }

    fn emit(&self, flags: TcpFlags, seq: u32, ack: u32, payload: Vec<u8>, ip_ecn: Ecn) -> Emit {
        let options = if flags.contains(TcpFlags::SYN) {
            vec![TcpOption::Mss(MSS as u16)]
        } else {
            vec![]
        };
        Emit {
            header: TcpHeader {
                src_port: self.local.1,
                dst_port: self.remote.1,
                seq,
                ack,
                flags,
                window: RECV_WINDOW,
                urgent: 0,
                options,
            },
            payload,
            ip_ecn,
        }
    }

    fn ack_flags(&self) -> TcpFlags {
        if self.ece_pending && self.ecn_negotiated {
            TcpFlags::ACK | TcpFlags::ECE
        } else {
            TcpFlags::ACK
        }
    }

    /// Bytes received in order so far (drained by the reader).
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_buf)
    }

    /// Peek at received bytes without draining.
    pub fn received(&self) -> &[u8] {
        &self.recv_buf
    }

    /// Has the peer half-closed (FIN consumed)?
    pub fn peer_closed(&self) -> bool {
        self.peer_fin
    }

    /// Queue application data; returns segments to send now.
    pub fn send(&mut self, data: &[u8], now: Nanos) -> Vec<Emit> {
        let mut out = Vec::new();
        self.send_into(data, now, &mut out);
        out
    }

    /// [`TcpConn::send`], appending into a caller-owned buffer — the
    /// stack's hot path reuses one scratch vector across all connections.
    pub fn send_into(&mut self, data: &[u8], now: Nanos, out: &mut Vec<Emit>) {
        let _ = now;
        if matches!(
            self.state,
            TcpState::Closed | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::LastAck
        ) {
            return;
        }
        self.send_buf.extend(data);
        self.pump_into(out);
    }

    /// Begin an orderly close; returns segments (possibly a FIN) to send.
    pub fn close(&mut self) -> Vec<Emit> {
        let mut out = Vec::new();
        self.close_into(&mut out);
        out
    }

    /// [`TcpConn::close`], appending into a caller-owned buffer.
    pub fn close_into(&mut self, out: &mut Vec<Emit>) {
        match self.state {
            TcpState::Closed | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::LastAck => {}
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                self.close_reason = Some(CloseReason::Aborted);
                self.timer_armed = false;
            }
            _ => {
                self.fin_queued = true;
                self.pump_into(out);
            }
        }
    }

    /// Abort with RST.
    pub fn abort(&mut self) -> Vec<Emit> {
        let mut out = Vec::new();
        self.abort_into(&mut out);
        out
    }

    /// [`TcpConn::abort`], appending into a caller-owned buffer.
    pub fn abort_into(&mut self, out: &mut Vec<Emit>) {
        let rst = self.emit(
            TcpFlags::RST | TcpFlags::ACK,
            self.snd_nxt,
            self.rcv_nxt,
            vec![],
            Ecn::NotEct,
        );
        self.state = TcpState::Closed;
        self.close_reason = Some(CloseReason::Aborted);
        self.timer_armed = false;
        out.push(rst);
    }

    /// Push queued data/FIN into the window.
    fn pump_into(&mut self, out: &mut Vec<Emit>) {
        let produced_from = out.len();
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::SynRcvd
        ) {
            return;
        }
        // SynRcvd holds data until the handshake completes.
        if self.state == TcpState::SynRcvd {
            return;
        }
        let window = (self.peer_window as usize).min(self.cwnd).max(MSS);
        loop {
            let in_flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            let buffered_from = self.snd_nxt.wrapping_sub(self.send_buf_seq) as usize;
            let available = self.send_buf.len().saturating_sub(buffered_from);
            if available == 0 || in_flight >= window {
                break;
            }
            let take = available.min(MSS).min(window - in_flight);
            let chunk: Vec<u8> = self
                .send_buf
                .iter()
                .skip(buffered_from)
                .take(take)
                .copied()
                .collect();
            let mut flags = self.ack_flags() | TcpFlags::PSH;
            if self.cwr_pending && self.ecn_negotiated {
                flags = flags | TcpFlags::CWR;
                self.cwr_pending = false;
            }
            let ecn = if self.ecn_negotiated {
                if self.force_ce_data {
                    Ecn::Ce
                } else {
                    Ecn::Ect0
                }
            } else {
                Ecn::NotEct
            };
            out.push(self.emit(flags, self.snd_nxt, self.rcv_nxt, chunk, ecn));
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
        }
        // FIN once everything queued is sent.
        if self.fin_queued && self.fin_seq.is_none() {
            let buffered_from = self.snd_nxt.wrapping_sub(self.send_buf_seq) as usize;
            if buffered_from >= self.send_buf.len() {
                let fin = self.emit(
                    self.ack_flags() | TcpFlags::FIN,
                    self.snd_nxt,
                    self.rcv_nxt,
                    vec![],
                    Ecn::NotEct,
                );
                self.fin_seq = Some(self.snd_nxt);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = match self.state {
                    TcpState::CloseWait => TcpState::LastAck,
                    _ => TcpState::FinWait1,
                };
                out.push(fin);
            }
        }
        if out.len() > produced_from {
            self.timer_armed = true;
        }
    }

    /// Handle an arriving segment. `ip_ecn` is the ECN codepoint of the IP
    /// packet that carried it.
    pub fn on_segment(&mut self, hdr: &TcpHeader, payload: &[u8], ip_ecn: Ecn) -> Vec<Emit> {
        let mut out = Vec::new();
        self.on_segment_into(hdr, payload, ip_ecn, &mut out);
        out
    }

    /// [`TcpConn::on_segment`], appending into a caller-owned buffer.
    pub fn on_segment_into(
        &mut self,
        hdr: &TcpHeader,
        payload: &[u8],
        ip_ecn: Ecn,
        out: &mut Vec<Emit>,
    ) {
        if self.state == TcpState::Closed {
            return;
        }
        // RST: kill the connection (simplified acceptance check).
        if hdr.flags.contains(TcpFlags::RST) {
            self.state = TcpState::Closed;
            self.close_reason = Some(CloseReason::Reset);
            self.timer_armed = false;
            return;
        }

        match self.state {
            TcpState::SynSent => self.on_segment_syn_sent(hdr, out),
            _ => self.on_segment_common(hdr, payload, ip_ecn, out),
        }
    }

    fn on_segment_syn_sent(&mut self, hdr: &TcpHeader, out: &mut Vec<Emit>) {
        if !hdr.flags.contains(TcpFlags::SYN) || !hdr.flags.contains(TcpFlags::ACK) {
            return;
        }
        if hdr.ack != self.snd_nxt {
            return; // not for our SYN
        }
        self.handshake.syn_ack_flags = Some(hdr.flags);
        self.handshake.got_ecn_setup_syn_ack = hdr.flags.is_ecn_setup_syn_ack();
        // RFC 3168: ECN is in force only after ECN-setup SYN + ECN-setup
        // SYN-ACK. A reflected ECE+CWR SYN-ACK does not count.
        self.ecn_negotiated = self.handshake.requested_ecn && self.handshake.got_ecn_setup_syn_ack;
        self.rcv_nxt = hdr.seq.wrapping_add(1);
        self.snd_una = hdr.ack;
        self.peer_window = hdr.window;
        self.state = TcpState::Established;
        self.retries = 0;
        self.rto = INITIAL_RTO;
        self.timer_armed = false;
        let ack = self.emit(
            TcpFlags::ACK,
            self.snd_nxt,
            self.rcv_nxt,
            vec![],
            Ecn::NotEct,
        );
        out.push(ack);
        self.pump_into(out);
    }

    fn on_segment_common(
        &mut self,
        hdr: &TcpHeader,
        payload: &[u8],
        ip_ecn: Ecn,
        out: &mut Vec<Emit>,
    ) {
        // Handshake completion on the server.
        if self.state == TcpState::SynRcvd
            && hdr.flags.contains(TcpFlags::ACK)
            && hdr.ack == self.snd_nxt
        {
            self.state = TcpState::Established;
            self.retries = 0;
            self.rto = INITIAL_RTO;
            self.timer_armed = false;
            self.snd_una = hdr.ack;
        }

        // ACK processing.
        if hdr.flags.contains(TcpFlags::ACK) {
            let acked = hdr.ack.wrapping_sub(self.snd_una);
            let outstanding = self.snd_nxt.wrapping_sub(self.snd_una);
            if acked > 0 && acked <= outstanding {
                self.snd_una = hdr.ack;
                // Trim the send buffer below snd_una.
                let drop_n = (self.snd_una.wrapping_sub(self.send_buf_seq) as usize)
                    .min(self.send_buf.len());
                self.send_buf.drain(..drop_n);
                self.send_buf_seq = self.send_buf_seq.wrapping_add(drop_n as u32);
                self.retries = 0;
                self.rto = INITIAL_RTO;
                self.timer_armed = self.snd_una != self.snd_nxt;
                // FIN acked?
                if let Some(fin_seq) = self.fin_seq {
                    if self.snd_una == fin_seq.wrapping_add(1) {
                        match self.state {
                            TcpState::FinWait1 => self.state = TcpState::FinWait2,
                            TcpState::LastAck => {
                                self.state = TcpState::Closed;
                                self.close_reason = Some(CloseReason::Graceful);
                                self.timer_armed = false;
                            }
                            _ => {}
                        }
                    }
                }
            }
            self.peer_window = hdr.window;
            // ECE: peer is echoing congestion — respond once per episode.
            if hdr.flags.contains(TcpFlags::ECE) && self.ecn_negotiated && !self.cwr_pending {
                self.cwnd = (self.cwnd / 2).max(MSS);
                self.cwr_pending = true;
                self.congestion_events += 1;
            }
        }

        // Data processing (in-order only).
        let mut advanced = false;
        if !payload.is_empty() {
            if hdr.seq == self.rcv_nxt {
                self.recv_buf.extend_from_slice(payload);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
                advanced = true;
                if ip_ecn == Ecn::Ce {
                    self.ce_received += 1;
                    if self.ecn_negotiated {
                        self.ece_pending = true;
                    }
                }
                // CWR from peer ends the ECE episode.
                if hdr.flags.contains(TcpFlags::CWR) {
                    self.ece_pending = false;
                }
            }
            // Out-of-order: fall through and ACK rcv_nxt (dup ACK).
            out.push(self.emit(
                self.ack_flags(),
                self.snd_nxt,
                self.rcv_nxt,
                vec![],
                Ecn::NotEct,
            ));
        }

        // FIN processing (only when in order).
        if hdr.flags.contains(TcpFlags::FIN) {
            let fin_seq = hdr.seq.wrapping_add(payload.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin = true;
                self.state = match self.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait1 => TcpState::Closed, // simultaneous-ish; simplified
                    TcpState::FinWait2 => TcpState::Closed,
                    other => other,
                };
                if self.state == TcpState::Closed {
                    self.close_reason = Some(CloseReason::Graceful);
                    self.timer_armed = false;
                }
                out.push(self.emit(
                    self.ack_flags(),
                    self.snd_nxt,
                    self.rcv_nxt,
                    vec![],
                    Ecn::NotEct,
                ));
            }
        }

        let _ = advanced;
        self.pump_into(out);
    }

    /// Retransmission timeout fired. Returns segments to resend.
    pub fn on_rto(&mut self) -> Vec<Emit> {
        let mut out = Vec::new();
        self.on_rto_into(&mut out);
        out
    }

    /// [`TcpConn::on_rto`], appending into a caller-owned buffer.
    pub fn on_rto_into(&mut self, out: &mut Vec<Emit>) {
        if !self.timer_armed || self.state == TcpState::Closed {
            return;
        }
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            self.state = TcpState::Closed;
            self.close_reason = Some(CloseReason::TimedOut);
            self.timer_armed = false;
            return;
        }
        self.rto = Nanos(self.rto.0.saturating_mul(2));
        match self.state {
            TcpState::SynSent => {
                let flags = if self.handshake.requested_ecn {
                    TcpFlags::ecn_setup_syn()
                } else {
                    TcpFlags::SYN
                };
                out.push(self.emit(flags, self.snd_una, 0, vec![], Ecn::NotEct));
            }
            TcpState::SynRcvd => {
                let flags = if self.ecn_negotiated {
                    TcpFlags::ecn_setup_syn_ack()
                } else {
                    TcpFlags::SYN | TcpFlags::ACK
                };
                out.push(self.emit(flags, self.snd_una, self.rcv_nxt, vec![], Ecn::NotEct));
            }
            _ => {
                // Retransmit from snd_una: one segment of data, or the FIN.
                if self.fin_seq == Some(self.snd_una) {
                    out.push(self.emit(
                        self.ack_flags() | TcpFlags::FIN,
                        self.snd_una,
                        self.rcv_nxt,
                        vec![],
                        Ecn::NotEct,
                    ));
                    return;
                }
                let offset = self.snd_una.wrapping_sub(self.send_buf_seq) as usize;
                if offset >= self.send_buf.len() {
                    self.timer_armed = false;
                    return;
                }
                let take = (self.send_buf.len() - offset).min(MSS);
                let chunk: Vec<u8> = self
                    .send_buf
                    .iter()
                    .skip(offset)
                    .take(take)
                    .copied()
                    .collect();
                let ecn = if self.ecn_negotiated {
                    Ecn::Ect0
                } else {
                    Ecn::NotEct
                };
                let mut flags = self.ack_flags() | TcpFlags::PSH;
                if self.cwr_pending && self.ecn_negotiated {
                    flags = flags | TcpFlags::CWR;
                    self.cwr_pending = false;
                }
                out.push(self.emit(flags, self.snd_una, self.rcv_nxt, chunk, ecn));
            }
        }
    }

    /// Current RTO (the agent arms the timer with this).
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// Current congestion window (test/diagnostic hook).
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Is all sent data acknowledged?
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.snd_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
    const S: (Ipv4Addr, u16) = (Ipv4Addr::new(192, 0, 2, 80), 80);

    /// Pipe segments between two endpoints until both go quiet.
    fn exchange(a: &mut TcpConn, b: &mut TcpConn, mut pending_ab: Vec<Emit>) {
        let mut pending_ba: Vec<Emit> = vec![];
        for _ in 0..64 {
            if pending_ab.is_empty() && pending_ba.is_empty() {
                break;
            }
            let mut next_ba = vec![];
            for e in pending_ab.drain(..) {
                next_ba.extend(b.on_segment(&e.header, &e.payload, e.ip_ecn));
            }
            let mut next_ab = vec![];
            for e in pending_ba.drain(..) {
                next_ab.extend(a.on_segment(&e.header, &e.payload, e.ip_ecn));
            }
            pending_ba = next_ba;
            pending_ab = next_ab;
        }
    }

    fn open_pair(client_mode: EcnMode, server_mode: EcnMode) -> (TcpConn, TcpConn) {
        let (mut c, syn) = TcpConn::connect(C, S, 1000, client_mode);
        let (mut s, syn_ack) = TcpConn::accept(S, C, 9000, &syn.header, server_mode);
        let acks = c.on_segment(&syn_ack.header, &[], syn_ack.ip_ecn);
        for e in acks {
            s.on_segment(&e.header, &e.payload, e.ip_ecn);
        }
        (c, s)
    }

    #[test]
    fn ecn_handshake_negotiates_when_both_sides_on() {
        let (c, s) = open_pair(EcnMode::On, EcnMode::On);
        assert_eq!(c.state, TcpState::Established);
        assert_eq!(s.state, TcpState::Established);
        assert!(c.ecn_negotiated);
        assert!(s.ecn_negotiated);
        assert!(c.handshake.got_ecn_setup_syn_ack);
    }

    #[test]
    fn plain_server_declines_ecn() {
        let (c, s) = open_pair(EcnMode::On, EcnMode::Off);
        assert_eq!(c.state, TcpState::Established);
        assert!(!c.ecn_negotiated);
        assert!(!s.ecn_negotiated);
        assert_eq!(
            c.handshake.syn_ack_flags,
            Some(TcpFlags::SYN | TcpFlags::ACK)
        );
    }

    #[test]
    fn reflected_flags_are_not_ecn_setup() {
        let (c, _s) = open_pair(EcnMode::On, EcnMode::ReflectFlags);
        assert_eq!(c.state, TcpState::Established);
        assert!(
            !c.ecn_negotiated,
            "reflected ECE+CWR must not negotiate ECN"
        );
        assert!(!c.handshake.got_ecn_setup_syn_ack);
        let flags = c.handshake.syn_ack_flags.unwrap();
        assert!(flags.contains(TcpFlags::ECE) && flags.contains(TcpFlags::CWR));
    }

    #[test]
    fn client_off_never_requests() {
        let (mut c, syn) = TcpConn::connect(C, S, 5, EcnMode::Off);
        assert!(!syn.header.flags.contains(TcpFlags::ECE));
        assert!(!syn.header.flags.contains(TcpFlags::CWR));
        let (_s, syn_ack) = TcpConn::accept(S, C, 7, &syn.header, EcnMode::On);
        // server with ECN on cannot negotiate if client didn't ask
        assert!(!syn_ack.header.flags.contains(TcpFlags::ECE));
        let _ = c.on_segment(&syn_ack.header, &[], Ecn::NotEct);
        assert!(!c.ecn_negotiated);
    }

    #[test]
    fn data_transfer_roundtrip() {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        let req = c.send(b"GET / HTTP/1.1\r\n\r\n", Nanos::ZERO);
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].ip_ecn, Ecn::Ect0, "data on ECN connection is ECT(0)");
        exchange(&mut c, &mut s, req);
        assert_eq!(s.take_received(), b"GET / HTTP/1.1\r\n\r\n");
        let rsp = s.send(b"HTTP/1.1 302 Found\r\n\r\n", Nanos::ZERO);
        exchange(&mut s, &mut c, rsp);
        assert_eq!(c.take_received(), b"HTTP/1.1 302 Found\r\n\r\n");
        assert!(c.all_acked() && s.all_acked());
    }

    #[test]
    fn non_ecn_connection_sends_not_ect_data() {
        let (mut c, _s) = open_pair(EcnMode::Off, EcnMode::Off);
        let out = c.send(b"x", Nanos::ZERO);
        assert_eq!(out[0].ip_ecn, Ecn::NotEct);
    }

    #[test]
    fn large_send_segments_at_mss() {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        let data = vec![7u8; 3 * MSS + 100];
        let out = c.send(&data, Nanos::ZERO);
        assert_eq!(out.len(), 4);
        assert!(out[..3].iter().all(|e| e.payload.len() == MSS));
        assert_eq!(out[3].payload.len(), 100);
        exchange(&mut c, &mut s, out);
        assert_eq!(s.take_received(), data);
    }

    #[test]
    fn ce_mark_triggers_ece_then_cwr_clears_it() {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        // Client sends data that gets CE-marked in flight.
        let mut seg = c.send(b"media frame", Nanos::ZERO);
        assert_eq!(seg.len(), 1);
        let mut e = seg.remove(0);
        e.ip_ecn = Ecn::Ce; // router marks it
        let acks = s.on_segment(&e.header, &e.payload, e.ip_ecn);
        assert_eq!(s.ce_received, 1);
        let ack = &acks[0];
        assert!(ack.header.flags.contains(TcpFlags::ECE), "ACK echoes ECE");
        // Client reacts: cwnd halves, next data carries CWR.
        let cwnd_before = c.cwnd();
        let more = c.on_segment(&ack.header, &[], ack.ip_ecn);
        assert!(c.cwnd() < cwnd_before);
        assert_eq!(c.congestion_events, 1);
        let _ = more;
        let next = c.send(b"next frame", Nanos::ZERO);
        assert!(next[0].header.flags.contains(TcpFlags::CWR));
        // Server sees CWR and stops setting ECE.
        let acks2 = s.on_segment(&next[0].header, &next[0].payload, next[0].ip_ecn);
        assert!(!acks2[0].header.flags.contains(TcpFlags::ECE));
    }

    #[test]
    fn rto_retransmits_syn_then_gives_up() {
        let (mut c, _syn) = TcpConn::connect(C, S, 1, EcnMode::On);
        for i in 0..MAX_RETRIES {
            let r = c.on_rto();
            assert_eq!(r.len(), 1, "retry {i}");
            assert!(r[0].header.flags.is_ecn_setup_syn());
        }
        assert!(c.on_rto().is_empty());
        assert_eq!(c.state, TcpState::Closed);
        assert_eq!(c.close_reason, Some(CloseReason::TimedOut));
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let (mut c, _syn) = TcpConn::connect(C, S, 1, EcnMode::Off);
        let r0 = c.rto();
        c.on_rto();
        let r1 = c.rto();
        c.on_rto();
        let r2 = c.rto();
        assert_eq!(r1.0, r0.0 * 2);
        assert_eq!(r2.0, r0.0 * 4);
    }

    #[test]
    fn lost_data_segment_is_retransmitted_and_recovered() {
        let (mut c, mut s) = open_pair(EcnMode::Off, EcnMode::Off);
        let out = c.send(b"hello", Nanos::ZERO);
        assert_eq!(out.len(), 1);
        // segment lost; RTO fires
        let rext = c.on_rto();
        assert_eq!(rext.len(), 1);
        assert_eq!(rext[0].payload, b"hello");
        exchange(&mut c, &mut s, rext);
        assert_eq!(s.take_received(), b"hello");
        assert!(c.all_acked());
    }

    #[test]
    fn out_of_order_segment_elicits_dup_ack_and_is_dropped() {
        let (mut c, mut s) = open_pair(EcnMode::Off, EcnMode::Off);
        let seg1 = c.send(b"aaaa", Nanos::ZERO);
        let seg2_only = { c.send(b"bbbb", Nanos::ZERO) };
        // deliver segment 2 first: server must dup-ACK and not deliver data
        let acks = s.on_segment(&seg2_only[0].header, &seg2_only[0].payload, Ecn::NotEct);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].header.ack, seg1[0].header.seq);
        assert!(s.received().is_empty());
        // now deliver segment 1; its ACK advances the client's snd_una,
        // so the client's RTO retransmits only the still-missing "bbbb"
        let acks1 = s.on_segment(&seg1[0].header, &seg1[0].payload, Ecn::NotEct);
        for e in &acks1 {
            c.on_segment(&e.header, &e.payload, e.ip_ecn);
        }
        let rext = c.on_rto();
        assert_eq!(rext[0].payload, b"bbbb");
        let _ = s.on_segment(&rext[0].header, &rext[0].payload, Ecn::NotEct);
        assert_eq!(s.take_received(), b"aaaabbbb");
    }

    #[test]
    fn graceful_close_both_directions() {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        let fin = c.close();
        assert_eq!(c.state, TcpState::FinWait1);
        exchange(&mut c, &mut s, fin);
        assert_eq!(s.state, TcpState::CloseWait);
        assert!(s.peer_closed());
        let fin2 = s.close();
        exchange(&mut s, &mut c, fin2);
        assert_eq!(c.state, TcpState::Closed);
        assert_eq!(s.state, TcpState::Closed);
        assert_eq!(c.close_reason, Some(CloseReason::Graceful));
        assert_eq!(s.close_reason, Some(CloseReason::Graceful));
    }

    #[test]
    fn rst_closes_immediately() {
        let (mut c, mut s) = open_pair(EcnMode::Off, EcnMode::Off);
        let rst = s.abort();
        let out = c.on_segment(&rst[0].header, &[], Ecn::NotEct);
        assert!(out.is_empty());
        assert_eq!(c.state, TcpState::Closed);
        assert_eq!(c.close_reason, Some(CloseReason::Reset));
    }

    #[test]
    fn close_during_syn_sent_aborts_silently() {
        let (mut c, _syn) = TcpConn::connect(C, S, 1, EcnMode::On);
        assert!(c.close().is_empty());
        assert_eq!(c.state, TcpState::Closed);
        assert_eq!(c.close_reason, Some(CloseReason::Aborted));
    }

    #[test]
    fn data_queued_before_established_flushes_after_handshake() {
        let (mut c, syn) = TcpConn::connect(C, S, 1000, EcnMode::On);
        assert!(
            c.send(b"early data", Nanos::ZERO).is_empty(),
            "nothing before handshake"
        );
        let (mut s, syn_ack) = TcpConn::accept(S, C, 9000, &syn.header, EcnMode::On);
        let out = c.on_segment(&syn_ack.header, &[], Ecn::NotEct);
        // out = [ACK, data]
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].payload, b"early data");
        exchange(&mut c, &mut s, out);
        assert_eq!(s.take_received(), b"early data");
    }
}
