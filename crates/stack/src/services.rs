//! Service traits: application logic that runs *inside* a host's stack.
//!
//! Server hosts (NTP pool members, their co-located web servers) register
//! services against ports; the stack invokes them when traffic arrives.
//! Concrete services (NTP responder, pool HTTP redirector, pool DNS) live
//! in the `ecn-services` crate.

use ecn_netsim::Nanos;
use ecn_wire::Ecn;
use std::net::Ipv4Addr;

/// A datagram service bound to a UDP port (e.g. an NTP server on 123).
pub trait UdpService: Send {
    /// Handle one request datagram; return the response payload, if any.
    ///
    /// `ecn` is the codepoint the request *arrived* with (after any on-path
    /// mangling) — services normally ignore it, but diagnostics can log it.
    fn handle(
        &mut self,
        now: Nanos,
        src: (Ipv4Addr, u16),
        ecn: Ecn,
        payload: &[u8],
    ) -> Option<Vec<u8>>;
}

/// What a TCP service wants done after inspecting the request bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpServiceAction {
    /// Request incomplete — wait for more bytes.
    Wait,
    /// Send these bytes; `close` ends the connection afterwards.
    Respond {
        /// Response bytes to send.
        bytes: Vec<u8>,
        /// Close our side after sending.
        close: bool,
    },
    /// Drop the connection with RST.
    Abort,
}

/// A byte-stream service bound to a TCP listening port (e.g. HTTP on 80).
///
/// The stack calls `on_data` with the *complete accumulated* in-order
/// request bytes every time more data arrives; the service decides when the
/// request is complete.
pub trait TcpService: Send {
    /// Inspect accumulated request bytes and decide what to do.
    fn on_data(&mut self, now: Nanos, received: &[u8]) -> TcpServiceAction;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Upper;
    impl TcpService for Upper {
        fn on_data(&mut self, _now: Nanos, received: &[u8]) -> TcpServiceAction {
            if received.ends_with(b"\n") {
                TcpServiceAction::Respond {
                    bytes: received.to_ascii_uppercase(),
                    close: true,
                }
            } else {
                TcpServiceAction::Wait
            }
        }
    }

    #[test]
    fn tcp_service_waits_for_complete_request() {
        let mut s = Upper;
        assert_eq!(s.on_data(Nanos::ZERO, b"hel"), TcpServiceAction::Wait);
        assert_eq!(
            s.on_data(Nanos::ZERO, b"hello\n"),
            TcpServiceAction::Respond {
                bytes: b"HELLO\n".to_vec(),
                close: true
            }
        );
    }

    struct EchoUdp;
    impl UdpService for EchoUdp {
        fn handle(
            &mut self,
            _now: Nanos,
            _src: (Ipv4Addr, u16),
            _ecn: Ecn,
            payload: &[u8],
        ) -> Option<Vec<u8>> {
            Some(payload.to_vec())
        }
    }

    #[test]
    fn udp_service_echo() {
        let mut s = EchoUdp;
        assert_eq!(
            s.handle(
                Nanos::ZERO,
                (Ipv4Addr::new(1, 2, 3, 4), 999),
                Ecn::Ect0,
                b"ping"
            ),
            Some(b"ping".to_vec())
        );
    }
}
