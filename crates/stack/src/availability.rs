//! Host availability: whether a (volunteer-operated) server is answering
//! at a given virtual time.
//!
//! The NTP pool offers no service guarantee (paper §4.1): some servers are
//! off-line for whole measurement batches, others flap for minutes at a
//! time. Both behaviours matter to the study — permanent churn lowers
//! absolute reachability between the April/May and July/August batches,
//! while short flaps produce the *transient* differential-reachability
//! noise that the paper is careful to separate from genuine ECN blackholes.

use ecn_netsim::{derive_rng, Nanos};
use rand::rngs::SmallRng;
use rand::Rng;

/// Availability behaviour of a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AvailabilityModel {
    /// Always answering.
    AlwaysUp,
    /// Never answering (dead host still in the target list).
    AlwaysDown,
    /// Up until `t`, then gone for good (left the pool between batches).
    DownAfter(Nanos),
    /// Down until `t`, then up (joined late).
    UpAfter(Nanos),
    /// Alternates up/down with exponential dwell times.
    Flapping {
        /// Mean residence in the up state.
        mean_up: Nanos,
        /// Mean residence in the down state.
        mean_down: Nanos,
    },
}

impl AvailabilityModel {
    /// Long-run fraction of time the host answers.
    pub fn uptime_fraction(&self) -> f64 {
        match *self {
            AvailabilityModel::AlwaysUp => 1.0,
            AvailabilityModel::AlwaysDown => 0.0,
            // the step models depend on the horizon; report the eventual state
            AvailabilityModel::DownAfter(_) => 0.0,
            AvailabilityModel::UpAfter(_) => 1.0,
            AvailabilityModel::Flapping { mean_up, mean_down } => {
                let u = mean_up.0 as f64;
                let d = mean_down.0 as f64;
                if u + d == 0.0 {
                    1.0
                } else {
                    u / (u + d)
                }
            }
        }
    }
}

/// Stateful evaluator of an [`AvailabilityModel`].
#[derive(Debug)]
pub struct Availability {
    model: AvailabilityModel,
    rng: SmallRng,
    up: bool,
    until: Nanos,
    started: bool,
}

impl Availability {
    /// Build an evaluator; `seed`/`label` make the flap schedule
    /// deterministic and independent per host.
    pub fn new(model: AvailabilityModel, seed: u64, label: &str) -> Availability {
        Availability {
            model,
            rng: derive_rng(seed, label),
            up: true,
            until: Nanos::ZERO,
            started: false,
        }
    }

    /// Is the host answering at `now`? (Monotone `now` expected; the
    /// simulator guarantees it.)
    pub fn is_up(&mut self, now: Nanos) -> bool {
        match self.model {
            AvailabilityModel::AlwaysUp => true,
            AvailabilityModel::AlwaysDown => false,
            AvailabilityModel::DownAfter(t) => now < t,
            AvailabilityModel::UpAfter(t) => now >= t,
            AvailabilityModel::Flapping { mean_up, mean_down } => {
                // Residence intervals are contiguous: when queried after a
                // long gap, the chain replays every intermediate flip, so
                // the duty cycle is correct even under sparse probing (a
                // campaign touches each server only once per trace).
                while now >= self.until {
                    if !self.started {
                        self.started = true;
                        // start in the stationary distribution
                        let p_up = self.model.uptime_fraction();
                        self.up = self.rng.gen_bool(p_up.clamp(0.0, 1.0));
                    } else {
                        self.up = !self.up;
                    }
                    let mean = if self.up { mean_up } else { mean_down };
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let dwell = Nanos(((-(u.ln())) * mean.0 as f64) as u64).max(Nanos(1));
                    self.until = Nanos(self.until.0.saturating_add(dwell.0));
                }
                self.up
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_models() {
        let mut up = Availability::new(AvailabilityModel::AlwaysUp, 1, "a");
        let mut down = Availability::new(AvailabilityModel::AlwaysDown, 1, "b");
        for t in [0u64, 1_000_000, u64::MAX / 2] {
            assert!(up.is_up(Nanos(t)));
            assert!(!down.is_up(Nanos(t)));
        }
    }

    #[test]
    fn down_after_steps_once() {
        let cut = Nanos::from_secs(100);
        let mut a = Availability::new(AvailabilityModel::DownAfter(cut), 1, "c");
        assert!(a.is_up(Nanos::from_secs(99)));
        assert!(!a.is_up(Nanos::from_secs(100)));
        assert!(!a.is_up(Nanos::from_secs(5000)));
    }

    #[test]
    fn up_after_steps_once() {
        let cut = Nanos::from_secs(10);
        let mut a = Availability::new(AvailabilityModel::UpAfter(cut), 1, "d");
        assert!(!a.is_up(Nanos::from_secs(9)));
        assert!(a.is_up(Nanos::from_secs(10)));
    }

    #[test]
    fn flapping_hits_duty_cycle() {
        let model = AvailabilityModel::Flapping {
            mean_up: Nanos::from_secs(95),
            mean_down: Nanos::from_secs(5),
        };
        assert!((model.uptime_fraction() - 0.95).abs() < 1e-9);
        let mut a = Availability::new(model, 7, "e");
        let samples = 200_000u64;
        let up = (0..samples)
            .filter(|i| a.is_up(Nanos::from_millis(i * 50)))
            .count();
        let frac = up as f64 / samples as f64;
        assert!((frac - 0.95).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn flap_schedule_is_deterministic_per_seed() {
        let model = AvailabilityModel::Flapping {
            mean_up: Nanos::from_secs(10),
            mean_down: Nanos::from_secs(10),
        };
        let mut a = Availability::new(model, 42, "x");
        let mut b = Availability::new(model, 42, "x");
        let mut c = Availability::new(model, 43, "x");
        let series_a: Vec<bool> = (0..1000).map(|i| a.is_up(Nanos::from_secs(i))).collect();
        let series_b: Vec<bool> = (0..1000).map(|i| b.is_up(Nanos::from_secs(i))).collect();
        let series_c: Vec<bool> = (0..1000).map(|i| c.is_up(Nanos::from_secs(i))).collect();
        assert_eq!(series_a, series_b);
        assert_ne!(series_a, series_c);
    }
}
