//! The host stack: demultiplexes arriving datagrams to UDP sockets,
//! registered services, TCP connections and the ICMP inbox — and exposes a
//! raw-socket-like [`HostHandle`] to external drivers (the prober).
//!
//! The handle's surface is deliberately shaped like what `socket2`/`pnet`
//! give a live measurement tool — bind, send with an explicit ECN codepoint
//! and TTL, receive, plus an ICMP inbox — so the measurement application
//! above it would port to real raw sockets without structural change.

use crate::availability::{Availability, AvailabilityModel};
use crate::services::{TcpService, TcpServiceAction, UdpService};
use crate::tcp::{CloseReason, EcnMode, Emit, HandshakeRecord, TcpConn, TcpState};
use ecn_netsim::{HostAgent, HostApi, Nanos, NodeId, Sim};
use ecn_wire::{
    Datagram, Ecn, IcmpMessage, IpProto, Ipv4Header, TcpFlags, TcpHeader, UdpHeader, WireError,
};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Identifier of a TCP connection within one host's stack.
pub type ConnId = u64;

/// Stack-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Answer UDP to closed ports with ICMP port-unreachable. Pool servers
    /// sit behind filters that don't, which is why "traces stop generally
    /// one hop before the destination" (paper §4.2).
    pub udp_port_unreachable: bool,
    /// Answer TCP to closed ports with RST (hosts without a web server).
    pub tcp_rst_on_closed: bool,
    /// Answer ICMP echo requests.
    pub echo_replies: bool,
    /// Availability schedule.
    pub availability: AvailabilityModel,
    /// Seed for ISS/ephemeral-port randomness and the flap schedule.
    pub seed: u64,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            udp_port_unreachable: false,
            tcp_rst_on_closed: true,
            echo_replies: true,
            availability: AvailabilityModel::AlwaysUp,
            seed: 0,
        }
    }
}

/// A datagram delivered to a bound UDP socket.
#[derive(Debug, Clone)]
pub struct UdpReceived {
    /// Arrival time.
    pub at: Nanos,
    /// Sender address and port.
    pub src: (Ipv4Addr, u16),
    /// Local destination port.
    pub dst_port: u16,
    /// ECN codepoint the datagram arrived with.
    pub ecn: Ecn,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// An ICMP message delivered to the host.
#[derive(Debug, Clone)]
pub struct IcmpReceived {
    /// Arrival time.
    pub at: Nanos,
    /// Router/host that sent the message.
    pub from: Ipv4Addr,
    /// ECN codepoint of the carrying IP packet.
    pub ecn: Ecn,
    /// The decoded message (with quoted original bytes for errors).
    pub msg: IcmpMessage,
}

/// Read-only view of a connection for external drivers.
#[derive(Debug, Clone)]
pub struct ConnSnapshot {
    /// Protocol state.
    pub state: TcpState,
    /// Why it closed, if closed.
    pub close_reason: Option<CloseReason>,
    /// Did RFC 3168 negotiation succeed?
    pub ecn_negotiated: bool,
    /// Handshake observations (SYN-ACK flags etc).
    pub handshake: HandshakeRecord,
    /// In-order bytes received and not yet drained.
    pub received: Vec<u8>,
    /// Peer has half-closed.
    pub peer_closed: bool,
    /// CE-marked segments seen.
    pub ce_received: u32,
    /// Congestion responses taken (ECE-triggered).
    pub congestion_events: u32,
}

struct Listener {
    ecn_mode: EcnMode,
    service: Option<Box<dyn TcpService>>,
}

struct ConnEntry {
    conn: TcpConn,
    server: bool,
    listener_port: Option<u16>,
    timer_deadline: Option<Nanos>,
    service_responded: bool,
}

/// State shared between the in-sim agent and the external handle.
pub struct StackShared {
    addr: Ipv4Addr,
    config: StackConfig,
    availability: Availability,
    udp_socks: HashMap<u16, VecDeque<UdpReceived>>,
    /// Ports bound as sinks: arriving datagrams are accepted (no ICMP
    /// port-unreachable) but never queued — capture-verdict probes use
    /// these to skip the per-datagram payload copy entirely.
    udp_sinks: HashSet<u16>,
    udp_services: HashMap<u16, Box<dyn UdpService>>,
    icmp_inbox: VecDeque<IcmpReceived>,
    listeners: HashMap<u16, Listener>,
    conns: HashMap<ConnId, ConnEntry>,
    conn_lookup: HashMap<(u16, Ipv4Addr, u16), ConnId>,
    next_conn_id: ConnId,
    next_ephemeral: u16,
    ip_ident: u16,
    rng: SmallRng,
    /// Reusable segment-emit buffer shared by every TCP entry point
    /// (capacity survives across segments and connections).
    emit_scratch: Vec<Emit>,
}

impl StackShared {
    fn new(addr: Ipv4Addr, config: StackConfig) -> StackShared {
        StackShared {
            addr,
            config,
            availability: Availability::new(
                config.availability,
                config.seed,
                ecn_netsim::LabelBuf::format(format_args!("avail-{addr}")).as_str(),
            ),
            udp_socks: HashMap::new(),
            udp_sinks: HashSet::with_capacity(4),
            udp_services: HashMap::new(),
            icmp_inbox: VecDeque::new(),
            listeners: HashMap::new(),
            conns: HashMap::new(),
            conn_lookup: HashMap::new(),
            next_conn_id: 1,
            next_ephemeral: 40_000,
            ip_ident: 1,
            rng: SmallRng::seed_from_u64(config.seed ^ u64::from(u32::from(addr))),
            // Pre-sized past any realistic emit burst (worst observed is a
            // handful of segments per pump) so the scratch never reallocates
            // mid-run — the exact-alloc-equality gate depends on that.
            emit_scratch: Vec::with_capacity(32),
        }
    }

    fn next_ident(&mut self) -> u16 {
        let id = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1).max(1);
        id
    }

    // The datagram builders compose straight into `buf` — a buffer checked
    // out of the simulator's packet pool — so the encode path allocates
    // nothing once the pool is warm.

    fn udp_datagram(
        &mut self,
        buf: Vec<u8>,
        dst: (Ipv4Addr, u16),
        src_port: u16,
        payload: &[u8],
        ecn: Ecn,
        ttl: u8,
    ) -> Datagram {
        let mut h = Ipv4Header::probe(self.addr, dst.0, IpProto::Udp, ecn);
        h.ttl = ttl;
        h.identification = self.next_ident();
        let src = self.addr;
        Datagram::compose(buf, h, |out| {
            ecn_wire::udp::udp_segment_into(src, dst.0, src_port, dst.1, payload, out)
        })
    }

    fn tcp_datagram(&mut self, buf: Vec<u8>, remote: Ipv4Addr, emit: &Emit) -> Datagram {
        let mut h = Ipv4Header::probe(self.addr, remote, IpProto::Tcp, emit.ip_ecn);
        h.identification = self.next_ident();
        let src = self.addr;
        Datagram::compose(buf, h, |out| {
            ecn_wire::tcp::tcp_segment_into(src, remote, &emit.header, &emit.payload, out)
        })
    }

    /// Run the listener service against a connection's buffered request,
    /// appending segments to transmit to `out`.
    fn pump_service_into(&mut self, id: ConnId, now: Nanos, out: &mut Vec<Emit>) {
        let Some(entry) = self.conns.get_mut(&id) else {
            return;
        };
        let Some(port) = entry.listener_port else {
            return;
        };
        if !entry.service_responded && !entry.conn.received().is_empty() {
            if let Some(listener) = self.listeners.get_mut(&port) {
                if let Some(service) = listener.service.as_mut() {
                    match service.on_data(now, entry.conn.received()) {
                        TcpServiceAction::Wait => {}
                        TcpServiceAction::Respond { bytes, close } => {
                            entry.service_responded = true;
                            entry.conn.take_received();
                            entry.conn.send_into(&bytes, now, out);
                            if close {
                                entry.conn.close_into(out);
                            }
                        }
                        TcpServiceAction::Abort => {
                            entry.service_responded = true;
                            entry.conn.abort_into(out);
                        }
                    }
                }
            }
        }
        // Server side: if the client half-closed and we have nothing more
        // to say, close our side too.
        if entry.server && entry.conn.peer_closed() && entry.conn.state == TcpState::CloseWait {
            entry.conn.close_into(out);
        }
    }
}

/// The in-sim agent half of the stack.
pub struct StackAgent {
    shared: Arc<Mutex<StackShared>>,
    /// Reusable outgoing-datagram scratch (capacity survives dispatches).
    out: Vec<Datagram>,
}

impl StackAgent {
    fn process(&mut self, api: &mut HostApi<'_>, dgram: &Datagram, out: &mut Vec<Datagram>) {
        let now = api.now();
        let sh = &mut *self.shared.lock();
        if !sh.availability.is_up(now) {
            return;
        }
        let header = dgram.header();
        match header.protocol {
            IpProto::Udp => Self::process_udp(sh, api, now, &header, dgram, out),
            IpProto::Tcp => Self::process_tcp(sh, api, now, &header, dgram, out),
            IpProto::Icmp => Self::process_icmp(sh, api, now, &header, dgram, out),
            IpProto::Other(_) => {}
        }
    }

    fn process_udp(
        sh: &mut StackShared,
        api: &mut HostApi<'_>,
        now: Nanos,
        header: &Ipv4Header,
        dgram: &Datagram,
        out: &mut Vec<Datagram>,
    ) {
        let decoded: Result<(UdpHeader, &[u8]), WireError> =
            UdpHeader::decode(header.src, header.dst, dgram.payload());
        let Ok((uh, body)) = decoded else {
            return; // corrupt: silently dropped, like a real stack
        };
        if let Some(inbox) = sh.udp_socks.get_mut(&uh.dst_port) {
            inbox.push_back(UdpReceived {
                at: now,
                src: (header.src, uh.src_port),
                dst_port: uh.dst_port,
                ecn: header.ecn,
                payload: body.to_vec(),
            });
            return;
        }
        if sh.udp_sinks.contains(&uh.dst_port) {
            return; // accepted and discarded, payload never copied
        }
        if sh.udp_services.contains_key(&uh.dst_port) {
            let mut svc = sh.udp_services.remove(&uh.dst_port).expect("present");
            let response = svc.handle(now, (header.src, uh.src_port), header.ecn, body);
            sh.udp_services.insert(uh.dst_port, svc);
            if let Some(bytes) = response {
                let reply = sh.udp_datagram(
                    api.take_buf(),
                    (header.src, uh.src_port),
                    uh.dst_port,
                    &bytes,
                    Ecn::NotEct,
                    64,
                );
                out.push(reply);
            }
            return;
        }
        if sh.config.udp_port_unreachable {
            let mut h = Ipv4Header::probe(sh.addr, header.src, IpProto::Icmp, Ecn::NotEct);
            h.identification = sh.next_ident();
            out.push(Datagram::compose(api.take_buf(), h, |o| {
                IcmpMessage::encode_dest_unreachable_into(
                    ecn_wire::DestUnreachCode::Port,
                    dgram.as_bytes(),
                    o,
                )
            }));
        }
    }

    fn process_tcp(
        sh: &mut StackShared,
        api: &mut HostApi<'_>,
        now: Nanos,
        header: &Ipv4Header,
        dgram: &Datagram,
        out: &mut Vec<Datagram>,
    ) {
        let Ok((th, body)) = TcpHeader::decode(header.src, header.dst, dgram.payload()) else {
            return;
        };
        let key = (th.dst_port, header.src, th.src_port);

        if let Some(&id) = sh.conn_lookup.get(&key) {
            let mut emits = std::mem::take(&mut sh.emit_scratch);
            emits.clear();
            {
                let entry = sh.conns.get_mut(&id).expect("conn in lookup");
                entry
                    .conn
                    .on_segment_into(&th, body, header.ecn, &mut emits);
            }
            sh.pump_service_into(id, now, &mut emits);
            let entry = sh.conns.get_mut(&id).expect("conn in lookup");
            let remote = entry.conn.remote.0;
            let arm = entry.conn.timer_armed.then(|| entry.conn.rto());
            let closed = entry.conn.state == TcpState::Closed;
            let server = entry.server;
            if let Some(rto) = arm {
                entry.timer_deadline = Some(now + rto);
                api.set_timer(rto, id);
            } else {
                entry.timer_deadline = None;
            }
            for e in &emits {
                let buf = api.take_buf();
                out.push(sh.tcp_datagram(buf, remote, e));
            }
            emits.clear();
            sh.emit_scratch = emits;
            if closed && server {
                // server connections are garbage-collected once done
                sh.conns.remove(&id);
                sh.conn_lookup.remove(&key);
            }
            return;
        }

        // No connection: maybe a listener?
        if th.flags.contains(TcpFlags::SYN) && !th.flags.contains(TcpFlags::ACK) {
            if let Some(listener) = sh.listeners.get(&th.dst_port) {
                let ecn_mode = listener.ecn_mode;
                let iss: u32 = sh.rng.gen();
                let (conn, syn_ack) = TcpConn::accept(
                    (sh.addr, th.dst_port),
                    (header.src, th.src_port),
                    iss,
                    &th,
                    ecn_mode,
                );
                let id = sh.next_conn_id;
                sh.next_conn_id += 1;
                let rto = conn.rto();
                sh.conns.insert(
                    id,
                    ConnEntry {
                        conn,
                        server: true,
                        listener_port: Some(th.dst_port),
                        timer_deadline: Some(now + rto),
                        service_responded: false,
                    },
                );
                sh.conn_lookup.insert(key, id);
                api.set_timer(rto, id);
                let buf = api.take_buf();
                out.push(sh.tcp_datagram(buf, header.src, &syn_ack));
                return;
            }
        }

        // Closed port.
        if sh.config.tcp_rst_on_closed && !th.flags.contains(TcpFlags::RST) {
            let (seq, ack, flags) = if th.flags.contains(TcpFlags::ACK) {
                (th.ack, 0, TcpFlags::RST)
            } else {
                let advance = body.len() as u32
                    + u32::from(th.flags.contains(TcpFlags::SYN))
                    + u32::from(th.flags.contains(TcpFlags::FIN));
                (
                    0,
                    th.seq.wrapping_add(advance),
                    TcpFlags::RST | TcpFlags::ACK,
                )
            };
            let rst = TcpHeader {
                src_port: th.dst_port,
                dst_port: th.src_port,
                seq,
                ack,
                flags,
                window: 0,
                urgent: 0,
                options: vec![],
            };
            let emit = Emit {
                header: rst,
                payload: vec![],
                ip_ecn: Ecn::NotEct,
            };
            let buf = api.take_buf();
            out.push(sh.tcp_datagram(buf, header.src, &emit));
        }
    }

    fn process_icmp(
        sh: &mut StackShared,
        api: &mut HostApi<'_>,
        now: Nanos,
        header: &Ipv4Header,
        dgram: &Datagram,
        out: &mut Vec<Datagram>,
    ) {
        let Ok(msg) = IcmpMessage::decode(dgram.payload()) else {
            return;
        };
        if let IcmpMessage::EchoRequest { id, seq, payload } = &msg {
            if sh.config.echo_replies {
                let mut h = Ipv4Header::probe(sh.addr, header.src, IpProto::Icmp, Ecn::NotEct);
                h.identification = sh.next_ident();
                // same bytes as IcmpMessage::EchoReply{..}.encode(), minus
                // the owned round-trip through a cloned payload
                out.push(Datagram::compose(api.take_buf(), h, |o| {
                    let start = o.len();
                    o.extend_from_slice(&[0, 0, 0, 0]);
                    o.extend_from_slice(&id.to_be_bytes());
                    o.extend_from_slice(&seq.to_be_bytes());
                    o.extend_from_slice(payload);
                    let ck = ecn_wire::internet_checksum(&o[start..]);
                    o[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
                }));
                return;
            }
        }
        sh.icmp_inbox.push_back(IcmpReceived {
            at: now,
            from: header.src,
            ecn: header.ecn,
            msg,
        });
    }
}

impl HostAgent for StackAgent {
    fn on_datagram(&mut self, api: &mut HostApi<'_>, dgram: &Datagram) {
        let mut out = std::mem::take(&mut self.out);
        self.process(api, dgram, &mut out);
        for d in out.drain(..) {
            api.send(d);
        }
        self.out = out;
    }

    fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
        let now = api.now();
        let mut out = std::mem::take(&mut self.out);
        {
            let sh = &mut *self.shared.lock();
            let mut emits = std::mem::take(&mut sh.emit_scratch);
            emits.clear();
            let Some(entry) = sh.conns.get_mut(&token) else {
                sh.emit_scratch = emits;
                self.out = out;
                return;
            };
            if entry.timer_deadline != Some(now) {
                sh.emit_scratch = emits;
                self.out = out;
                return; // superseded timer
            }
            entry.timer_deadline = None;
            let remote = entry.conn.remote.0;
            entry.conn.on_rto_into(&mut emits);
            if entry.conn.timer_armed {
                let rto = entry.conn.rto();
                entry.timer_deadline = Some(now + rto);
                api.set_timer(rto, token);
            }
            for e in &emits {
                let buf = api.take_buf();
                out.push(sh.tcp_datagram(buf, remote, e));
            }
            emits.clear();
            sh.emit_scratch = emits;
        }
        for d in out.drain(..) {
            api.send(d);
        }
        self.out = out;
    }
}

/// External control handle: the raw-socket surface used by the prober.
#[derive(Clone)]
pub struct HostHandle {
    node: NodeId,
    addr: Ipv4Addr,
    shared: Arc<Mutex<StackShared>>,
}

impl HostHandle {
    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Bind a UDP socket. `port = 0` allocates an ephemeral port.
    pub fn udp_bind(&self, port: u16) -> u16 {
        let mut sh = self.shared.lock();
        let port = if port == 0 {
            loop {
                let p = sh.next_ephemeral;
                sh.next_ephemeral = sh.next_ephemeral.wrapping_add(1).max(40_000);
                if !sh.udp_socks.contains_key(&p) && !sh.udp_sinks.contains(&p) {
                    break p;
                }
            }
        } else {
            port
        };
        sh.udp_socks.entry(port).or_default();
        port
    }

    /// Bind a UDP sink on an ephemeral port: arriving datagrams are
    /// accepted (no ICMP port-unreachable) but discarded without copying
    /// the payload. For probes whose verdict comes from the capture, not
    /// the socket.
    pub fn udp_bind_sink(&self) -> u16 {
        let mut sh = self.shared.lock();
        let port = loop {
            let p = sh.next_ephemeral;
            sh.next_ephemeral = sh.next_ephemeral.wrapping_add(1).max(40_000);
            if !sh.udp_socks.contains_key(&p) && !sh.udp_sinks.contains(&p) {
                break p;
            }
        };
        sh.udp_sinks.insert(port);
        port
    }

    /// Send a UDP datagram with explicit ECN (TTL 64).
    pub fn udp_send(
        &self,
        sim: &mut Sim,
        src_port: u16,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        ecn: Ecn,
    ) {
        self.udp_send_probe(sim, src_port, dst, payload, ecn, 64)
    }

    /// Send a UDP datagram with explicit ECN and TTL (traceroute probes).
    pub fn udp_send_probe(
        &self,
        sim: &mut Sim,
        src_port: u16,
        dst: (Ipv4Addr, u16),
        payload: &[u8],
        ecn: Ecn,
        ttl: u8,
    ) {
        let buf = sim.take_buf();
        let d = self
            .shared
            .lock()
            .udp_datagram(buf, dst, src_port, payload, ecn, ttl);
        sim.send_from(self.node, d);
    }

    /// Close a bound UDP socket or sink, freeing the port for reuse.
    /// Queued datagrams are discarded.
    pub fn udp_close(&self, port: u16) {
        let mut sh = self.shared.lock();
        sh.udp_socks.remove(&port);
        sh.udp_sinks.remove(&port);
    }

    /// Pop the oldest datagram from a bound socket.
    pub fn udp_recv(&self, src_port: u16) -> Option<UdpReceived> {
        self.shared
            .lock()
            .udp_socks
            .get_mut(&src_port)
            .and_then(|q| q.pop_front())
    }

    /// Drain all queued datagrams from a bound socket.
    pub fn udp_recv_all(&self, src_port: u16) -> Vec<UdpReceived> {
        self.shared
            .lock()
            .udp_socks
            .get_mut(&src_port)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Pop the oldest ICMP message.
    pub fn icmp_recv(&self) -> Option<IcmpReceived> {
        self.shared.lock().icmp_inbox.pop_front()
    }

    /// Drain the ICMP inbox.
    pub fn icmp_recv_all(&self) -> Vec<IcmpReceived> {
        self.shared.lock().icmp_inbox.drain(..).collect()
    }

    /// Open a TCP connection; `ecn` requests RFC 3168 negotiation
    /// (an ECN-setup SYN). Returns the connection id immediately; progress
    /// is observed via [`HostHandle::conn`] snapshots as the sim runs.
    pub fn tcp_connect(&self, sim: &mut Sim, remote: (Ipv4Addr, u16), ecn: bool) -> ConnId {
        let buf = sim.take_buf();
        let (id, dgram, rto) = {
            let mut sh = self.shared.lock();
            let port = loop {
                let p = sh.next_ephemeral;
                sh.next_ephemeral = sh.next_ephemeral.wrapping_add(1).max(40_000);
                if !sh.conn_lookup.contains_key(&(p, remote.0, remote.1)) {
                    break p;
                }
            };
            let iss: u32 = sh.rng.gen();
            let mode = if ecn { EcnMode::On } else { EcnMode::Off };
            let (conn, syn) = TcpConn::connect((sh.addr, port), remote, iss, mode);
            let id = sh.next_conn_id;
            sh.next_conn_id += 1;
            let rto = conn.rto();
            let deadline = sim.now() + rto;
            sh.conns.insert(
                id,
                ConnEntry {
                    conn,
                    server: false,
                    listener_port: None,
                    timer_deadline: Some(deadline),
                    service_responded: false,
                },
            );
            sh.conn_lookup.insert((port, remote.0, remote.1), id);
            let d = sh.tcp_datagram(buf, remote.0, &syn);
            (id, d, rto)
        };
        sim.send_from(self.node, dgram);
        sim.set_timer(self.node, rto, id);
        id
    }

    /// Measurement hook: make this connection send its data CE-marked
    /// (RFC 3168 forbids this for normal senders; the Kühlewind-style
    /// usability probe uses it to test the peer's ECE feedback loop).
    pub fn tcp_force_ce(&self, id: ConnId, on: bool) {
        if let Some(e) = self.shared.lock().conns.get_mut(&id) {
            e.conn.force_ce_data = on;
        }
    }

    /// Queue bytes on an established connection.
    pub fn tcp_send(&self, sim: &mut Sim, id: ConnId, data: &[u8]) {
        let out = {
            let sh = &mut *self.shared.lock();
            let now = sim.now();
            let mut emits = std::mem::take(&mut sh.emit_scratch);
            emits.clear();
            let Some(entry) = sh.conns.get_mut(&id) else {
                sh.emit_scratch = emits;
                return;
            };
            entry.conn.send_into(data, now, &mut emits);
            let remote = entry.conn.remote.0;
            if entry.conn.timer_armed {
                let rto = entry.conn.rto();
                entry.timer_deadline = Some(now + rto);
                sim.set_timer(self.node, rto, id);
            }
            let out = emits
                .iter()
                .map(|e| sh.tcp_datagram(sim.take_buf(), remote, e))
                .collect::<Vec<_>>();
            emits.clear();
            sh.emit_scratch = emits;
            out
        };
        for d in out {
            sim.send_from(self.node, d);
        }
    }

    /// Close the connection gracefully.
    pub fn tcp_close(&self, sim: &mut Sim, id: ConnId) {
        let out = {
            let sh = &mut *self.shared.lock();
            let now = sim.now();
            let mut emits = std::mem::take(&mut sh.emit_scratch);
            emits.clear();
            let Some(entry) = sh.conns.get_mut(&id) else {
                sh.emit_scratch = emits;
                return;
            };
            entry.conn.close_into(&mut emits);
            let remote = entry.conn.remote.0;
            if entry.conn.timer_armed {
                let rto = entry.conn.rto();
                entry.timer_deadline = Some(now + rto);
                sim.set_timer(self.node, rto, id);
            }
            let out = emits
                .iter()
                .map(|e| sh.tcp_datagram(sim.take_buf(), remote, e))
                .collect::<Vec<_>>();
            emits.clear();
            sh.emit_scratch = emits;
            out
        };
        for d in out {
            sim.send_from(self.node, d);
        }
    }

    /// Abort the connection with RST.
    pub fn tcp_abort(&self, sim: &mut Sim, id: ConnId) {
        let out = {
            let sh = &mut *self.shared.lock();
            let mut emits = std::mem::take(&mut sh.emit_scratch);
            emits.clear();
            let Some(entry) = sh.conns.get_mut(&id) else {
                sh.emit_scratch = emits;
                return;
            };
            entry.conn.abort_into(&mut emits);
            let remote = entry.conn.remote.0;
            let out = emits
                .iter()
                .map(|e| sh.tcp_datagram(sim.take_buf(), remote, e))
                .collect::<Vec<_>>();
            emits.clear();
            sh.emit_scratch = emits;
            out
        };
        for d in out {
            sim.send_from(self.node, d);
        }
    }

    /// The connection's protocol state alone — the cheap polling
    /// companion of [`HostHandle::conn`], which clones the receive buffer
    /// on every call. Handshake wait-loops should poll this.
    pub fn conn_state(&self, id: ConnId) -> Option<TcpState> {
        self.shared.lock().conns.get(&id).map(|e| e.conn.state)
    }

    /// Poll a connection's progress without cloning its buffers: returns
    /// `(state, peer_closed, done)` where `done` is the predicate
    /// evaluated over the in-order received bytes under the lock (e.g.
    /// `HttpResponse::is_complete`).
    pub fn conn_ready(
        &self,
        id: ConnId,
        done: impl FnOnce(&[u8]) -> bool,
    ) -> Option<(TcpState, bool, bool)> {
        let sh = self.shared.lock();
        sh.conns
            .get(&id)
            .map(|e| (e.conn.state, e.conn.peer_closed(), done(e.conn.received())))
    }

    /// Run `f` over the connection's in-order received bytes under the
    /// lock — the zero-copy companion of [`HostHandle::conn`] for readers
    /// that only need to parse, not own, the bytes.
    pub fn with_received<R>(&self, id: ConnId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let sh = self.shared.lock();
        sh.conns.get(&id).map(|e| f(e.conn.received()))
    }

    /// Why the connection closed (outer `None`: no such connection).
    pub fn conn_close_reason(&self, id: ConnId) -> Option<Option<CloseReason>> {
        self.shared
            .lock()
            .conns
            .get(&id)
            .map(|e| e.conn.close_reason)
    }

    /// Snapshot a connection's state.
    pub fn conn(&self, id: ConnId) -> Option<ConnSnapshot> {
        let sh = self.shared.lock();
        sh.conns.get(&id).map(|e| ConnSnapshot {
            state: e.conn.state,
            close_reason: e.conn.close_reason,
            ecn_negotiated: e.conn.ecn_negotiated,
            handshake: e.conn.handshake,
            received: e.conn.received().to_vec(),
            peer_closed: e.conn.peer_closed(),
            ce_received: e.conn.ce_received,
            congestion_events: e.conn.congestion_events,
        })
    }

    /// Drain received bytes from a connection.
    pub fn tcp_take_received(&self, id: ConnId) -> Vec<u8> {
        let mut sh = self.shared.lock();
        sh.conns
            .get_mut(&id)
            .map(|e| e.conn.take_received())
            .unwrap_or_default()
    }

    /// Forget a finished connection (frees its port for reuse).
    pub fn remove_conn(&self, id: ConnId) {
        let mut sh = self.shared.lock();
        if let Some(e) = sh.conns.remove(&id) {
            let key = (e.conn.local.1, e.conn.remote.0, e.conn.remote.1);
            sh.conn_lookup.remove(&key);
        }
    }

    /// Register a UDP service (e.g. NTP on 123).
    pub fn register_udp_service(&self, port: u16, service: Box<dyn UdpService>) {
        self.shared.lock().udp_services.insert(port, service);
    }

    /// Register a TCP listener with an ECN mode and optional service.
    pub fn register_tcp_listener(
        &self,
        port: u16,
        ecn_mode: EcnMode,
        service: Option<Box<dyn TcpService>>,
    ) {
        self.shared
            .lock()
            .listeners
            .insert(port, Listener { ecn_mode, service });
    }

    /// Number of live connection entries (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.shared.lock().conns.len()
    }
}

/// Install a stack on `node` and return the external handle.
pub fn install(sim: &mut Sim, node: NodeId, config: StackConfig) -> HostHandle {
    let addr = sim.addr_of(node);
    let shared = Arc::new(Mutex::new(StackShared::new(addr, config)));
    sim.set_agent(
        node,
        Box::new(StackAgent {
            shared: shared.clone(),
            out: Vec::new(),
        }),
    );
    HostHandle { node, addr, shared }
}
