//! RFC 9000-style endpoint ECN validation (the s2n-quic `path/ecn.rs`
//! controller, adapted to datagram probes).
//!
//! A modern transport does not trust ECN blindly: it *tests* the path by
//! marking its first packets ECT and checking the peer's feedback for
//! evidence that the marks survived. The controller here is the state
//! machine the study's modern-ECN scenarios exercise against planted
//! middleboxes:
//!
//! ```text
//!             ┌──────────────────────── retest (cool-off elapsed) ─────┐
//!             ▼                                                        │
//!        ┌─────────┐  mangled/black-holed feedback   ┌────────┐        │
//!   ●──▶ │ Testing │ ───────────────────────────────▶│ Failed │ ───────┘
//!        └─────────┘                                 └────────┘
//!             │ ECT or CE confirmed      │ no feedback at all
//!             ▼                          ▼
//!        ┌─────────┐                ┌─────────┐
//!        │ Capable │                │ Unknown │
//!        └─────────┘                └─────────┘
//! ```
//!
//! Feedback is a per-packet report of the codepoint that *arrived* at the
//! peer (the analogue of QUIC's ACK-ECN counts). During `Testing` the
//! first [`ValidatorParams::testing_packets`] packets are sent marked;
//! one of them may be a deliberately CE-marked canary whose suppression
//! betrays a CE-clearing middlebox (the s2n-quic `ce_suppression` check).
//! A CE report for an ECT-sent packet is *capability-confirming* — an AQM
//! marked it — never a failure. Once any report shows a mangled mark the
//! round latches `Failed`; the only way out is a retest after
//! [`ValidatorParams::cooloff`], which restarts `Testing` from scratch —
//! there is no path from `Failed` (or from a bleached report) to
//! `Capable` within a round.

use ecn_netsim::Nanos;
use ecn_wire::Ecn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validation controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidatorParams {
    /// Packets marked ECT during the testing phase (s2n-quic tests the
    /// first 10).
    pub testing_packets: u32,
    /// Send one deliberately CE-marked canary to detect CE suppression.
    pub ce_canary: bool,
    /// Cool-off before a failed path may be retested.
    pub cooloff: Nanos,
}

impl Default for ValidatorParams {
    fn default() -> Self {
        ValidatorParams {
            testing_packets: 10,
            ce_canary: true,
            cooloff: Nanos::from_secs(60),
        }
    }
}

/// Controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidatorState {
    /// Marking packets ECT and watching feedback.
    Testing,
    /// Testing ended without any feedback: no evidence either way.
    Unknown,
    /// The path carries ECN marks faithfully.
    Capable,
    /// The path mangles or black-holes marked traffic; ECN is disabled
    /// until the cool-off elapses.
    Failed,
}

/// Why validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureKind {
    /// A mark was cleared to not-ECT on path (bleaching).
    Bleached,
    /// A mark arrived as the *other* ECT codepoint (re-marking).
    Remarked,
    /// Marked packets vanished while unmarked traffic got through.
    BlackHole,
    /// The CE canary arrived with its congestion signal erased.
    CeSuppressed,
}

/// The per-endpoint verdict a finished round emits into the reducers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// Path validated: ECN usable.
    Capable,
    /// Failed: marks bleached to not-ECT.
    FailedBleached,
    /// Failed: ECT codepoint rewritten to the other ECT codepoint.
    FailedRemarked,
    /// Failed: marked packets black-holed.
    FailedBlackHole,
    /// Failed: CE canary suppressed.
    FailedCeSuppressed,
    /// No feedback at all — nothing to validate against.
    Inconclusive,
}

impl ValidationOutcome {
    /// Stable dense index (reducer accumulator slot).
    pub fn index(self) -> usize {
        match self {
            ValidationOutcome::Capable => 0,
            ValidationOutcome::FailedBleached => 1,
            ValidationOutcome::FailedRemarked => 2,
            ValidationOutcome::FailedBlackHole => 3,
            ValidationOutcome::FailedCeSuppressed => 4,
            ValidationOutcome::Inconclusive => 5,
        }
    }

    /// All outcomes in `index` order.
    pub const ALL: [ValidationOutcome; 6] = [
        ValidationOutcome::Capable,
        ValidationOutcome::FailedBleached,
        ValidationOutcome::FailedRemarked,
        ValidationOutcome::FailedBlackHole,
        ValidationOutcome::FailedCeSuppressed,
        ValidationOutcome::Inconclusive,
    ];

    /// Any of the failure verdicts?
    pub fn is_failed(self) -> bool {
        !matches!(
            self,
            ValidationOutcome::Capable | ValidationOutcome::Inconclusive
        )
    }
}

impl fmt::Display for ValidationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValidationOutcome::Capable => "capable",
            ValidationOutcome::FailedBleached => "failed-bleached",
            ValidationOutcome::FailedRemarked => "failed-remarked",
            ValidationOutcome::FailedBlackHole => "failed-blackhole",
            ValidationOutcome::FailedCeSuppressed => "failed-ce-suppressed",
            ValidationOutcome::Inconclusive => "inconclusive",
        })
    }
}

/// The validation controller for one path (one peer).
#[derive(Debug, Clone)]
pub struct EcnValidator {
    params: ValidatorParams,
    state: ValidatorState,
    failure: Option<FailureKind>,
    /// Marked packets sent this round.
    sent_marked: u32,
    /// Reports confirming an intact ECT or CE arrival.
    confirmed: u32,
    /// Any feedback at all this round (marked or control).
    any_feedback: bool,
    /// When a failed path may be retested.
    retest_at: Option<Nanos>,
}

impl EcnValidator {
    /// A fresh controller in `Testing`.
    pub fn new(params: ValidatorParams) -> EcnValidator {
        EcnValidator {
            params,
            state: ValidatorState::Testing,
            failure: None,
            sent_marked: 0,
            confirmed: 0,
            any_feedback: false,
            retest_at: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> ValidatorState {
        self.state
    }

    /// The codepoint the next outgoing packet should carry: `session`
    /// (ECT(0) or ECT(1)) while testing budget remains — with the final
    /// testing packet swapped for a CE canary when configured — and
    /// not-ECT otherwise. Call once per packet; counts the send.
    pub fn next_codepoint(&mut self, session: Ecn) -> Ecn {
        if self.state != ValidatorState::Testing || self.sent_marked >= self.params.testing_packets
        {
            return Ecn::NotEct;
        }
        self.sent_marked += 1;
        if self.params.ce_canary && self.sent_marked == self.params.testing_packets {
            Ecn::Ce
        } else {
            session
        }
    }

    fn fail(&mut self, kind: FailureKind) {
        // First failure wins; the round latches Failed at conclude().
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
    }

    /// Feed one peer report: the packet was sent with `sent` and the peer
    /// saw it arrive with `arrived`.
    pub fn on_peer_report(&mut self, sent: Ecn, arrived: Ecn) {
        self.any_feedback = true;
        if self.state != ValidatorState::Testing {
            return;
        }
        match (sent, arrived) {
            // Intact, or AQM-marked on path: capability-confirming.
            (s, a) if s.is_ect() && (a == s || a == Ecn::Ce) => self.confirmed += 1,
            // Mark cleared on path.
            (s, Ecn::NotEct) if s.is_ect() => self.fail(FailureKind::Bleached),
            // ECT(0) ⇄ ECT(1) rewriting.
            (s, a) if s.is_ect() && a.is_ect() => self.fail(FailureKind::Remarked),
            // The CE canary: intact CE confirms; anything else means a
            // middlebox erased the congestion signal.
            (Ecn::Ce, Ecn::Ce) => self.confirmed += 1,
            (Ecn::Ce, _) => self.fail(FailureKind::CeSuppressed),
            // Control traffic (not-ECT sent): nothing to learn beyond
            // the feedback itself.
            _ => {}
        }
    }

    /// End the testing round at `now`. `control_reachable` says unmarked
    /// traffic to the same peer got through (distinguishes a marked-
    /// traffic black hole from a dead peer).
    pub fn conclude(&mut self, now: Nanos, control_reachable: bool) -> ValidationOutcome {
        if self.state == ValidatorState::Testing {
            self.state = if self.failure.is_some() {
                ValidatorState::Failed
            } else if self.confirmed > 0 {
                ValidatorState::Capable
            } else if !self.any_feedback && !control_reachable {
                ValidatorState::Unknown
            } else {
                // Marked packets vanished while the peer was demonstrably
                // alive (control feedback or reachability).
                self.failure = Some(FailureKind::BlackHole);
                ValidatorState::Failed
            };
            if self.state == ValidatorState::Failed {
                self.retest_at = Some(now + self.params.cooloff);
            }
        }
        self.outcome()
    }

    /// The verdict for the concluded round.
    pub fn outcome(&self) -> ValidationOutcome {
        match self.state {
            ValidatorState::Capable => ValidationOutcome::Capable,
            ValidatorState::Unknown | ValidatorState::Testing => ValidationOutcome::Inconclusive,
            ValidatorState::Failed => match self.failure {
                Some(FailureKind::Bleached) => ValidationOutcome::FailedBleached,
                Some(FailureKind::Remarked) => ValidationOutcome::FailedRemarked,
                Some(FailureKind::CeSuppressed) => ValidationOutcome::FailedCeSuppressed,
                Some(FailureKind::BlackHole) | None => ValidationOutcome::FailedBlackHole,
            },
        }
    }

    /// Retest a failed path once the cool-off has elapsed: back to a
    /// fresh `Testing` round. Returns true when the retest started.
    /// Paths that concluded `Capable`/`Unknown` never retest.
    pub fn maybe_retest(&mut self, now: Nanos) -> bool {
        match (self.state, self.retest_at) {
            (ValidatorState::Failed, Some(at)) if now >= at => {
                let params = self.params;
                *self = EcnValidator::new(params);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ValidatorParams {
        ValidatorParams::default()
    }

    #[test]
    fn clean_path_validates_capable() {
        let mut v = EcnValidator::new(params());
        let mut sent = Vec::new();
        for _ in 0..10 {
            sent.push(v.next_codepoint(Ecn::Ect0));
        }
        assert_eq!(sent.iter().filter(|e| **e == Ecn::Ect0).count(), 9);
        assert_eq!(*sent.last().unwrap(), Ecn::Ce, "last packet is the canary");
        // budget exhausted: subsequent traffic is unmarked
        assert_eq!(v.next_codepoint(Ecn::Ect0), Ecn::NotEct);
        for s in &sent {
            v.on_peer_report(*s, *s);
        }
        assert_eq!(v.conclude(Nanos::ZERO, true), ValidationOutcome::Capable);
        assert_eq!(v.state(), ValidatorState::Capable);
    }

    #[test]
    fn aqm_ce_marks_confirm_capability() {
        let mut v = EcnValidator::new(ValidatorParams {
            ce_canary: false,
            ..params()
        });
        for _ in 0..10 {
            let s = v.next_codepoint(Ecn::Ect1);
            assert_eq!(s, Ecn::Ect1);
            // every packet CE-marked by an AQM on path
            v.on_peer_report(s, Ecn::Ce);
        }
        assert_eq!(v.conclude(Nanos::ZERO, true), ValidationOutcome::Capable);
    }

    #[test]
    fn bleached_report_latches_failed() {
        let mut v = EcnValidator::new(params());
        let s = v.next_codepoint(Ecn::Ect0);
        v.on_peer_report(s, Ecn::NotEct);
        // later intact reports cannot rescue the round
        for _ in 0..20 {
            v.on_peer_report(Ecn::Ect0, Ecn::Ect0);
        }
        assert_eq!(
            v.conclude(Nanos::ZERO, true),
            ValidationOutcome::FailedBleached
        );
    }

    #[test]
    fn remarking_is_distinguished_from_bleaching() {
        let mut v = EcnValidator::new(params());
        let s = v.next_codepoint(Ecn::Ect1);
        v.on_peer_report(s, Ecn::Ect0);
        assert_eq!(
            v.conclude(Nanos::ZERO, true),
            ValidationOutcome::FailedRemarked
        );
    }

    #[test]
    fn suppressed_canary_fails() {
        let mut v = EcnValidator::new(params());
        for _ in 0..10 {
            let s = v.next_codepoint(Ecn::Ect0);
            let arrived = if s == Ecn::Ce { Ecn::Ect0 } else { s };
            v.on_peer_report(s, arrived);
        }
        assert_eq!(
            v.conclude(Nanos::ZERO, true),
            ValidationOutcome::FailedCeSuppressed
        );
    }

    #[test]
    fn black_hole_needs_live_peer_evidence() {
        // marked packets vanish, peer alive via control traffic → black hole
        let mut v = EcnValidator::new(params());
        for _ in 0..10 {
            v.next_codepoint(Ecn::Ect0);
        }
        assert_eq!(
            v.conclude(Nanos::ZERO, true),
            ValidationOutcome::FailedBlackHole
        );

        // nothing at all came back and control failed too → inconclusive
        let mut v = EcnValidator::new(params());
        for _ in 0..10 {
            v.next_codepoint(Ecn::Ect0);
        }
        assert_eq!(
            v.conclude(Nanos::ZERO, false),
            ValidationOutcome::Inconclusive
        );
        assert_eq!(v.state(), ValidatorState::Unknown);
    }

    #[test]
    fn retest_honours_cooloff() {
        let mut v = EcnValidator::new(params());
        let s = v.next_codepoint(Ecn::Ect0);
        v.on_peer_report(s, Ecn::NotEct);
        v.conclude(Nanos::from_secs(5), true);
        assert_eq!(v.state(), ValidatorState::Failed);
        // too early
        assert!(!v.maybe_retest(Nanos::from_secs(30)));
        assert_eq!(v.state(), ValidatorState::Failed);
        // cool-off elapsed: fresh testing round
        assert!(v.maybe_retest(Nanos::from_secs(65)));
        assert_eq!(v.state(), ValidatorState::Testing);
        assert_eq!(v.next_codepoint(Ecn::Ect0), Ecn::Ect0);
        // capable paths never retest
        let mut c = EcnValidator::new(ValidatorParams {
            ce_canary: false,
            ..params()
        });
        let s = c.next_codepoint(Ecn::Ect0);
        c.on_peer_report(s, Ecn::Ect0);
        c.conclude(Nanos::ZERO, true);
        assert!(!c.maybe_retest(Nanos::from_secs(1_000_000)));
    }

    #[test]
    fn outcome_indices_are_dense_and_stable() {
        for (i, o) in ValidationOutcome::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
        assert!(ValidationOutcome::FailedBleached.is_failed());
        assert!(!ValidationOutcome::Capable.is_failed());
        assert!(!ValidationOutcome::Inconclusive.is_failed());
        assert_eq!(ValidationOutcome::Capable.to_string(), "capable");
    }
}
