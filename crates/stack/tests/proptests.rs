//! Property-based tests of the TCP state machine: arbitrary segment fuzz
//! must never panic, data must arrive intact under arbitrary chunking, and
//! the ECN handshake matrix must follow RFC 3168 for every mode pairing.

use ecn_netsim::Nanos;
use ecn_stack::{EcnMode, TcpConn, TcpState};
use ecn_wire::{Ecn, TcpFlags, TcpHeader};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const C: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
const S: (Ipv4Addr, u16) = (Ipv4Addr::new(192, 0, 2, 80), 80);

fn open_pair(client: EcnMode, server: EcnMode) -> (TcpConn, TcpConn) {
    let (mut c, syn) = TcpConn::connect(C, S, 1000, client);
    let (mut s, syn_ack) = TcpConn::accept(S, C, 9000, &syn.header, server);
    let acks = c.on_segment(&syn_ack.header, &[], syn_ack.ip_ecn);
    for e in acks {
        s.on_segment(&e.header, &e.payload, e.ip_ecn);
    }
    (c, s)
}

/// Deliver every emitted segment until both sides go quiet.
fn exchange(a: &mut TcpConn, b: &mut TcpConn, mut a_to_b: Vec<ecn_stack::Emit>) {
    let mut b_to_a: Vec<ecn_stack::Emit> = vec![];
    for _ in 0..200 {
        if a_to_b.is_empty() && b_to_a.is_empty() {
            break;
        }
        let mut nb = vec![];
        for e in a_to_b.drain(..) {
            nb.extend(b.on_segment(&e.header, &e.payload, e.ip_ecn));
        }
        let mut na = vec![];
        for e in b_to_a.drain(..) {
            na.extend(a.on_segment(&e.header, &e.payload, e.ip_ecn));
        }
        b_to_a = nb;
        a_to_b = na;
    }
}

fn arb_mode() -> impl Strategy<Value = EcnMode> {
    prop_oneof![
        Just(EcnMode::Off),
        Just(EcnMode::On),
        Just(EcnMode::ReflectFlags)
    ]
}

proptest! {
    #[test]
    fn fuzzed_segments_never_panic_and_never_negotiate_falsely(
        flags in 0u16..0x200,
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        ecn_bits in 0u8..4,
    ) {
        let (mut c, _syn) = TcpConn::connect(C, S, 1, EcnMode::On);
        let hdr = TcpHeader {
            src_port: S.1,
            dst_port: C.1,
            seq,
            ack,
            flags: TcpFlags(flags),
            window,
            urgent: 0,
            options: vec![],
        };
        let _ = c.on_segment(&hdr, &payload, Ecn::from_bits(ecn_bits));
        // a random segment is essentially never a valid ECN-setup SYN-ACK
        // for our SYN (ack must equal iss+1 = 2); if it is, flags must
        // actually be ECN-setup.
        if c.ecn_negotiated {
            prop_assert!(TcpFlags(flags).is_ecn_setup_syn_ack());
            prop_assert_eq!(ack, 2);
        }
    }

    #[test]
    fn data_arrives_intact_under_arbitrary_chunking(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..800), 1..8),
    ) {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend_from_slice(chunk);
            let out = c.send(chunk, Nanos::ZERO);
            exchange(&mut c, &mut s, out);
        }
        prop_assert_eq!(s.take_received(), expected);
        prop_assert!(c.all_acked());
    }

    #[test]
    fn ecn_handshake_matrix_follows_rfc3168(client in arb_mode(), server in arb_mode()) {
        let (c, s) = open_pair(client, server);
        prop_assert_eq!(c.state, TcpState::Established);
        prop_assert_eq!(s.state, TcpState::Established);
        // negotiation succeeds iff client requested AND server is a
        // compliant ECN responder
        let should = client == EcnMode::On && server == EcnMode::On;
        prop_assert_eq!(c.ecn_negotiated, should, "client side");
        prop_assert_eq!(s.ecn_negotiated, should, "server side");
        // a reflect-flags server never yields a negotiated connection
        if server == EcnMode::ReflectFlags {
            prop_assert!(!c.ecn_negotiated);
        }
    }

    #[test]
    fn close_is_graceful_from_any_data_state(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        close_first: bool,
    ) {
        let (mut c, mut s) = open_pair(EcnMode::Off, EcnMode::Off);
        let out = c.send(&data, Nanos::ZERO);
        exchange(&mut c, &mut s, out);
        if close_first {
            let fin = c.close();
            exchange(&mut c, &mut s, fin);
            let fin2 = s.close();
            exchange(&mut s, &mut c, fin2);
        } else {
            let fin = s.close();
            exchange(&mut s, &mut c, fin);
            let fin2 = c.close();
            exchange(&mut c, &mut s, fin2);
        }
        prop_assert_eq!(c.state, TcpState::Closed);
        prop_assert_eq!(s.state, TcpState::Closed);
        prop_assert_eq!(s.take_received(), data);
    }

    #[test]
    fn retransmission_recovers_from_any_single_segment_loss(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        lose_idx in any::<proptest::sample::Index>(),
    ) {
        let (mut c, mut s) = open_pair(EcnMode::On, EcnMode::On);
        let mut out = c.send(&data, Nanos::ZERO);
        if !out.is_empty() {
            let idx = lose_idx.index(out.len());
            out.remove(idx); // the network eats one segment
        }
        exchange(&mut c, &mut s, out);
        // drive RTOs until everything is acked (bounded loop)
        for _ in 0..20 {
            if c.all_acked() {
                break;
            }
            let rext = c.on_rto();
            exchange(&mut c, &mut s, rext);
        }
        prop_assert!(c.all_acked());
        prop_assert_eq!(s.take_received(), data);
    }
}

// ------------------------------------------------- ECN validator oracle
//
// The validation state machine vs a naive reference model: for arbitrary
// parameters, session codepoints and per-packet path behaviours, the
// controller's verdict must equal the spec prose recomputed from scratch
// — and no path that erases marks may ever reach `Capable`.

use ecn_stack::{EcnValidator, ValidationOutcome, ValidatorParams};

/// What the path does to one packet of the validation train.
#[derive(Debug, Clone, Copy)]
enum PathAction {
    /// Deliver the mark untouched.
    Pass,
    /// Erase any mark to not-ECT (a bleacher).
    Bleach,
    /// Rewrite ECT(x) to the other ECT codepoint; erase CE to ECT(0)
    /// (a re-marking middlebox that also suppresses congestion signals).
    Remark,
    /// CE-mark the packet (an AQM signalling congestion).
    MarkCe,
    /// Drop it (no report reaches the sender).
    Drop,
}

fn apply_path(action: PathAction, sent: Ecn) -> Option<Ecn> {
    Some(match action {
        PathAction::Pass => sent,
        PathAction::Bleach => Ecn::NotEct,
        PathAction::Remark => match sent {
            Ecn::Ect0 | Ecn::Ce => Ecn::Ect1,
            Ecn::Ect1 => Ecn::Ect0,
            Ecn::NotEct => Ecn::NotEct,
        },
        PathAction::MarkCe => Ecn::Ce,
        PathAction::Drop => return None,
    })
}

/// The naive reference: recompute the verdict from the docs, with no
/// shared code or state machine — first mangled report wins, any intact
/// (or CE-marked) arrival confirms, silence splits on peer liveness.
fn reference_outcome(
    params: &ValidatorParams,
    session: Ecn,
    actions: &[PathAction],
    control_reachable: bool,
) -> ValidationOutcome {
    let n = params.testing_packets as usize;
    let mut failure = None;
    let mut confirmed = 0u32;
    let mut any_feedback = false;
    for (i, action) in actions.iter().enumerate().take(n) {
        let sent = if params.ce_canary && i + 1 == n {
            Ecn::Ce
        } else {
            session
        };
        let Some(arrived) = apply_path(*action, sent) else {
            continue;
        };
        any_feedback = true;
        let ok = arrived == sent || arrived == Ecn::Ce;
        if ok {
            confirmed += 1;
        } else if failure.is_none() {
            failure = Some(if sent == Ecn::Ce {
                ValidationOutcome::FailedCeSuppressed
            } else if arrived == Ecn::NotEct {
                ValidationOutcome::FailedBleached
            } else {
                ValidationOutcome::FailedRemarked
            });
        }
    }
    if let Some(f) = failure {
        f
    } else if confirmed > 0 {
        ValidationOutcome::Capable
    } else if !any_feedback && !control_reachable {
        ValidationOutcome::Inconclusive
    } else {
        ValidationOutcome::FailedBlackHole
    }
}

fn arb_action() -> impl Strategy<Value = PathAction> {
    prop_oneof![
        Just(PathAction::Pass),
        Just(PathAction::Bleach),
        Just(PathAction::Remark),
        Just(PathAction::MarkCe),
        Just(PathAction::Drop),
    ]
}

proptest! {
    #[test]
    fn validator_matches_the_naive_reference(
        packets in 1u32..=12,
        ce_canary in any::<bool>(),
        ect1_session in any::<bool>(),
        control_reachable in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 12),
    ) {
        let params = ValidatorParams {
            testing_packets: packets,
            ce_canary,
            ..ValidatorParams::default()
        };
        let session = if ect1_session { Ecn::Ect1 } else { Ecn::Ect0 };
        let mut v = EcnValidator::new(params);
        let mut reports = Vec::new();
        for (i, action) in actions.iter().take(packets as usize).enumerate() {
            let sent = v.next_codepoint(session);
            // transition check: the send schedule matches the naive one
            let expected = if ce_canary && i as u32 + 1 == packets {
                Ecn::Ce
            } else {
                session
            };
            prop_assert_eq!(sent, expected, "packet {} mark", i);
            if let Some(arrived) = apply_path(*action, sent) {
                reports.push((sent, arrived));
            }
        }
        // testing budget exhausted: later traffic goes unmarked
        prop_assert_eq!(v.next_codepoint(session), Ecn::NotEct);
        for (sent, arrived) in reports {
            v.on_peer_report(sent, arrived);
        }
        let got = v.conclude(Nanos::ZERO, control_reachable);
        let want = reference_outcome(&params, session, &actions, control_reachable);
        prop_assert_eq!(got, want);
        prop_assert_eq!(v.outcome(), got, "conclude() and outcome() agree");
        // exactly the failed verdicts allow a retest after the cool-off
        prop_assert_eq!(v.maybe_retest(Nanos::from_secs(3600)), got.is_failed());
    }

    #[test]
    fn no_bleaching_path_ever_validates(
        packets in 1u32..=12,
        ce_canary in any::<bool>(),
        ect1_session in any::<bool>(),
        control_reachable in any::<bool>(),
        // every packet is either stripped to not-ECT or dropped — a
        // bleaching path, whatever the mix
        bleach_or_drop in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let params = ValidatorParams {
            testing_packets: packets,
            ce_canary,
            ..ValidatorParams::default()
        };
        let session = if ect1_session { Ecn::Ect1 } else { Ecn::Ect0 };
        let mut v = EcnValidator::new(params);
        for bleach in bleach_or_drop.iter().take(packets as usize) {
            let sent = v.next_codepoint(session);
            if *bleach {
                v.on_peer_report(sent, Ecn::NotEct);
            }
        }
        let got = v.conclude(Nanos::ZERO, control_reachable);
        prop_assert!(
            got != ValidationOutcome::Capable,
            "a path delivering no intact mark must never validate (got {:?})",
            got
        );
    }
}
