//! End-to-end tests of the stack over a simulated path: UDP sockets and
//! services, TCP handshakes with and without ECN, retransmission through
//! loss, ICMP inboxes, availability schedules, and port-unreachable
//! behaviour.

use ecn_netsim::{
    EcnPolicy, Firewall, FirewallRule, Ipv4Prefix, LinkProps, Nanos, NodeId, RouteEntry, Router,
    Sim,
};
use ecn_stack::{
    install, AvailabilityModel, EcnMode, HostHandle, StackConfig, TcpServiceAction, TcpState,
    UdpService,
};
use ecn_wire::{Ecn, IcmpMessage, Ipv4Header, NtpPacket, TcpFlags, UdpHeader};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// client -- r1 -- r2 -- server
struct World {
    sim: Sim,
    client: HostHandle,
    server: HostHandle,
    r1: NodeId,
    r2: NodeId,
}

fn build(seed: u64, client_cfg: StackConfig, server_cfg: StackConfig) -> World {
    let mut sim = Sim::new(seed);
    let c = sim.add_host("client", CLIENT);
    let s = sim.add_host("server", SERVER);
    let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
    let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
    sim.attach_host(c, r1, LinkProps::clean(Nanos::from_millis(2)));
    sim.attach_host(s, r2, LinkProps::clean(Nanos::from_millis(2)));
    let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::clean(Nanos::from_millis(20)));
    sim.route(
        r1,
        "0.0.0.0/0".parse::<Ipv4Prefix>().unwrap(),
        RouteEntry::Link(l12),
    );
    sim.route(
        r2,
        "0.0.0.0/0".parse::<Ipv4Prefix>().unwrap(),
        RouteEntry::Link(l21),
    );
    let client = install(&mut sim, c, client_cfg);
    let server = install(&mut sim, s, server_cfg);
    World {
        sim,
        client,
        server,
        r1,
        r2,
    }
}

struct EchoService;
impl UdpService for EchoService {
    fn handle(
        &mut self,
        _now: Nanos,
        _src: (Ipv4Addr, u16),
        _ecn: Ecn,
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        Some(payload.to_vec())
    }
}

struct LineUpper;
impl ecn_stack::TcpService for LineUpper {
    fn on_data(&mut self, _now: Nanos, received: &[u8]) -> TcpServiceAction {
        if received.ends_with(b"\n") {
            TcpServiceAction::Respond {
                bytes: received.to_ascii_uppercase(),
                close: true,
            }
        } else {
            TcpServiceAction::Wait
        }
    }
}

#[test]
fn udp_echo_roundtrip_preserves_payload_and_reports_ecn() {
    let mut w = build(1, StackConfig::default(), StackConfig::default());
    w.server.register_udp_service(123, Box::new(EchoService));
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), b"ntp?", Ecn::Ect0);
    w.sim.run_for(Nanos::from_millis(100));
    let got = w.client.udp_recv(sock).expect("echo reply");
    assert_eq!(got.payload, b"ntp?");
    assert_eq!(got.src, (SERVER, 123));
    // replies are sent not-ECT by services
    assert_eq!(got.ecn, Ecn::NotEct);
    assert!(w.client.udp_recv(sock).is_none());
}

#[test]
fn udp_service_sees_bleached_codepoint() {
    // A bleaching router between the hosts: the service observes not-ECT
    // even though the client sent ECT(0) — the exact §4.2 phenomenon.
    struct EcnReporter;
    impl UdpService for EcnReporter {
        fn handle(
            &mut self,
            _now: Nanos,
            _src: (Ipv4Addr, u16),
            ecn: Ecn,
            _payload: &[u8],
        ) -> Option<Vec<u8>> {
            Some(format!("{ecn}").into_bytes())
        }
    }
    let mut w = build(2, StackConfig::default(), StackConfig::default());
    w.sim.set_ecn_policy(w.r1, EcnPolicy::Bleach);
    w.server.register_udp_service(123, Box::new(EcnReporter));
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), b"x", Ecn::Ect0);
    w.sim.run_for(Nanos::from_millis(100));
    let got = w.client.udp_recv(sock).expect("reply");
    assert_eq!(got.payload, b"not-ECT");
}

#[test]
fn udp_to_closed_port_silent_by_default_icmp_when_enabled() {
    // Default (pool-server-like): silence.
    let mut w = build(3, StackConfig::default(), StackConfig::default());
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 33434), b"probe", Ecn::NotEct);
    w.sim.run_for(Nanos::from_millis(100));
    assert!(w.client.icmp_recv().is_none());

    // With port-unreachable enabled: ICMP arrives, quoting our probe.
    let server_cfg = StackConfig {
        udp_port_unreachable: true,
        ..StackConfig::default()
    };
    let mut w = build(4, StackConfig::default(), server_cfg);
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 33434), b"probe", Ecn::Ect0);
    w.sim.run_for(Nanos::from_millis(100));
    let icmp = w.client.icmp_recv().expect("port unreachable");
    assert_eq!(icmp.from, SERVER);
    let quoted = icmp.msg.quoted().expect("quote");
    let qh = Ipv4Header::decode(quoted).unwrap();
    assert_eq!(qh.ecn, Ecn::Ect0, "quote shows the mark the server saw");
    let uh = UdpHeader::decode_unverified(&quoted[20..]).unwrap();
    assert_eq!(uh.dst_port, 33434);
}

#[test]
fn tcp_handshake_with_ecn_negotiation_end_to_end() {
    let mut w = build(5, StackConfig::default(), StackConfig::default());
    w.server
        .register_tcp_listener(80, EcnMode::On, Some(Box::new(LineUpper)));
    let conn = w.client.tcp_connect(&mut w.sim, (SERVER, 80), true);
    w.sim.run_for(Nanos::from_millis(200));
    let snap = w.client.conn(conn).expect("conn exists");
    assert_eq!(snap.state, TcpState::Established);
    assert!(snap.ecn_negotiated);
    assert!(snap.handshake.got_ecn_setup_syn_ack);
    let flags = snap.handshake.syn_ack_flags.unwrap();
    assert!(flags.contains(TcpFlags::ECE) && !flags.contains(TcpFlags::CWR));

    // Exchange data: request flows ECT(0), the service answers, closes.
    w.client.tcp_send(&mut w.sim, conn, b"hello tcp\n");
    w.sim.run_for(Nanos::from_secs(2));
    let snap = w.client.conn(conn).unwrap();
    assert_eq!(snap.received, b"HELLO TCP\n");
    assert!(snap.peer_closed);
    w.client.tcp_close(&mut w.sim, conn);
    w.sim.run_for(Nanos::from_secs(2));
    assert_eq!(w.client.conn(conn).unwrap().state, TcpState::Closed);
    // server-side entry is garbage collected
    assert_eq!(w.server.conn_count(), 0);
    w.client.remove_conn(conn);
    assert_eq!(w.client.conn_count(), 0);
}

#[test]
fn tcp_without_ecn_request_gets_plain_syn_ack() {
    let mut w = build(6, StackConfig::default(), StackConfig::default());
    w.server
        .register_tcp_listener(80, EcnMode::On, Some(Box::new(LineUpper)));
    let conn = w.client.tcp_connect(&mut w.sim, (SERVER, 80), false);
    w.sim.run_for(Nanos::from_millis(200));
    let snap = w.client.conn(conn).unwrap();
    assert_eq!(snap.state, TcpState::Established);
    assert!(!snap.ecn_negotiated);
    assert!(!snap.handshake.requested_ecn);
    let flags = snap.handshake.syn_ack_flags.unwrap();
    assert!(!flags.contains(TcpFlags::ECE));
}

#[test]
fn tcp_server_with_ecn_off_declines() {
    let mut w = build(7, StackConfig::default(), StackConfig::default());
    w.server
        .register_tcp_listener(80, EcnMode::Off, Some(Box::new(LineUpper)));
    let conn = w.client.tcp_connect(&mut w.sim, (SERVER, 80), true);
    w.sim.run_for(Nanos::from_millis(200));
    let snap = w.client.conn(conn).unwrap();
    assert_eq!(snap.state, TcpState::Established);
    assert!(snap.handshake.requested_ecn);
    assert!(!snap.ecn_negotiated, "server declined");
    assert!(!snap.handshake.got_ecn_setup_syn_ack);
}

#[test]
fn tcp_to_closed_port_is_reset() {
    let mut w = build(8, StackConfig::default(), StackConfig::default());
    let conn = w.client.tcp_connect(&mut w.sim, (SERVER, 80), true);
    w.sim.run_for(Nanos::from_millis(200));
    let snap = w.client.conn(conn).unwrap();
    assert_eq!(snap.state, TcpState::Closed);
    assert_eq!(snap.close_reason, Some(ecn_stack::CloseReason::Reset));
}

#[test]
fn tcp_syn_retransmits_through_loss_and_eventually_connects() {
    // 60% loss: the first SYN will often die; retries must save the
    // connection within the 5-retry budget most of the time. Use a seed
    // where it does.
    // A dedicated build with a lossy inter-router path in both directions.
    let mut sim = Sim::new(99);
    let c = sim.add_host("client", CLIENT);
    let s = sim.add_host("server", SERVER);
    let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 65001));
    let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 65002));
    sim.attach_host(c, r1, LinkProps::clean(Nanos::from_millis(1)));
    sim.attach_host(s, r2, LinkProps::clean(Nanos::from_millis(1)));
    let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::lossy(Nanos::from_millis(10), 0.6));
    sim.route(
        r1,
        "0.0.0.0/0".parse::<Ipv4Prefix>().unwrap(),
        RouteEntry::Link(l12),
    );
    sim.route(
        r2,
        "0.0.0.0/0".parse::<Ipv4Prefix>().unwrap(),
        RouteEntry::Link(l21),
    );
    let client = install(&mut sim, c, StackConfig::default());
    let server = install(&mut sim, s, StackConfig::default());
    server.register_tcp_listener(80, EcnMode::On, Some(Box::new(LineUpper)));
    let conn = client.tcp_connect(&mut sim, (SERVER, 80), true);
    sim.run_for(Nanos::from_secs(40));
    let snap = client.conn(conn).unwrap();
    assert!(
        snap.state == TcpState::Established || snap.close_reason.is_some(),
        "must converge, got {:?}",
        snap.state
    );
    assert_eq!(
        snap.state,
        TcpState::Established,
        "seed 99 connects within retries"
    );
}

#[test]
fn tcp_times_out_when_server_is_blackholed() {
    let server_cfg = StackConfig {
        availability: AvailabilityModel::AlwaysDown,
        tcp_rst_on_closed: true,
        ..StackConfig::default()
    };
    let mut w = build(10, StackConfig::default(), server_cfg);
    w.server
        .register_tcp_listener(80, EcnMode::On, Some(Box::new(LineUpper)));
    let conn = w.client.tcp_connect(&mut w.sim, (SERVER, 80), true);
    // 5 retries with doubling 1s RTO: 1+2+4+8+16+32 = 63 s worst case
    w.sim.run_for(Nanos::from_secs(120));
    let snap = w.client.conn(conn).unwrap();
    assert_eq!(snap.state, TcpState::Closed);
    assert_eq!(snap.close_reason, Some(ecn_stack::CloseReason::TimedOut));
}

#[test]
fn ntp_request_payload_roundtrips_through_udp_service() {
    // A minimal in-line NTP responder (the real one lives in ecn-services).
    struct MiniNtp;
    impl UdpService for MiniNtp {
        fn handle(
            &mut self,
            now: Nanos,
            _src: (Ipv4Addr, u16),
            _ecn: Ecn,
            payload: &[u8],
        ) -> Option<Vec<u8>> {
            let req = NtpPacket::decode(payload).ok()?;
            let ts = ecn_wire::NtpTimestamp::from_nanos(now.0);
            Some(NtpPacket::server_response(&req, 2, *b"GPS\0", ts, ts).encode())
        }
    }
    let mut w = build(11, StackConfig::default(), StackConfig::default());
    w.server.register_udp_service(123, Box::new(MiniNtp));
    let sock = w.client.udp_bind(0);
    let req = NtpPacket::client_request(ecn_wire::NtpTimestamp::from_nanos(1_000));
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), &req.encode(), Ecn::Ect0);
    w.sim.run_for(Nanos::from_millis(100));
    let got = w.client.udp_recv(sock).expect("ntp answer");
    let rsp = NtpPacket::decode(&got.payload).unwrap();
    assert!(rsp.answers(&req));
    assert_eq!(rsp.stratum, 2);
}

#[test]
fn flapping_server_misses_requests_while_down() {
    let server_cfg = StackConfig {
        availability: AvailabilityModel::Flapping {
            mean_up: Nanos::from_secs(30),
            mean_down: Nanos::from_secs(30),
        },
        seed: 77,
        ..StackConfig::default()
    };
    let mut w = build(12, StackConfig::default(), server_cfg);
    w.server.register_udp_service(123, Box::new(EchoService));
    let sock = w.client.udp_bind(0);
    let mut answered = 0;
    let total = 200;
    for i in 0..total {
        w.client
            .udp_send(&mut w.sim, sock, (SERVER, 123), b"hi", Ecn::NotEct);
        w.sim.run_for(Nanos::from_secs(1));
        if w.client.udp_recv(sock).is_some() {
            answered += 1;
        }
        let _ = i;
    }
    // ~50% duty cycle: some answered, some missed, in runs.
    assert!(answered > total / 5, "answered {answered}");
    assert!(answered < total * 4 / 5, "answered {answered}");
}

#[test]
fn icmp_echo_is_answered() {
    let mut w = build(13, StackConfig::default(), StackConfig::default());
    let msg = IcmpMessage::EchoRequest {
        id: 7,
        seq: 1,
        payload: b"ping".to_vec(),
    };
    let h = Ipv4Header::probe(CLIENT, SERVER, ecn_wire::IpProto::Icmp, Ecn::NotEct);
    let d = ecn_wire::Datagram::new(h, &msg.encode());
    let node = w.client.node();
    w.sim.send_from(node, d);
    w.sim.run_for(Nanos::from_millis(200));
    let got = w.client.icmp_recv().expect("echo reply");
    assert_eq!(got.from, SERVER);
    match got.msg {
        IcmpMessage::EchoReply {
            id: 7,
            seq: 1,
            ref payload,
        } if payload == b"ping" => {}
        ref other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn firewall_dropping_ect_udp_blocks_marked_probes_only() {
    let mut w = build(14, StackConfig::default(), StackConfig::default());
    w.sim
        .set_firewall(w.r2, Firewall::single(FirewallRule::drop_ect_udp()));
    w.server.register_udp_service(123, Box::new(EchoService));
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), b"ect", Ecn::Ect0);
    w.sim.run_for(Nanos::from_secs(1));
    assert!(w.client.udp_recv(sock).is_none(), "ECT probe blackholed");
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), b"plain", Ecn::NotEct);
    w.sim.run_for(Nanos::from_secs(1));
    assert_eq!(w.client.udp_recv(sock).unwrap().payload, b"plain");
}

#[test]
fn capture_sees_both_directions_with_correct_marks() {
    let mut w = build(15, StackConfig::default(), StackConfig::default());
    w.server.register_udp_service(123, Box::new(EchoService));
    let node = w.client.node();
    let cap = w.sim.attach_capture(node);
    let sock = w.client.udp_bind(0);
    w.client
        .udp_send(&mut w.sim, sock, (SERVER, 123), b"x", Ecn::Ect0);
    w.sim.run_for(Nanos::from_millis(100));
    let cap = cap.lock();
    assert_eq!(cap.len(), 2);
    let out = cap.packets()[0].datagram().unwrap();
    let inp = cap.packets()[1].datagram().unwrap();
    assert_eq!(out.ecn(), Ecn::Ect0);
    assert_eq!(inp.ecn(), Ecn::NotEct);
    assert_eq!(inp.src(), SERVER);
}
